//! Integration test: compatibility with AppArmor under LSM stacking
//! (paper Q3, §IV-D) — "we test the compatibility with 10 different SACK
//! policies for independent SACK and SACK-enhanced AppArmor, and they all
//! work well with default AppArmor policies".

use std::sync::Arc;

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::{EnforcementMode, Sack};
use sack_kernel::cred::Credentials;
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_kernel::path::KPath;
use sack_kernel::types::Mode;
use sack_vehicle::policies::VEHICLE_APPARMOR_PROFILES;

/// Generates the i-th of ten distinct SACK policies: different state
/// machine sizes, event vocabularies and object trees.
fn sack_policy(i: usize, enhanced: bool) -> String {
    let states = 2 + (i % 4); // 2..5 states
    let subject = if enhanced {
        "subject=profile:media_app".to_string()
    } else {
        "subject=*".to_string()
    };
    let mut text = String::from("states {\n");
    for s in 0..states {
        text.push_str(&format!("  st{s} = {s};\n"));
    }
    text.push_str("}\nevents {\n");
    for s in 0..states {
        text.push_str(&format!("  ev{s};\n"));
    }
    text.push_str("}\ntransitions {\n");
    for s in 0..states {
        let next = (s + 1) % states;
        text.push_str(&format!("  st{s} -ev{next}-> st{next};\n"));
    }
    text.push_str("}\ninitial st0;\npermissions {\n");
    for s in 0..states {
        text.push_str(&format!("  PERM{s};\n"));
    }
    text.push_str("}\nstate_per {\n");
    for s in 0..states {
        text.push_str(&format!("  st{s}: PERM{s};\n"));
    }
    text.push_str("}\nper_rules {\n");
    for s in 0..states {
        text.push_str(&format!(
            "  PERM{s}: allow {subject} /srv/policy{i}/state{s}/** rw;\n"
        ));
    }
    text.push_str("}\n");
    text
}

fn boot_stacked(sack: &Arc<Sack>, apparmor: &Arc<AppArmor>) -> Arc<Kernel> {
    // CONFIG_LSM="SACK,AppArmor": SACK first, as the paper requires.
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(sack) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(apparmor) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
}

fn default_apparmor() -> Arc<AppArmor> {
    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
    AppArmor::new(db)
}

/// Smoke workload: ordinary file business under both modules at once.
fn run_workload(kernel: &Arc<Kernel>) {
    let proc = kernel.spawn(Credentials::user(1000, 1000));
    proc.write_file("/tmp/compat.txt", b"hello").unwrap();
    assert_eq!(proc.read_to_vec("/tmp/compat.txt").unwrap(), b"hello");
    proc.stat("/tmp/compat.txt").unwrap();
    let child = proc.fork().unwrap();
    child.unlink("/tmp/compat.txt").unwrap();
    child.exit();
    proc.exit();
}

#[test]
fn ten_independent_sack_policies_stack_with_default_apparmor() {
    for i in 0..10 {
        let sack =
            Sack::independent(&sack_policy(i, false)).unwrap_or_else(|e| panic!("policy {i}: {e}"));
        assert_eq!(sack.mode(), EnforcementMode::Independent);
        let apparmor = default_apparmor();
        let kernel = boot_stacked(&sack, &apparmor);
        assert_eq!(kernel.lsm().module_names(), vec!["sack", "apparmor"]);
        run_workload(&kernel);
    }
}

#[test]
fn ten_enhanced_policies_stack_with_default_apparmor() {
    for i in 0..10 {
        let apparmor = default_apparmor();
        let sack = Sack::enhanced_apparmor(&sack_policy(i, true), Arc::clone(&apparmor))
            .unwrap_or_else(|e| panic!("policy {i}: {e}"));
        assert_eq!(sack.mode(), EnforcementMode::EnhancedAppArmor);
        let kernel = boot_stacked(&sack, &apparmor);
        run_workload(&kernel);
        // The enhanced policy injected its initial-state rules into the
        // target profile without disturbing the default rules.
        let profile = apparmor.policy().get("media_app").unwrap();
        assert!(profile
            .rules()
            .evaluate("/usr/bin/media_app")
            .permits(sack_apparmor::FilePerms::EXEC));
    }
}

#[test]
fn sack_denial_short_circuits_before_apparmor() {
    // White-list combination: when SACK denies, AppArmor is never asked.
    let policy = r#"
        states { s = 0; } initial s;
        permissions { P; }
        state_per { s: P; }
        per_rules { P: allow subject=/usr/bin/privileged /locked/** rw; }
    "#;
    let sack = Sack::independent(policy).unwrap();
    let apparmor = default_apparmor();
    let kernel = boot_stacked(&sack, &apparmor);
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/locked").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/locked/data").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let proc = kernel.spawn(Credentials::user(1000, 1000));
    let err = proc
        .open("/locked/data", OpenFlags::read_only())
        .unwrap_err();
    assert_eq!(err.context(), Some("sack"), "SACK must answer first");
    // AppArmor never audited the access (the proc is unconfined anyway,
    // but the audit log must be empty in any case).
    assert!(apparmor.take_audit_log().is_empty());
}

#[test]
fn apparmor_still_denies_what_sack_allows() {
    // Stacking is restrictive: SACK allowing an access does not bypass
    // AppArmor's own policy.
    let policy = r#"
        states { s = 0; } initial s;
        permissions { P; }
        state_per { s: P; }
        per_rules { P: allow subject=* /etc/secret.conf rw; }
    "#;
    let sack = Sack::independent(policy).unwrap();
    let db = Arc::new(PolicyDb::new());
    db.load_text("profile jailed { /tmp/** rw, }").unwrap();
    let apparmor = AppArmor::new(db);
    let kernel = boot_stacked(&sack, &apparmor);
    kernel
        .vfs()
        .create_file(
            &KPath::new("/etc/secret.conf").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let proc = kernel.spawn(Credentials::user(1000, 1000));
    apparmor.set_profile(proc.pid(), "jailed").unwrap();
    let err = proc
        .open("/etc/secret.conf", OpenFlags::read_only())
        .unwrap_err();
    assert_eq!(err.context(), Some("apparmor"));
}

#[test]
fn stacking_order_is_the_declared_order() {
    let sack = Sack::independent(
        "states { s = 0; } initial s; permissions { P; } state_per { s: P; } \
         per_rules { P: allow subject=* /x r; }",
    )
    .unwrap();
    let apparmor = default_apparmor();
    // Reverse order: AppArmor first.
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    assert_eq!(kernel.lsm().module_names(), vec!["apparmor", "sack"]);
}

#[test]
fn independent_sack_with_profile_oracle_uses_apparmor_domains() {
    // Cross-module cooperation: independent SACK resolving
    // `subject=profile:` selectors against live AppArmor confinement.
    let policy = r#"
        states { s = 0; } initial s;
        permissions { P; }
        state_per { s: P; }
        per_rules { P: allow subject=profile:media_app /srv/media/** rw; }
    "#;
    let sack = Sack::independent(policy).unwrap();
    let apparmor = default_apparmor();
    sack.set_profile_oracle(Arc::clone(&apparmor));
    let kernel = boot_stacked(&sack, &apparmor);
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/srv/media").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/srv/media/track.mp3").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    // AppArmor's media_app profile must also allow the path for the
    // stacked check to pass.
    apparmor
        .policy()
        .patch("media_app", |p| {
            p.path_rules.push(
                sack_apparmor::PathRule::allow(
                    "/srv/media/**",
                    sack_apparmor::FilePerms::READ | sack_apparmor::FilePerms::WRITE,
                )
                .unwrap(),
            );
        })
        .unwrap();
    let media = kernel.spawn(Credentials::user(1001, 1001));
    apparmor.set_profile(media.pid(), "media_app").unwrap();
    assert!(media.read_to_vec("/srv/media/track.mp3").is_ok());

    let other = kernel.spawn(Credentials::user(1002, 1002));
    let err = other.read_to_vec("/srv/media/track.mp3").unwrap_err();
    assert_eq!(err.context(), Some("sack"));
}
