//! Generality tests (paper §V): the framework is not vehicle-specific.
//! Two non-automotive deployments — a smart home and a hospital
//! infusion-pump ward — expressed purely as policies, exercising optimistic
//! access control (restrictive default, break-the-glass) in each.

use std::sync::Arc;

use sack_apparmor::profile::FilePerms;
use sack_core::simulate::{AccessQuery, PolicySimulator};
use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;

const HOME_POLICY: &str = r#"
states { occupied = 0; empty = 1; fire = 2; }
events { everyone_left; someone_home; smoke; cleared; }
transitions {
    occupied -everyone_left-> empty;
    empty -someone_home-> occupied;
    occupied -smoke-> fire;
    empty -smoke-> fire;
    fire -cleared-> occupied;
}
initial occupied;
permissions { PANEL; CAMERA; EVACUATE; }
state_per {
    *: PANEL;
    empty: CAMERA;
    fire: EVACUATE;
}
per_rules {
    PANEL: allow subject=/usr/bin/wall_panel /dev/home/** rwi;
    CAMERA: allow subject=/usr/bin/cloud_agent /dev/home/camera r;
    EVACUATE: allow subject=/usr/bin/evac_daemon /dev/home/lock* wi;
}
"#;

const WARD_POLICY: &str = r#"
# Hospital ward: infusion pumps accept remote dose changes only while a
# clinician is present; during a code-blue, the crash-cart tablet gets
# full pump control (break the glass).
states { unattended = 0; clinician_present = 1; code_blue = 2; }
events { badge_in; badge_out; code_blue_called; code_blue_cleared; }
transitions {
    unattended -badge_in-> clinician_present;
    clinician_present -badge_out-> unattended;
    unattended -code_blue_called-> code_blue;
    clinician_present -code_blue_called-> code_blue;
    code_blue -code_blue_cleared-> clinician_present;
}
initial unattended;
permissions { MONITOR; ADJUST_DOSE; CRASH_CART; }
state_per {
    *: MONITOR;
    clinician_present: ADJUST_DOSE;
    code_blue: ADJUST_DOSE, CRASH_CART;
}
per_rules {
    MONITOR: allow subject=* /dev/ward/pump* r;
    ADJUST_DOSE: allow subject=/usr/bin/emr_console /dev/ward/pump* wi;
    CRASH_CART: allow subject=/usr/bin/crash_cart /dev/ward/** rwi;
}
"#;

#[test]
fn home_policy_matrix() {
    let sim = PolicySimulator::new(HOME_POLICY).unwrap();
    let camera = AccessQuery::from_exe("/usr/bin/cloud_agent", "/dev/home/camera", FilePerms::READ);
    for (state, allowed) in sim.query_all_reachable_states(&camera) {
        assert_eq!(allowed, state == "empty", "camera privacy wrong in {state}");
    }
    let evac = AccessQuery::from_exe(
        "/usr/bin/evac_daemon",
        "/dev/home/lock_front",
        FilePerms::WRITE,
    );
    for (state, allowed) in sim.query_all_reachable_states(&evac) {
        assert_eq!(allowed, state == "fire", "evacuation wrong in {state}");
    }
    // The panel works everywhere (wildcard grant).
    let panel = AccessQuery::from_exe(
        "/usr/bin/wall_panel",
        "/dev/home/lock_front",
        FilePerms::WRITE,
    );
    assert!(sim
        .query_all_reachable_states(&panel)
        .iter()
        .all(|(_, allowed)| *allowed));
}

#[test]
fn ward_code_blue_breaks_the_glass_live() {
    let sack = Sack::independent(WARD_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&"/dev/ward".parse().unwrap())
        .unwrap();
    for node in ["pump0", "pump1", "defib"] {
        kernel
            .vfs()
            .create_file(
                &format!("/dev/ward/{node}").parse().unwrap(),
                sack_kernel::Mode(0o666),
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
    }
    let spawn = |exe: &str, uid| {
        kernel
            .vfs()
            .create_file(
                &exe.parse().unwrap(),
                sack_kernel::Mode::EXEC,
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        let p = kernel.spawn(Credentials::user(uid, uid));
        p.exec(exe).unwrap();
        p
    };
    let emr = spawn("/usr/bin/emr_console", 100);
    let cart = spawn("/usr/bin/crash_cart", 200);
    let badge_system =
        kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    let events = badge_system
        .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
        .unwrap();

    // Unattended: even the EMR console cannot change doses; reads work.
    assert!(emr
        .open("/dev/ward/pump0", OpenFlags::write_only())
        .is_err());
    assert!(emr.open("/dev/ward/pump0", OpenFlags::read_only()).is_ok());

    // Clinician badges in: dose adjustment allowed, crash cart still not.
    badge_system.write(events, b"badge_in\n").unwrap();
    assert!(emr.open("/dev/ward/pump0", OpenFlags::write_only()).is_ok());
    assert!(cart
        .open("/dev/ward/defib", OpenFlags::write_only())
        .is_err());

    // Code blue: the crash cart gets everything, immediately.
    badge_system.write(events, b"code_blue_called\n").unwrap();
    assert!(cart
        .open("/dev/ward/defib", OpenFlags::write_only())
        .is_ok());
    assert!(cart
        .open("/dev/ward/pump1", OpenFlags::write_only())
        .is_ok());

    // Cleared: back to clinician-present rules.
    badge_system.write(events, b"code_blue_cleared\n").unwrap();
    assert!(cart
        .open("/dev/ward/defib", OpenFlags::write_only())
        .is_err());
    assert!(emr.open("/dev/ward/pump0", OpenFlags::write_only()).is_ok());
}

#[test]
fn both_policies_are_clean() {
    for policy in [HOME_POLICY, WARD_POLICY] {
        let compiled = sack_core::SackPolicy::parse(policy)
            .unwrap()
            .compile()
            .unwrap();
        assert!(compiled.warnings().is_empty(), "{:?}", compiled.warnings());
    }
}
