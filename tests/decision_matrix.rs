//! Cross-validation of the offline policy simulator against the live
//! kernel: for every reachable situation state, every demo subject and
//! every interesting (object, operation) pair, the simulator's verdict
//! must equal what the kernel actually does.
//!
//! This pins down the full decision surface of the vehicle policy as a
//! table, so any change to rule semantics shows up as a concrete
//! state/subject/object triple.

use std::sync::Arc;

use sack_apparmor::profile::FilePerms;
use sack_core::simulate::{AccessQuery, PolicySimulator, StepResult};
use sack_core::Sack;
use sack_kernel::cred::Credentials;
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_kernel::uctx::UserContext;
use sack_vehicle::car::CarHardware;
use sack_vehicle::policies::VEHICLE_SACK_POLICY;

struct LiveWorld {
    #[allow(dead_code)] // keeps the kernel alive for the UserContext handles
    kernel: Arc<Kernel>,
    sack: Arc<Sack>,
    rescue: UserContext,
    media: UserContext,
}

fn live_world() -> LiveWorld {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    CarHardware::install(&kernel, 2, 2).unwrap();
    let mk = |exe: &str| {
        kernel
            .vfs()
            .create_file(
                &sack_kernel::KPath::new(exe).unwrap(),
                sack_kernel::Mode::EXEC,
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        let proc = kernel.spawn(Credentials::user(1000, 1000));
        proc.exec(exe).unwrap();
        proc
    };
    let rescue = mk("/usr/bin/rescue_daemon");
    let media = mk("/usr/bin/media_app");
    LiveWorld {
        kernel,
        sack,
        rescue,
        media,
    }
}

/// Attempts the operation on the live kernel; returns whether it was
/// allowed (distinguishing only MAC denials — harness errors panic).
fn live_attempt(proc: &UserContext, path: &str, perms: FilePerms) -> bool {
    let result = if perms.contains(FilePerms::IOCTL) {
        proc.open(path, OpenFlags::read_write()).and_then(|fd| {
            let r = proc.ioctl(fd, sack_vehicle::devices::door_ioctl::STATUS, 0);
            proc.close(fd).unwrap();
            r.map(|_| ())
        })
    } else if perms.contains(FilePerms::WRITE) {
        proc.open(path, OpenFlags::write_only())
            .and_then(|fd| proc.close(fd))
    } else {
        proc.open(path, OpenFlags::read_only())
            .and_then(|fd| proc.close(fd))
    };
    match result {
        Ok(()) => true,
        Err(e) if e.context() == Some("sack") => false,
        // ENOTTY etc. mean the MAC allowed it and the device complained —
        // for ioctl-on-audio style probes that still counts as allowed.
        Err(e) if e.errno() == sack_kernel::Errno::ENOTTY => true,
        Err(e) => panic!("unexpected error for {path}: {e}"),
    }
}

#[test]
fn simulator_matches_live_kernel_over_the_whole_matrix() {
    let world = live_world();
    let sim = PolicySimulator::new(VEHICLE_SACK_POLICY).unwrap();

    // Walk both systems through the same event sequence, checking the
    // matrix in every state along the way.
    let subjects: [(&str, &UserContext); 2] = [
        ("/usr/bin/rescue_daemon", &world.rescue),
        ("/usr/bin/media_app", &world.media),
    ];
    let probes: [(&str, FilePerms); 4] = [
        ("/dev/car/door0", FilePerms::READ),
        ("/dev/car/door0", FilePerms::WRITE),
        ("/dev/car/door1", FilePerms::IOCTL),
        ("/dev/car/audio", FilePerms::WRITE),
    ];
    let walk = [
        "start_driving",
        "crash",
        "emergency_resolved",
        "driver_left",
        "driver_entered",
    ];

    let mut checked = 0;
    let mut check_state = |sim: &PolicySimulator| {
        assert_eq!(sim.state(), world.sack.current_state_name());
        for (exe, proc) in &subjects {
            for (path, perms) in &probes {
                let query = AccessQuery::from_exe(exe, path, *perms);
                let expected = match sim.query(&query) {
                    StepResult::Decision { allowed, .. } => allowed,
                    other => panic!("unexpected {other:?}"),
                };
                let actual = live_attempt(proc, path, *perms);
                assert_eq!(
                    expected,
                    actual,
                    "divergence: state={} exe={exe} path={path} perms={perms}",
                    sim.state()
                );
                checked += 1;
            }
        }
    };

    check_state(&sim);
    for event in walk {
        sim.deliver(event);
        world
            .sack
            .deliver_event(event, std::time::Duration::ZERO)
            .unwrap();
        check_state(&sim);
    }
    assert_eq!(checked, 6 * subjects.len() * probes.len());
}

#[test]
fn simulator_matches_enhanced_apparmor_kernel() {
    use sack_apparmor::{AppArmor, PolicyDb};
    use sack_vehicle::policies::{VEHICLE_APPARMOR_PROFILES, VEHICLE_ENHANCED_POLICY};

    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
    let apparmor = AppArmor::new(Arc::clone(&db));
    let sack = Sack::enhanced_apparmor(VEHICLE_ENHANCED_POLICY, Arc::clone(&apparmor)).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    CarHardware::install(&kernel, 2, 2).unwrap();

    let rescue = kernel.spawn(Credentials::user(900, 900));
    apparmor.set_profile(rescue.pid(), "rescue_daemon").unwrap();

    let sim = PolicySimulator::new(VEHICLE_ENHANCED_POLICY).unwrap();
    let door_query = AccessQuery {
        uid: 900,
        exe: None,
        profile: Some("rescue_daemon".to_string()),
        path: "/dev/car/door0".to_string(),
        perms: FilePerms::WRITE,
    };

    for event in [
        "start_driving",
        "crash",
        "emergency_resolved",
        "driver_left",
    ] {
        // The simulator says what SACK's mapping intends...
        let expected = match sim.query(&door_query) {
            StepResult::Decision {
                mediated: true,
                allowed,
                ..
            } => allowed,
            StepResult::Decision {
                mediated: false, ..
            } => true,
            other => panic!("unexpected {other:?}"),
        };
        // ...and the live enhanced-AppArmor kernel must agree. Note the
        // base profile grants `/dev/car/** r` but not `w`, so writes track
        // the injected rules exactly.
        let actual = match rescue.open("/dev/car/door0", OpenFlags::write_only()) {
            Ok(fd) => {
                rescue.close(fd).unwrap();
                true
            }
            Err(e) => {
                assert_eq!(e.context(), Some("apparmor"), "{e}");
                false
            }
        };
        assert_eq!(expected, actual, "state {}", sim.state());

        sim.deliver(event);
        sack.deliver_event(event, std::time::Duration::ZERO)
            .unwrap();
        assert_eq!(sim.state(), sack.current_state_name());
    }
}

#[test]
fn exhaustive_reachable_state_answers_match_policy_intent() {
    let sim = PolicySimulator::new(VEHICLE_SACK_POLICY).unwrap();

    // CONTROL_CAR_DOORS: rescue only, emergency only.
    let door_ctl = AccessQuery::from_exe(
        "/usr/bin/rescue_daemon",
        "/dev/car/door0",
        FilePerms::WRITE | FilePerms::IOCTL,
    );
    let verdicts = sim.query_all_reachable_states(&door_ctl);
    assert_eq!(verdicts.len(), 4, "all four Fig. 2 states reachable");
    for (state, allowed) in &verdicts {
        assert_eq!(*allowed, state == "emergency", "{state}");
    }

    // SET_VOLUME_FREE: anyone, but only parked with driver.
    let volume = AccessQuery::from_exe(
        "/usr/bin/media_app",
        "/dev/car/audio",
        FilePerms::WRITE | FilePerms::IOCTL,
    );
    for (state, allowed) in sim.query_all_reachable_states(&volume) {
        assert_eq!(allowed, state == "parking_with_driver", "{state}");
    }

    // NORMAL reads: everywhere.
    let read = AccessQuery::from_exe("/usr/bin/anything", "/dev/car/window1", FilePerms::READ);
    assert!(sim
        .query_all_reachable_states(&read)
        .iter()
        .all(|(_, allowed)| *allowed));
}
