//! Serialization round-trips: policies and profiles render to canonical
//! text that re-parses to an equivalent object. This is what makes the
//! SACKfs `policy` node and `apparmor_parser`-style tooling trustworthy.

use sack_apparmor::parse_profiles;
use sack_core::SackPolicy;

/// Strips positional metadata (rule line numbers) before AST comparison.
fn normalized(mut ast: SackPolicy) -> SackPolicy {
    for (_, rules) in &mut ast.per_rules {
        for rule in rules {
            rule.line = 0;
        }
    }
    ast
}

fn assert_policy_roundtrip(text: &str) {
    let ast = SackPolicy::parse(text).unwrap();
    let rendered = ast.to_string();
    let reparsed = SackPolicy::parse(&rendered)
        .unwrap_or_else(|e| panic!("rendered policy must parse: {e}\n{rendered}"));
    assert_eq!(normalized(ast), normalized(reparsed));
}
use sack_lmbench::workload::{synthetic_enhanced_policy, synthetic_independent_policy};
use sack_vehicle::policies::{
    VEHICLE_APPARMOR_PROFILES, VEHICLE_ENHANCED_POLICY, VEHICLE_SACK_POLICY,
};

#[test]
fn vehicle_policy_roundtrips() {
    assert_policy_roundtrip(VEHICLE_SACK_POLICY);
}

#[test]
fn enhanced_policy_roundtrips() {
    assert_policy_roundtrip(VEHICLE_ENHANCED_POLICY);
}

#[test]
fn brace_alternation_patterns_roundtrip() {
    assert_policy_roundtrip(
        r#"states { s = 0; } initial s;
           permissions { P; }
           state_per { s: P; }
           per_rules { P: allow subject=* /dev/car/{door,window}[0-3] wi; }"#,
    );
    // And the compiled glob behaves as expected.
    let compiled = SackPolicy::parse(
        r#"states { s = 0; } initial s;
           permissions { P; }
           state_per { s: P; }
           per_rules { P: allow subject=* /dev/car/{door,window}* wi; }"#,
    )
    .unwrap()
    .compile()
    .unwrap();
    assert!(compiled.protected().contains("/dev/car/door0"));
    assert!(compiled.protected().contains("/dev/car/window1"));
    assert!(!compiled.protected().contains("/dev/car/audio"));
}

#[test]
fn synthetic_policies_roundtrip() {
    for (states, rules) in [(2usize, 0usize), (5, 10), (10, 100), (100, 50)] {
        for text in [
            synthetic_independent_policy(states, rules),
            synthetic_enhanced_policy(states, rules),
        ] {
            assert_policy_roundtrip(&text);
        }
    }
}

#[test]
fn roundtripped_policy_compiles_identically() {
    let ast = SackPolicy::parse(VEHICLE_SACK_POLICY).unwrap();
    let a = ast.compile().unwrap();
    let b = SackPolicy::parse(&ast.to_string())
        .unwrap()
        .compile()
        .unwrap();
    assert_eq!(a.space().state_count(), b.space().state_count());
    assert_eq!(a.rule_count(), b.rule_count());
    assert_eq!(a.permissions().len(), b.permissions().len());
    assert_eq!(a.protected().len(), b.protected().len());
}

fn profile_fingerprint(p: &sack_apparmor::Profile) -> (String, usize, usize, usize, Vec<String>) {
    (
        p.name.clone(),
        p.path_rules.len(),
        p.capabilities.len(),
        p.networks.len(),
        p.path_rules.iter().map(|r| r.to_string()).collect(),
    )
}

#[test]
fn apparmor_profiles_roundtrip() {
    let profiles = parse_profiles(VEHICLE_APPARMOR_PROFILES).unwrap();
    for profile in profiles {
        let rendered = profile.to_string();
        let reparsed = parse_profiles(&rendered)
            .unwrap_or_else(|e| panic!("rendered profile must parse: {e}\n{rendered}"));
        assert_eq!(reparsed.len(), 1);
        assert_eq!(
            profile_fingerprint(&profile),
            profile_fingerprint(&reparsed[0])
        );
        assert_eq!(profile.mode, reparsed[0].mode);
        assert_eq!(
            profile.attachment.as_ref().map(|g| g.source().to_string()),
            reparsed[0]
                .attachment
                .as_ref()
                .map(|g| g.source().to_string())
        );
    }
}

#[test]
fn complex_profile_roundtrips() {
    let text = r#"
        profile kitchen_sink /usr/bin/sink* flags=(complain) {
            capability net_bind_service,
            capability kill,
            network unix,
            network inet,
            /usr/lib/** rm,
            /dev/car/door[0-3] wi,
            /tmp/{a,b}/*.log ra,
            deny /etc/shadow rwx,
        }
    "#;
    let profile = parse_profiles(text).unwrap().remove(0);
    let reparsed = parse_profiles(&profile.to_string()).unwrap().remove(0);
    assert_eq!(
        profile_fingerprint(&profile),
        profile_fingerprint(&reparsed)
    );
    assert_eq!(reparsed.capabilities.len(), 2);
    assert_eq!(reparsed.networks.len(), 2);
    assert_eq!(reparsed.mode, sack_apparmor::ProfileMode::Complain);
}

#[test]
fn origin_tags_round_trip_as_comments_not_syntax() {
    let mut profile = sack_apparmor::Profile::new("p");
    profile.path_rules.push(
        sack_apparmor::PathRule::allow("/x", sack_apparmor::FilePerms::READ)
            .unwrap()
            .with_origin("sack"),
    );
    let rendered = profile.to_string();
    assert!(rendered.contains("# origin: sack"));
    let reparsed = parse_profiles(&rendered).unwrap().remove(0);
    // Comments are stripped, so the reparsed rule has no origin — which is
    // correct: origins are kernel-internal provenance, not policy.
    assert_eq!(reparsed.path_rules.len(), 1);
    assert_eq!(reparsed.path_rules[0].origin, None);
}
