//! Integration test: the paper's §IV-C case study — *allow unlock car door
//! only in emergencies* — end to end, in both SACK deployment modes.

use std::sync::Arc;

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::Sack;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_sds::sensors::SensorFrame;
use sack_sds::service::{standard_detectors, SdsService};
use sack_sds::traces::highway_crash;
use sack_vehicle::car::CarHardware;
use sack_vehicle::ivi::{standard_manifests, IviApp, IviError, IviSystem};
use sack_vehicle::policies::{
    VEHICLE_APPARMOR_PROFILES, VEHICLE_ENHANCED_POLICY, VEHICLE_SACK_POLICY,
};
use std::time::Duration;

struct CaseStudy {
    kernel: Arc<Kernel>,
    sack: Arc<Sack>,
    hw: CarHardware,
    ivi: IviSystem,
    apps: Vec<IviApp>,
}

impl CaseStudy {
    fn rescue(&self) -> &IviApp {
        &self.apps[2]
    }

    fn media(&self) -> &IviApp {
        &self.apps[0]
    }
}

fn setup_independent() -> CaseStudy {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    finish_setup(kernel, sack)
}

fn setup_enhanced() -> CaseStudy {
    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
    let apparmor = AppArmor::new(db);
    let sack = Sack::enhanced_apparmor(VEHICLE_ENHANCED_POLICY, Arc::clone(&apparmor)).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    finish_setup(kernel, sack)
}

fn finish_setup(kernel: Arc<Kernel>, sack: Arc<Sack>) -> CaseStudy {
    let hw = CarHardware::install(&kernel, 4, 4).unwrap();
    let mut ivi = IviSystem::new(Arc::clone(&kernel));
    let apps = standard_manifests()
        .into_iter()
        .map(|m| ivi.install_app(m).unwrap())
        .collect();
    CaseStudy {
        kernel,
        sack,
        hw,
        ivi,
        apps,
    }
}

fn crash_then_rescue(case: CaseStudy) {
    // Normal situation: nobody can unlock, not even the rescue daemon.
    assert!(matches!(
        case.rescue().unlock_door(0),
        Err(IviError::Kernel(_))
    ));
    assert!(case.hw.all_doors_locked());

    // The SDS replays a highway drive ending in a crash.
    let mut sds = SdsService::spawn(&case.kernel, standard_detectors()).unwrap();
    let report = sds.run_trace(&case.kernel, &highway_crash(8));
    assert!(report.events.contains(&"crash".to_string()));
    assert_eq!(case.sack.current_state_name(), "emergency");

    // Break the glass: doors and windows open for evacuation.
    for i in 0..4 {
        case.rescue().unlock_door(i).unwrap();
        case.rescue().open_window(i, 100).unwrap();
    }
    assert!(!case.hw.all_doors_locked());
    assert!(case.hw.windows().iter().all(|w| w.position() == 100));

    // A co-located app without the permission still cannot.
    assert!(case.media().unlock_door(0).is_err());

    // Resolution retracts the permission.
    sds.send_event("emergency_resolved").unwrap();
    assert_eq!(case.sack.current_state_name(), "parking_with_driver");
    assert!(case.rescue().unlock_door(0).is_err());
    sds.shutdown();
}

#[test]
fn independent_sack_case_study() {
    crash_then_rescue(setup_independent());
}

#[test]
fn enhanced_apparmor_case_study() {
    crash_then_rescue(setup_enhanced());
}

#[test]
fn framework_audit_captures_denied_and_allowed() {
    let case = setup_independent();
    let _ = case.media().unlock_door(0); // framework denies
    let _ = case.media().set_volume(50); // framework allows, kernel decides
    let log = case.ivi.audit_log();
    assert_eq!(log.len(), 2);
    assert!(!log[0].framework_allowed);
    assert!(log[1].framework_allowed);
}

#[test]
fn read_permission_survives_every_state() {
    // NORMAL (read access) is granted in all four states of the vehicle
    // policy — driving through the whole Fig. 2 machine must never break
    // the navi app's status reads.
    let case = setup_independent();
    let sds = SdsService::spawn(&case.kernel, standard_detectors()).unwrap();
    let navi = &case.apps[1];
    let mut visited = vec![case.sack.current_state_name()];
    for event in [
        "driver_left",
        "driver_entered",
        "start_driving",
        "crash",
        "emergency_resolved",
    ] {
        sds.send_event(event).unwrap();
        visited.push(case.sack.current_state_name());
        // Plain reads of the device node are covered by NORMAL in every
        // state (an ioctl, even a status query, would rightly need more).
        let state = navi.process().read_to_vec("/dev/car/door0");
        assert!(
            state.is_ok(),
            "read denied in state {}",
            case.sack.current_state_name()
        );
        assert_eq!(state.unwrap(), b"locked\n");
    }
    assert!(visited.contains(&"parking_without_driver".to_string()));
    assert!(visited.contains(&"emergency".to_string()));
    sds.shutdown();
}

#[test]
fn kernel_history_records_the_crash_time() {
    let case = setup_independent();
    let mut sds = SdsService::spawn(&case.kernel, standard_detectors()).unwrap();
    let crash_frame = SensorFrame::parked(Duration::from_secs(42))
        .with_speed(80.0)
        .with_accel(25.0);
    // Drive first so the crash transition exists from the current state.
    sds.send_event("start_driving").unwrap();
    sds.run_trace(&case.kernel, std::slice::from_ref(&crash_frame));
    let active = case.sack.active();
    let history = active.ssm.history();
    let crash = history
        .iter()
        .find(|r| active.ssm.space().event(r.event).name == "crash")
        .expect("crash recorded");
    assert_eq!(crash.at, Duration::from_secs(42));
    sds.shutdown();
}
