//! End-to-end fleet rollout (DESIGN.md §13) plus the telemetry-plane
//! property tests.
//!
//! The headline scenario boots 4 cohorts × 16 kernels behind one
//! [`FleetAggregator`], promotes a benign candidate cohort-by-cohort on
//! clean telemetry, then reruns with a read-revoking candidate whose
//! canary denial spike must trigger an automatic rollback within one soak
//! window. A twin fleet of never-upgraded kernels serves as the
//! differential oracle: after rollback, every rolled-back kernel must be
//! verdict-identical to its twin across a subject × path × permission
//! probe matrix in every situation state.
//!
//! The property tests cover the snapshot algebra the aggregation tree
//! relies on: merge is associative and commutative over randomized
//! snapshots, `delta_since` replays exactly against live captures, and an
//! instance dying mid-merge is reported, never a panic.

use std::sync::Arc;
use std::time::Duration;

use sack_core::telemetry::TELEMETRY_HIST_KEYS;
use sack_core::{HistogramSnapshot, Sack, TelemetrySnapshot};
use sack_fleet::{DetectorConfig, FleetAggregator, RolloutConfig, RolloutDriver, RolloutStatus};
use sack_kernel::cred::Credentials;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::trace::Tracepoint;
use sack_kernel::types::Pid;
use sack_suite::prop;

/// Grants read on the whole car device tree in every situation state.
const BASE_POLICY: &str = r#"
    states { normal = 0; emergency = 1; }
    events { crash; rescue_done; }
    transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
    initial normal;
    permissions { CAR; }
    state_per { normal: CAR; emergency: CAR; }
    per_rules { CAR: allow subject=* /dev/car/** r; }
"#;

/// Candidate that revokes reads: the car tree stays in the protected set
/// (the rule still covers it) but only grants writes, so door reads start
/// failing the moment this lands on a cohort.
const NARROW_POLICY: &str = r#"
    states { normal = 0; emergency = 1; }
    events { crash; rescue_done; }
    transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
    initial normal;
    permissions { CAR; }
    state_per { normal: CAR; emergency: CAR; }
    per_rules { CAR: allow subject=* /dev/car/** w; }
"#;

fn boot(policy: &str) -> (Arc<Kernel>, Arc<Sack>) {
    let sack = Sack::independent(policy).expect("test policy must compile");
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).expect("attach");
    kernel.trace().set_enabled(true);
    (kernel, sack)
}

/// Dispatches one open through the kernel's LSM stack (so the `hook_*`
/// tracepoints fire) and reports whether it was granted.
fn probe(kernel: &Kernel, uid: u32, path: &str, mask: AccessMask) -> bool {
    let ctx = HookCtx::new(Pid(4321), Credentials::user(uid, uid), None);
    let kpath = KPath::new(path).expect("probe path");
    let obj = ObjectRef::regular(&kpath);
    kernel.lsm().file_open(&ctx, &obj, mask).is_ok()
}

fn read_door(kernel: &Kernel, n: usize) -> usize {
    (0..n)
        .filter(|_| probe(kernel, 1000, "/dev/car/door0", AccessMask::READ))
        .count()
}

const COHORTS: [&str; 4] = ["canary", "wave-1", "wave-2", "wave-3"];
const PER_COHORT: usize = 16;

/// One booted member: the kernel and its attached SACK instance.
type Instance = (Arc<Kernel>, Arc<Sack>);

fn fleet() -> (Arc<FleetAggregator>, Vec<Instance>) {
    let agg = FleetAggregator::new();
    let mut instances = Vec::new();
    for cohort in COHORTS {
        for _ in 0..PER_COHORT {
            let (kernel, sack) = boot(BASE_POLICY);
            agg.register(&kernel, &sack, cohort);
            instances.push((kernel, sack));
        }
    }
    (agg, instances)
}

fn driver(agg: &Arc<FleetAggregator>, candidate: &str, soak_ticks: u64) -> RolloutDriver {
    let config = RolloutConfig {
        soak_ticks,
        detectors: DetectorConfig::default(),
    };
    let cohorts = COHORTS.iter().map(|c| c.to_string()).collect();
    RolloutDriver::new(Arc::clone(agg), cohorts, candidate, BASE_POLICY, config)
}

/// Fired counts of the five rollout tracepoints on the fleet hub, in
/// begin/push/promote/rollback/complete order.
fn rollout_counts(agg: &FleetAggregator) -> [u64; 5] {
    [
        Tracepoint::FleetRolloutBegin,
        Tracepoint::FleetRolloutPush,
        Tracepoint::FleetRolloutPromote,
        Tracepoint::FleetRolloutRollback,
        Tracepoint::FleetRolloutComplete,
    ]
    .map(|p| agg.hub().fired(p))
}

/// The probe matrix the differential oracle compares: subjects with
/// different uids, protected and unprotected paths, every access mask the
/// policies distinguish.
fn verdict_vector(kernel: &Kernel) -> Vec<bool> {
    let mut verdicts = Vec::new();
    for uid in [0, 1000] {
        for path in ["/dev/car/door0", "/dev/car/engine/ecu", "/etc/passwd"] {
            for mask in [
                AccessMask::READ,
                AccessMask::WRITE,
                AccessMask::READ | AccessMask::WRITE,
            ] {
                verdicts.push(probe(kernel, uid, path, mask));
            }
        }
    }
    verdicts
}

#[test]
fn staged_rollout_promotes_rolls_back_and_matches_never_upgraded_twins() {
    let (agg, instances) = fleet();
    assert_eq!(agg.len(), COHORTS.len() * PER_COHORT);

    // The never-upgraded twins: one per canary kernel, outside the fleet.
    let twins: Vec<Instance> = (0..PER_COHORT).map(|_| boot(BASE_POLICY)).collect();

    // --- Phase 1: a benign candidate promotes through all 4 cohorts. ---
    let mut promote = driver(&agg, BASE_POLICY, 2);
    let mut steps = 0;
    while !promote.finished() {
        for (kernel, _) in &instances {
            read_door(kernel, 4);
        }
        promote.step();
        steps += 1;
        assert!(
            steps <= 64,
            "promotion did not converge: {}",
            promote.status()
        );
    }
    assert_eq!(promote.status(), RolloutStatus::Promoted);
    assert!(promote.alerts().is_empty(), "clean telemetry raised alerts");
    // Every decision is on the fleet hub: one begin, a push and a promote
    // per cohort, no rollback, one complete.
    let after_promote = rollout_counts(&agg);
    assert_eq!(after_promote, [1, 4, 4, 0, 1]);

    // --- Phase 2: a read-revoking candidate is caught on the canary. ---
    let mut rollback = driver(&agg, NARROW_POLICY, 4);
    rollback.step(); // prime the detectors and push the canary
                     // The canary cohort now runs NARROW_POLICY, so its routine door reads
                     // are the denial spike; the rest of the fleet stays green.
    for (i, (kernel, _)) in instances.iter().enumerate() {
        let granted = read_door(kernel, 32);
        if i < PER_COHORT {
            assert_eq!(granted, 0, "canary instance {i} still grants reads");
        } else {
            assert_eq!(granted, 32, "non-canary instance {i} lost reads");
        }
    }
    let status = rollback.step(); // first soak tick observes the spike
    match &status {
        RolloutStatus::RolledBack { cohort, reason } => {
            assert_eq!(cohort, "canary");
            assert!(reason.contains("denial_spike"), "reason: {reason}");
        }
        other => panic!("expected rollback within one soak window, got {other}"),
    }
    let after_rollback = rollout_counts(&agg);
    assert_eq!(
        after_rollback,
        [2, 5, 4, 1, 2],
        "rollback decisions missing from the fleet hub"
    );

    // --- Phase 3: differential oracle against the twins. ---
    // Rolled-back kernels run BASE_POLICY again with their SSM reset to
    // the initial state — exactly a never-upgraded twin's state. Deliver
    // the same synchronizing situation events to both sides and compare
    // verdicts across the whole probe matrix in each state.
    for (i, twin) in twins.iter().enumerate() {
        let (kernel, sack) = &instances[i];
        let (twin_kernel, twin_sack) = twin;
        assert_eq!(verdict_vector(kernel), verdict_vector(twin_kernel));
        for event in ["crash", "rescue_done"] {
            sack.deliver_event(event, Duration::from_secs(1)).unwrap();
            twin_sack
                .deliver_event(event, Duration::from_secs(1))
                .unwrap();
            assert_eq!(
                verdict_vector(kernel),
                verdict_vector(twin_kernel),
                "rolled-back canary {i} diverged from its twin after {event}"
            );
        }
    }
}

/// A randomized, internally consistent snapshot: arbitrary instance
/// generations, tracepoint counts, latency histograms and flight-loss
/// counters.
fn arbitrary_snapshot(rng: &mut prop::Rng) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::default();
    for _ in 0..rng.range(1, 4) {
        snap.instances
            .insert(rng.below(6) as u64, rng.below(100) as u64);
    }
    snap.points = (0..Tracepoint::ALL.len())
        .map(|_| rng.below(1000) as u64)
        .collect();
    for _ in 0..rng.range(0, 5) {
        let key = rng.below(TELEMETRY_HIST_KEYS) as u16;
        let hist = snap
            .hists
            .entry(key)
            .or_insert_with(HistogramSnapshot::default);
        for _ in 0..rng.range(1, 6) {
            let bucket = rng.below(hist.buckets.len());
            let count = rng.range(1, 50) as u64;
            hist.buckets[bucket] += count;
            hist.sum += count * rng.below(5000) as u64;
        }
    }
    snap.flight_total = rng.below(10_000) as u64;
    snap.flight_dropped = rng.below(100) as u64;
    for _ in 0..rng.range(0, 3) {
        snap.flight_dropped_by_producer
            .insert(rng.below(8) as u64, rng.range(1, 40) as u64);
    }
    snap
}

#[test]
fn merge_is_associative_and_commutative() {
    prop::for_cases(200, |rng| {
        let a = arbitrary_snapshot(rng);
        let b = arbitrary_snapshot(rng);
        let c = arbitrary_snapshot(rng);
        let ab_c = a.clone().merged(&b).merged(&c);
        let a_bc = a.clone().merged(&b.clone().merged(&c));
        assert_eq!(ab_c, a_bc, "merge is not associative");
        let ab = a.clone().merged(&b);
        let ba = b.merged(&a);
        assert_eq!(ab, ba, "merge is not commutative");
    });
}

#[test]
fn delta_since_replays_live_captures_exactly() {
    prop::for_cases(12, |rng| {
        let (kernel, sack) = boot(BASE_POLICY);
        let tracing = Arc::clone(sack.tracing().expect("tracing installed"));
        read_door(&kernel, rng.range(1, 30));
        if rng.bool() {
            probe(&kernel, 1000, "/dev/car/door0", AccessMask::WRITE);
        }
        let base = TelemetrySnapshot::capture(&tracing);
        read_door(&kernel, rng.range(0, 40));
        for _ in 0..rng.range(0, 6) {
            probe(&kernel, 0, "/dev/car/engine/ecu", AccessMask::WRITE);
        }
        if rng.bool() {
            sack.deliver_event("crash", Duration::from_secs(1)).unwrap();
        }
        let current = TelemetrySnapshot::capture(&tracing);
        let delta = current.delta_since(&base);
        assert_eq!(
            base.clone().merged(&delta),
            current,
            "base ⊕ delta failed to reproduce the later capture"
        );
    });
}

#[test]
fn instance_death_mid_merge_never_panics() {
    prop::for_cases(8, |rng| {
        let agg = FleetAggregator::new();
        let mut instances = Vec::new();
        for i in 0..6 {
            let (kernel, sack) = boot(BASE_POLICY);
            let cohort = if i % 2 == 0 { "even" } else { "odd" };
            agg.register(&kernel, &sack, cohort);
            read_door(&kernel, 5);
            instances.push(Some((kernel, sack)));
        }
        // A reaper thread drops a random subset of kernels while the main
        // thread folds ticks and renders scrapes: member death must only
        // ever show up as a `dead` count, never a panic.
        let mut doomed = Vec::new();
        for slot in instances.iter_mut() {
            if rng.bool() {
                doomed.push(slot.take());
            }
        }
        let expected_dead = doomed.iter().filter(|d| d.is_some()).count();
        std::thread::scope(|scope| {
            scope.spawn(move || drop(doomed));
            for _ in 0..4 {
                let tick = agg.tick();
                let dead: usize = tick.cohorts.values().map(|c| c.dead).sum();
                assert!(dead <= expected_dead);
                let page = agg.render_prometheus();
                assert!(page.contains("sack_fleet_instances"));
            }
        });
        let final_tick = agg.tick();
        let dead: usize = final_tick.cohorts.values().map(|c| c.dead).sum();
        assert_eq!(dead, expected_dead);
        let live: usize = final_tick.cohorts.values().map(|c| c.live).sum();
        assert_eq!(live, 6 - expected_dead);
    });
}
