//! SACK stacked with a *type-enforcement* module (paper §II-A-4: "most
//! security modules are based on the type enforcement model") — the
//! compatibility claim generalized beyond AppArmor: SACK first, TE second,
//! white-list combination, and independent SACK resolving nothing about
//! types (clean separation of models).

use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;
use sack_kernel::path::KPath;
use sack_kernel::types::Mode;
use sack_te::{TePolicy, TypeEnforcement};

const SACK_POLICY: &str = r#"
states { normal = 0; emergency = 1; }
events { crash; resolved; }
transitions { normal -crash-> emergency; emergency -resolved-> normal; }
initial normal;
permissions { NORMAL; DOORS; }
state_per {
    *: NORMAL;
    emergency: DOORS;
}
per_rules {
    NORMAL: allow subject=* /dev/car/** r;
    DOORS: allow subject=* /dev/car/door* wi;
}
"#;

const TE_POLICY: &str = r#"
type rescue_t;
type rescue_exec_t;
type car_dev_t;
label /usr/bin/rescue_daemon rescue_exec_t;
label /dev/car/** car_dev_t;
domain_transition unconfined_t rescue_exec_t rescue_t;
allow rescue_t car_dev_t { read write ioctl };
allow rescue_t rescue_exec_t { read execute };
"#;

fn boot() -> (Arc<sack_kernel::Kernel>, Arc<Sack>, Arc<TypeEnforcement>) {
    let sack = Sack::independent(SACK_POLICY).unwrap();
    let te = TypeEnforcement::new(Arc::new(TePolicy::parse(TE_POLICY).unwrap()));
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&te) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/dev/car").unwrap())
        .unwrap();
    for (path, mode) in [
        ("/dev/car/door0", Mode(0o666)),
        ("/usr/bin/rescue_daemon", Mode::EXEC),
    ] {
        kernel
            .vfs()
            .create_file(
                &KPath::new(path).unwrap(),
                mode,
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
    }
    (kernel, sack, te)
}

#[test]
fn stacking_order_and_names() {
    let (kernel, _sack, _te) = boot();
    assert_eq!(kernel.lsm().module_names(), vec!["sack", "te"]);
}

#[test]
fn both_modules_must_allow() {
    let (kernel, sack, te) = boot();
    let rescue = kernel.spawn(Credentials::user(900, 900));
    rescue.exec("/usr/bin/rescue_daemon").unwrap();
    assert_eq!(
        te.policy().type_name(te.domain_of(rescue.pid())),
        "rescue_t"
    );

    // Normal situation: TE would allow the write (rescue_t has the AV
    // rule), but SACK's situation policy denies it — SACK answers first.
    let err = rescue
        .open("/dev/car/door0", OpenFlags::write_only())
        .unwrap_err();
    assert_eq!(err.context(), Some("sack"));

    // Emergency: SACK now allows, and TE (also allowing) lets it through.
    sack.deliver_event("crash", std::time::Duration::ZERO)
        .unwrap();
    assert!(rescue
        .open("/dev/car/door0", OpenFlags::write_only())
        .is_ok());

    // A different confined domain is stopped by TE even though SACK allows:
    // the emergency grant is not a bypass of the other module.
    let intruder = kernel.spawn(Credentials::user(1000, 1000));
    te.set_domain(intruder.pid(), "rescue_t").unwrap();
    // rescue_t may write car devices, so craft the failing case the other
    // way: an unconfined-but-SACK-denied path after reverting to normal.
    sack.deliver_event("resolved", std::time::Duration::ZERO)
        .unwrap();
    let err = intruder
        .open("/dev/car/door0", OpenFlags::write_only())
        .unwrap_err();
    assert_eq!(err.context(), Some("sack"));
}

#[test]
fn te_denial_after_sack_allow() {
    let (kernel, sack, te) = boot();
    sack.deliver_event("crash", std::time::Duration::ZERO)
        .unwrap();
    // A task confined to a domain with no AV rules at all.
    let policy = te.policy();
    assert!(policy.type_id("rescue_t").is_some());
    let jailed = kernel.spawn(Credentials::user(1000, 1000));
    // Place it in car_dev_t-as-domain (an object type with no allow rules):
    // everything it touches is denied by TE, including what SACK allows.
    te.set_domain(jailed.pid(), "car_dev_t").unwrap();
    let err = jailed
        .open("/dev/car/door0", OpenFlags::read_only())
        .unwrap_err();
    assert_eq!(
        err.context(),
        Some("te"),
        "SACK allowed (NORMAL read), TE denied"
    );
}

#[test]
fn triple_stack_sack_apparmor_te() {
    // The full zoo: SACK, AppArmor and TE all stacked, all consulted.
    use sack_apparmor::{AppArmor, PolicyDb};
    let sack = Sack::independent(SACK_POLICY).unwrap();
    let db = Arc::new(PolicyDb::new());
    db.load_text("profile everything { /** rwxmi, }").unwrap();
    let apparmor = AppArmor::new(Arc::clone(&db));
    let te = TypeEnforcement::new(Arc::new(TePolicy::parse(TE_POLICY).unwrap()));
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .security_module(Arc::clone(&te) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    assert_eq!(kernel.lsm().module_names(), vec!["sack", "apparmor", "te"]);
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/dev/car").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/dev/car/door0").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let p = kernel.spawn(Credentials::user(1000, 1000));
    apparmor.set_profile(p.pid(), "everything").unwrap();
    // Unconfined in TE, permissive AppArmor profile, SACK grants reads.
    assert!(p.open("/dev/car/door0", OpenFlags::read_only()).is_ok());
    // SACK still gates writes in the normal situation, ahead of both.
    let err = p
        .open("/dev/car/door0", OpenFlags::write_only())
        .unwrap_err();
    assert_eq!(err.context(), Some("sack"));
    // SDS flips the situation; all three modules then concur.
    let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    let fd = sds
        .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
        .unwrap();
    sds.write(fd, b"crash\n").unwrap();
    assert!(p.open("/dev/car/door0", OpenFlags::write_only()).is_ok());
}
