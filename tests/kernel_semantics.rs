//! Integration test: cross-crate kernel semantics — that the simulated
//! substrate behaves like the Linux facilities SACK's design depends on
//! (hook ordering, confinement inheritance, securityfs protection,
//! DAC-before-MAC, fd sharing across fork).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;
use sack_kernel::path::KPath;
use sack_kernel::types::Mode;

const GATE_POLICY: &str = r#"
states { closed = 0; open = 1; }
events { open_up; close_down; }
transitions { closed -open_up-> open; open -close_down-> closed; }
initial closed;
permissions { GATE; }
state_per { open: GATE; }
per_rules { GATE: allow subject=* /gated/** rw; }
"#;

#[test]
fn dac_denies_before_mac_is_consulted() {
    let sack = Sack::independent(GATE_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/gated").unwrap())
        .unwrap();
    // 0600 root-owned file inside the gated tree.
    kernel
        .vfs()
        .create_file(
            &KPath::new("/gated/private").unwrap(),
            Mode(0o600),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let user = kernel.spawn(Credentials::user(1000, 1000));
    let before = sack.stats().checks.load(Ordering::Relaxed);
    let err = user
        .open("/gated/private", OpenFlags::read_only())
        .unwrap_err();
    // DAC answered; SACK's check counter did not move.
    assert_eq!(err.context(), Some("dac"));
    assert_eq!(sack.stats().checks.load(Ordering::Relaxed), before);
}

#[test]
fn open_time_allow_does_not_survive_situation_change_for_new_opens() {
    // A descriptor opened during the "open" state keeps working at the
    // file_permission level only if the state still allows it — SACK
    // checks *every* read/write, so closing the gate cuts off even
    // already-open descriptors (stronger than open-time-only checking).
    let sack = Sack::independent(GATE_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/gated").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/gated/data").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let user = kernel.spawn(Credentials::user(1000, 1000));
    sack.deliver_event("open_up", std::time::Duration::ZERO)
        .unwrap();
    let fd = user.open("/gated/data", OpenFlags::read_write()).unwrap();
    assert!(user.write(fd, b"while-open").is_ok());

    sack.deliver_event("close_down", std::time::Duration::ZERO)
        .unwrap();
    let err = user.write(fd, b"after-close").unwrap_err();
    assert_eq!(err.context(), Some("sack"));
    // Reopening is denied too, of course.
    assert!(user.open("/gated/data", OpenFlags::read_only()).is_err());
}

#[test]
fn confinement_inherits_across_fork_chains() {
    let db = Arc::new(PolicyDb::new());
    db.load_text("profile app /usr/bin/app { /usr/bin/** rxm, /tmp/** rw, }")
        .unwrap();
    let apparmor = AppArmor::new(db);
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/usr/bin/app").unwrap(),
            Mode::EXEC,
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let p = kernel.spawn(Credentials::user(1000, 1000));
    p.exec("/usr/bin/app").unwrap();
    let c1 = p.fork().unwrap();
    let c2 = c1.fork().unwrap();
    let c3 = c2.fork().unwrap();
    for (i, proc) in [&c1, &c2, &c3].into_iter().enumerate() {
        assert_eq!(
            apparmor.current_profile(proc.pid()).as_deref(),
            Some("app"),
            "generation {i}"
        );
        assert!(
            proc.write_file("/etc/nope", b"x").is_err(),
            "generation {i}"
        );
    }
    // Exit cleans up confinement bookkeeping.
    let pid3 = c3.pid();
    c3.exit();
    assert_eq!(apparmor.current_profile(pid3), None);
    assert_eq!(apparmor.confined_count(), 3); // p, c1, c2
}

#[test]
fn shared_descriptor_offset_after_fork() {
    // POSIX: a forked child shares the open file description, including
    // the offset — security modules must not be confused by that.
    let kernel = sack_kernel::Kernel::boot_default();
    let p = kernel.spawn(Credentials::root());
    p.write_file("/tmp/shared", b"abcdef").unwrap();
    let fd = p.open("/tmp/shared", OpenFlags::read_only()).unwrap();
    let mut buf = [0u8; 2];
    p.read(fd, &mut buf).unwrap();
    assert_eq!(&buf, b"ab");
    let child = p.fork().unwrap();
    child.read(fd, &mut buf).unwrap();
    assert_eq!(&buf, b"cd", "child continues at the shared offset");
    p.read(fd, &mut buf).unwrap();
    assert_eq!(&buf, b"ef", "parent sees the child's progress");
    child.exit();
}

#[test]
fn securityfs_nodes_visible_via_normal_vfs() {
    // securityfs "looks from user space like part of sysfs" — directory
    // listing and stat must work through ordinary syscalls.
    let sack = Sack::independent(GATE_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let p = kernel.spawn(Credentials::root());
    let entries = kernel
        .vfs()
        .read_dir(&KPath::new("/sys/kernel/security/SACK").unwrap())
        .unwrap();
    assert_eq!(
        entries,
        vec!["audit", "events", "policy", "sds", "state", "stats", "tracing"]
    );
    let tracing = kernel
        .vfs()
        .read_dir(&KPath::new("/sys/kernel/security/SACK/tracing").unwrap())
        .unwrap();
    assert_eq!(
        tracing,
        vec!["enable", "events", "flight", "metrics", "metrics_json"]
    );
    let meta = p.stat("/sys/kernel/security/SACK/state").unwrap();
    assert_eq!(meta.kind, sack_kernel::ObjectKind::SecurityFs);
}

#[test]
fn sds_capability_is_the_minimal_grant() {
    // CAP_MAC_ADMIN alone is enough for event transmission, and nothing
    // about it grants access to protected objects.
    let sack = Sack::independent(GATE_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/gated").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/gated/data").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    let fd = sds
        .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
        .unwrap();
    sds.write(fd, b"open_up\n").unwrap(); // allowed: has CAP_MAC_ADMIN
    sds.write(fd, b"close_down\n").unwrap();
    // But the gate being closed applies to the SDS too.
    assert!(sds.open("/gated/data", OpenFlags::read_only()).is_err());
}

#[test]
fn symlink_alias_cannot_bypass_path_based_mac() {
    // The classic path-based-MAC attack: create /tmp/benign -> protected
    // object, access the alias. Resolution canonicalizes before the hooks,
    // so SACK mediates the real path.
    let sack = Sack::independent(GATE_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/gated").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/gated/data").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let attacker = kernel.spawn(Credentials::user(1000, 1000));
    attacker.symlink("/gated/data", "/tmp/benign").unwrap();
    let err = attacker
        .open("/tmp/benign", OpenFlags::read_only())
        .unwrap_err();
    assert_eq!(err.context(), Some("sack"), "alias must hit the real rule");
    // The same alias works once the gate opens — it is mediated as the
    // target, in both directions.
    sack.deliver_event("open_up", std::time::Duration::ZERO)
        .unwrap();
    assert!(attacker.open("/tmp/benign", OpenFlags::read_only()).is_ok());
    // And the SACK audit log names the canonical object.
    let log = sack.audit().records();
    assert_eq!(log[0].path, "/gated/data");
}

#[test]
fn symlink_alias_cannot_bypass_apparmor_profiles() {
    let db = Arc::new(PolicyDb::new());
    db.load_text("profile app { /tmp/** rw, }").unwrap();
    let apparmor = AppArmor::new(db);
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    let root = kernel.spawn(Credentials::root());
    root.write_file("/etc/secret.conf", b"s").unwrap();
    // The confined app plants a link inside its writable area...
    let app = kernel.spawn(Credentials::root());
    apparmor.set_profile(app.pid(), "app").unwrap();
    app.symlink("/etc/secret.conf", "/tmp/alias").unwrap();
    // ...but opening it is mediated as /etc/secret.conf and denied.
    let err = app.open("/tmp/alias", OpenFlags::read_only()).unwrap_err();
    assert_eq!(err.context(), Some("apparmor"));
}

#[test]
fn rename_cannot_smuggle_objects_out_of_protection() {
    // A rename is a write to both names: moving a protected file to an
    // unprotected path (to dodge SACK) must itself be denied.
    let sack = Sack::independent(GATE_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/gated").unwrap())
        .unwrap();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/gated/data").unwrap(),
            Mode(0o666),
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let user = kernel.spawn(Credentials::user(0, 0));
    let mut cred = sack_kernel::Credentials::user(0, 0);
    cred.caps.insert(Capability::DacOverride);
    user.task().set_cred(cred);
    // Gate closed: the rename out of the protected tree is denied by SACK.
    let err = user.rename("/gated/data", "/tmp/loot").unwrap_err();
    assert_eq!(err.context(), Some("sack"));
    // Gate open: allowed (the state grants rw on /gated/**)... but only the
    // source is protected; the new path is unprotected, so it passes.
    sack.deliver_event("open_up", std::time::Duration::ZERO)
        .unwrap();
    user.rename("/gated/data", "/tmp/loot").unwrap();
    assert!(user.stat("/tmp/loot").is_ok());
}

#[test]
fn apparmor_rename_needs_write_on_both_ends() {
    let db = Arc::new(PolicyDb::new());
    db.load_text("profile app { /tmp/** rw, /srv/inbox/* r, }")
        .unwrap();
    let apparmor = AppArmor::new(db);
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    kernel
        .vfs()
        .mkdir_all(&KPath::new("/srv/inbox").unwrap())
        .unwrap();
    let root = kernel.spawn(Credentials::root());
    root.write_file("/tmp/mine", b"x").unwrap();
    root.write_file("/srv/inbox/readonly", b"y").unwrap();
    apparmor.set_profile(root.pid(), "app").unwrap();
    // Within /tmp: both ends writable -> allowed.
    root.rename("/tmp/mine", "/tmp/mine2").unwrap();
    // Source readable but not writable -> denied by AppArmor.
    let err = root
        .rename("/srv/inbox/readonly", "/tmp/stolen")
        .unwrap_err();
    assert_eq!(err.context(), Some("apparmor"));
    // Destination outside the profile -> denied too.
    let err = root.rename("/tmp/mine2", "/srv/inbox/out").unwrap_err();
    assert_eq!(err.context(), Some("apparmor"));
}

#[test]
fn exec_denied_by_module_leaves_old_image() {
    let db = Arc::new(PolicyDb::new());
    db.load_text("profile app /usr/bin/app { /usr/bin/app rx, /tmp/** rw, }")
        .unwrap();
    let apparmor = AppArmor::new(db);
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    for exe in ["/usr/bin/app", "/usr/bin/other"] {
        kernel
            .vfs()
            .create_file(
                &KPath::new(exe).unwrap(),
                Mode::EXEC,
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
    }
    let p = kernel.spawn(Credentials::user(1000, 1000));
    p.exec("/usr/bin/app").unwrap();
    // The profile does not grant x on /usr/bin/other.
    assert!(p.exec("/usr/bin/other").is_err());
    assert_eq!(p.task().exe().unwrap().as_str(), "/usr/bin/app");
}
