//! Sanity checks on the benchmark harness itself: the quick-scale suite
//! must produce complete, plausible results in every configuration, and
//! the overhead bookkeeping must be self-consistent. (Precise numbers are
//! the criterion benches' job; these tests guard the harness.)

use sack_lmbench::suite::{run_suite, LmbenchResult, Op, Scale};
use sack_lmbench::testbed::{LsmConfig, TestBed, TestBedOptions};

fn quick(config: LsmConfig) -> LmbenchResult {
    let bed = TestBed::boot(&TestBedOptions::new(config));
    run_suite(&bed, Scale::quick())
}

/// Best-of-two quick runs: the sanity bounds must hold even when the test
/// binary's other tests run in parallel and steal CPU.
fn quick_best(options: &TestBedOptions) -> LmbenchResult {
    let bed = TestBed::boot(options);
    let mut best = run_suite(&bed, Scale::quick());
    best.merge_best(&run_suite(&bed, Scale::quick()));
    best
}

#[test]
fn all_rows_present_in_all_configs() {
    for config in [
        LsmConfig::NoLsm,
        LsmConfig::AppArmor,
        LsmConfig::SackEnhancedAppArmor,
        LsmConfig::IndependentSack,
    ] {
        let result = quick(config);
        for op in Op::ALL {
            let v = result
                .get(op)
                .unwrap_or_else(|| panic!("{config}: {op} missing"));
            assert!(v.is_finite() && v > 0.0, "{config}: {op} = {v}");
        }
    }
}

#[test]
fn latencies_and_bandwidths_are_in_plausible_ranges() {
    let result = quick(LsmConfig::AppArmor);
    // Latency ops: between 1 ns and 10 ms per op on any sane machine.
    for op in Op::ALL.into_iter().filter(|o| o.smaller_is_better()) {
        let us = result.get(op).unwrap();
        assert!((0.0001..10_000.0).contains(&us), "{op} = {us}µs");
    }
    // Bandwidths: between 1 MB/s and 1 TB/s.
    for op in Op::ALL.into_iter().filter(|o| !o.smaller_is_better()) {
        let mbps = result.get(op).unwrap();
        assert!((1.0..1_000_000.0).contains(&mbps), "{op} = {mbps} MB/s");
    }
    // Ordering facts that must hold regardless of machine: a 10K create
    // writes more than a 0K create; fork does more than a null syscall.
    assert!(result.get(Op::FileCreate10k) > result.get(Op::FileCreate0k));
    assert!(result.get(Op::Fork) > result.get(Op::Syscall));
}

#[test]
fn overheads_are_self_consistent() {
    let base = quick(LsmConfig::NoLsm);
    let same = base.clone();
    for op in Op::ALL {
        assert_eq!(same.overhead_vs(&base, op), Some(0.0));
    }
    assert_eq!(same.mean_overhead_vs(&base), 0.0);
}

#[test]
fn rule_count_sweep_does_not_blow_up_unrelated_ops() {
    // The heart of Table III: 1000 SACK rules must not visibly change the
    // cost of operations on unprotected paths. Quick scale is noisy, so
    // the bound is generous — this guards against O(rules) scans on the
    // hot path, which would show up as multiples, not percentages.
    let small = quick_best(&TestBedOptions::new(LsmConfig::IndependentSack).with_sack_rules(0));
    let large = quick_best(&TestBedOptions::new(LsmConfig::IndependentSack).with_sack_rules(1000));
    for op in [Op::Io, Op::Stat, Op::OpenClose] {
        let a = small.get(op).unwrap();
        let b = large.get(op).unwrap();
        // An O(rules) scan would be a 10-100x blowup; 8x absorbs scheduler
        // noise from parallel tests while still catching regressions.
        assert!(
            b < a * 8.0,
            "{op}: 1000 rules made it {a} -> {b} µs (O(rules) scan on the hot path?)"
        );
    }
}

#[test]
fn state_count_sweep_does_not_blow_up_file_ops() {
    // Fig. 3a guard, same reasoning.
    let few = quick_best(&TestBedOptions::new(LsmConfig::IndependentSack).with_sack_states(2));
    let many = quick_best(&TestBedOptions::new(LsmConfig::IndependentSack).with_sack_states(100));
    for op in [Op::Io, Op::OpenClose] {
        let a = few.get(op).unwrap();
        let b = many.get(op).unwrap();
        assert!(
            b < a * 8.0,
            "{op}: 100 states made it {a} -> {b} µs (per-state cost on the hot path?)"
        );
    }
}
