//! Observer-effect differential property: sack-trace must never change a
//! verdict. The stacked SACK + AppArmor decision sequence is replayed
//! against three otherwise-identical systems — tracing never attached,
//! tracing attached and enabled, and tracing toggled on/off mid-run —
//! and the three verdict transcripts must be byte-identical.
//!
//! This is the contract that makes the tracepoints safe to ship enabled
//! in the field: observation may cost nanoseconds, it may not cost
//! correctness.

use std::sync::Arc;

use sack_suite::prop::{self, Rng};

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::Sack;
use sack_kernel::cred::Credentials;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::trace::TraceHub;
use sack_kernel::types::Pid;
use sack_vehicle::{VEHICLE_APPARMOR_PROFILES, VEHICLE_SACK_POLICY};

const EVENTS: [&str; 6] = [
    "crash",
    "park",
    "start_driving",
    "driver_left",
    "driver_entered",
    "emergency_resolved",
];

/// One scripted operation, generated once and replayed verbatim against
/// every instance.
#[derive(Clone)]
enum Op {
    Deliver(&'static str),
    Probe {
        pid: u32,
        exe: &'static str,
        path: String,
        mask: AccessMask,
    },
}

fn vehicle_path(rng: &mut Rng) -> String {
    let roots = [
        "/dev/car/door0",
        "/dev/car/window1",
        "/dev/car/engine",
        "/dev/audio",
        "/usr/lib/media/codec.so",
        "/var/log/ivi.log",
        "/etc/passwd",
    ];
    (*rng.pick(&roots)).to_string()
}

// `Rng::pick` returns `&&'static str` here; the deref clippy flags as
// redundant is what lets inference settle on `T = &str`.
#[allow(clippy::explicit_auto_deref)]
fn script(rng: &mut Rng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            if rng.bool() && rng.bool() {
                Op::Deliver(*rng.pick(&EVENTS))
            } else {
                Op::Probe {
                    pid: if rng.bool() { 9 } else { 10 },
                    exe: *rng.pick(&["/usr/bin/media_app", "/usr/bin/rescue_daemon"]),
                    path: vehicle_path(rng),
                    mask: *rng.pick(&[
                        AccessMask::READ,
                        AccessMask::WRITE,
                        AccessMask::EXEC,
                        AccessMask::APPEND,
                    ]),
                }
            }
        })
        .collect()
}

/// How this instance drives the tracing switch while the script runs.
enum Tracing {
    /// No `SackTracing` ever attached: the pristine hot path.
    Absent,
    /// Attached and enabled for the whole run.
    Enabled,
    /// Attached, and the hub flips on/off every few operations.
    Toggled,
}

/// Builds a stacked instance, replays the script, and returns the
/// verdict transcript: one `s<bit>a<bit>` pair per probe, `e<bit>` per
/// event delivery (accepted/rejected), in order.
fn transcript(ops: &[Op], tracing: Tracing) -> String {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
    let apparmor = AppArmor::new(Arc::clone(&db));
    sack.set_profile_oracle(Arc::clone(&apparmor));
    apparmor.set_profile(Pid(9), "media_app").unwrap();

    let hub = TraceHub::new();
    match tracing {
        Tracing::Absent => {}
        Tracing::Enabled => {
            sack.install_tracing(Arc::clone(&hub));
            hub.set_enabled(true);
        }
        Tracing::Toggled => {
            sack.install_tracing(Arc::clone(&hub));
        }
    }
    let toggled = matches!(tracing, Tracing::Toggled);

    let mut out = String::new();
    for (i, op) in ops.iter().enumerate() {
        if toggled && i % 3 == 0 {
            hub.set_enabled(!hub.enabled());
        }
        match op {
            Op::Deliver(event) => {
                let ok = sack.deliver_event(event, std::time::Duration::ZERO).is_ok();
                out.push('e');
                out.push(if ok { '1' } else { '0' });
            }
            Op::Probe {
                pid,
                exe,
                path,
                mask,
            } => {
                let ctx = HookCtx::new(
                    Pid(*pid),
                    Credentials::user(1000, 1000),
                    Some(KPath::new(exe).unwrap()),
                );
                let path = KPath::new(path).unwrap();
                let obj = ObjectRef::regular(&path);
                let s = sack.file_open(&ctx, &obj, *mask).is_ok();
                let a = apparmor.file_open(&ctx, &obj, *mask).is_ok();
                out.push('s');
                out.push(if s { '1' } else { '0' });
                out.push('a');
                out.push(if a { '1' } else { '0' });
            }
        }
    }
    out
}

#[test]
fn stacked_verdicts_are_identical_with_tracing_off_on_and_toggled() {
    prop::check(|rng| {
        let ops = script(rng, 48);
        let absent = transcript(&ops, Tracing::Absent);
        let enabled = transcript(&ops, Tracing::Enabled);
        let toggled = transcript(&ops, Tracing::Toggled);
        assert_eq!(
            absent, enabled,
            "enabling tracing changed a stacked verdict"
        );
        assert_eq!(
            absent, toggled,
            "toggling tracing mid-run changed a stacked verdict"
        );
    });
}

/// The same contract through a full kernel boot: decisions reached via
/// the LSM dispatch layer (where `hook_enter`/`hook_exit` fire and
/// latencies are recorded) must match a never-traced twin syscall for
/// syscall.
#[test]
fn kernel_dispatch_verdicts_survive_tracing_toggle() {
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::KernelBuilder;

    let boot = || {
        let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).unwrap();
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/dev/car").unwrap())
            .unwrap();
        for f in ["/dev/car/door0", "/dev/car/engine", "/dev/audio"] {
            kernel
                .vfs()
                .create_file(
                    &KPath::new(f).unwrap(),
                    sack_kernel::Mode(0o666),
                    sack_kernel::Uid::ROOT,
                    sack_kernel::Gid(0),
                )
                .unwrap();
        }
        (kernel, sack)
    };
    let (traced_kernel, traced_sack) = boot();
    let (plain_kernel, plain_sack) = boot();

    prop::check(|rng| {
        // Flip the traced twin's hub at random; the plain twin has its
        // tracing attached (attach() installs it) but never enabled.
        if rng.bool() {
            traced_kernel
                .trace()
                .set_enabled(!traced_kernel.trace().enabled());
        }
        if rng.bool() {
            let event = *rng.pick(&EVENTS);
            let t = traced_sack
                .deliver_event(event, std::time::Duration::ZERO)
                .is_ok();
            let p = plain_sack
                .deliver_event(event, std::time::Duration::ZERO)
                .is_ok();
            assert_eq!(t, p, "event `{event}` accepted differently");
        } else {
            let path = *rng.pick(&["/dev/car/door0", "/dev/car/engine", "/dev/audio"]);
            let flags = if rng.bool() {
                OpenFlags::read_only()
            } else {
                OpenFlags::write_only()
            };
            let t_proc = traced_kernel.spawn(Credentials::user(1000, 1000));
            let p_proc = plain_kernel.spawn(Credentials::user(1000, 1000));
            let t = t_proc.open(path, flags).is_ok();
            let p = p_proc.open(path, flags).is_ok();
            assert_eq!(
                t, p,
                "open(`{path}`) diverged between traced and untraced kernels"
            );
        }
    });
}
