//! Failure injection: a security module that denies pseudo-randomly, to
//! verify the kernel stays consistent when hooks fail at awkward moments —
//! no leaked descriptors, no leaked tasks, no half-created files, no
//! poisoned locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sack_kernel::cred::Credentials;
use sack_kernel::error::{Errno, KernelError, KernelResult};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectKind, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;

/// Denies every `period`-th mediated call, deterministically.
struct Chaos {
    calls: AtomicU64,
    denials: AtomicU64,
    period: u64,
}

impl Chaos {
    fn new(period: u64) -> Arc<Chaos> {
        Arc::new(Chaos {
            calls: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            period,
        })
    }

    fn gate(&self) -> KernelResult<()> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if n % self.period == self.period - 1 {
            self.denials.fetch_add(1, Ordering::Relaxed);
            Err(KernelError::with_context(Errno::EACCES, "chaos"))
        } else {
            Ok(())
        }
    }
}

impl SecurityModule for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn file_open(&self, _: &HookCtx, _: &ObjectRef<'_>, _: AccessMask) -> KernelResult<()> {
        self.gate()
    }
    fn file_permission(&self, _: &HookCtx, _: &ObjectRef<'_>, _: AccessMask) -> KernelResult<()> {
        self.gate()
    }
    fn inode_create(&self, _: &HookCtx, _: &KPath, _: &str, _: ObjectKind) -> KernelResult<()> {
        self.gate()
    }
    fn inode_unlink(&self, _: &HookCtx, _: &ObjectRef<'_>) -> KernelResult<()> {
        self.gate()
    }
    fn task_alloc(&self, _: &HookCtx, _: Pid) -> KernelResult<()> {
        self.gate()
    }
}

fn boot(period: u64) -> (Arc<Kernel>, Arc<Chaos>) {
    let chaos = Chaos::new(period);
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&chaos) as Arc<dyn SecurityModule>)
        .boot();
    (kernel, chaos)
}

#[test]
fn file_workload_survives_intermittent_denials() {
    let (kernel, chaos) = boot(7);
    let p = kernel.spawn(Credentials::root());
    let mut successes = 0u32;
    let mut failures = 0u32;
    for i in 0..500 {
        let path = format!("/tmp/chaos_{i}");
        // Any step may fail; cleanup must still leave the world sane.
        let outcome: KernelResult<()> = (|| {
            let fd = p.open(&path, OpenFlags::create_new())?;
            let write_result = p.write(fd, b"data");
            p.close(fd)?;
            write_result?;
            let fd = p.open(&path, OpenFlags::read_only())?;
            let mut buf = [0u8; 4];
            let read_result = p.read(fd, &mut buf);
            p.close(fd)?;
            read_result?;
            Ok(())
        })();
        match outcome {
            Ok(()) => successes += 1,
            Err(e) => {
                assert_eq!(e.errno(), Errno::EACCES, "only injected denials expected");
                failures += 1;
            }
        }
        let _ = p.unlink(&path);
    }
    assert!(successes > 0, "some iterations must succeed");
    assert!(
        failures > 0,
        "some iterations must fail (period 7 over 7 hooks/iter)"
    );
    assert!(chaos.denials.load(Ordering::Relaxed) > 0);
    // Invariant: no descriptor leaks despite mid-sequence failures.
    assert_eq!(p.task().fds.lock().open_count(), 0);
}

#[test]
fn denied_fork_leaves_no_zombie() {
    let (kernel, _chaos) = boot(2); // every second call denied
    let p = kernel.spawn(Credentials::root());
    let mut spawned = 0;
    let mut denied = 0;
    for _ in 0..50 {
        match p.fork() {
            Ok(child) => {
                spawned += 1;
                child.exit();
            }
            Err(e) => {
                assert_eq!(e.context(), Some("chaos"));
                denied += 1;
            }
        }
    }
    assert!(spawned > 0 && denied > 0);
    assert_eq!(kernel.tasks().live_count(), 1, "only the parent survives");
}

#[test]
fn denied_create_does_not_leave_a_file() {
    // Deny *every* inode_create; opens of existing files still work.
    struct DenyCreate;
    impl SecurityModule for DenyCreate {
        fn name(&self) -> &'static str {
            "deny-create"
        }
        fn inode_create(&self, _: &HookCtx, _: &KPath, _: &str, _: ObjectKind) -> KernelResult<()> {
            Err(KernelError::with_context(Errno::EACCES, "deny-create"))
        }
    }
    let kernel = KernelBuilder::new()
        .security_module(Arc::new(DenyCreate) as Arc<dyn SecurityModule>)
        .boot();
    let p = kernel.spawn(Credentials::root());
    let before = kernel.vfs().inode_count();
    assert!(p.open("/tmp/forbidden", OpenFlags::create_new()).is_err());
    assert_eq!(kernel.vfs().inode_count(), before, "no inode leaked");
    assert!(p.stat("/tmp/forbidden").is_err(), "file must not exist");
    assert!(p.mkdir("/tmp/dir", sack_kernel::Mode::EXEC).is_err());
    assert!(p.symlink("/tmp/x", "/tmp/link").is_err());
}

#[test]
fn concurrent_chaos_does_not_poison_the_kernel() {
    let (kernel, _chaos) = boot(13);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let kernel = Arc::clone(&kernel);
            scope.spawn(move || {
                let p = kernel.spawn(Credentials::root());
                for i in 0..200 {
                    let path = format!("/tmp/t{t}_{i}");
                    let _ = p.write_file(&path, b"x");
                    let _ = p.read_to_vec(&path);
                    let _ = p.unlink(&path);
                }
                p.exit();
            });
        }
    });
    // The kernel is still fully functional afterwards.
    let p = kernel.spawn(Credentials::root());
    let mut ok = false;
    for _ in 0..20 {
        if p.write_file("/tmp/after", b"fine").is_ok() {
            ok = true;
            break;
        }
    }
    assert!(ok, "kernel wedged after concurrent chaos");
}
