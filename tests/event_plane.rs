//! Differential oracle for the batched sensor event plane: the ring-based
//! ingestion path (`SACK/sds/ring`, transition coalescing, one epoch bump
//! per drain) must be observationally equivalent to the synchronous
//! per-event `SACK/events` path. Equivalence is checked at every drain
//! boundary on three surfaces:
//!
//!   * the SSM state (coalescing may skip intermediate states but must
//!     land where sequential delivery lands);
//!   * access verdicts for situation-sensitive subjects (the paper's
//!     rescue-daemon/media-app probes);
//!   * the denial audit log (same `(uid, path, perms, state)` records in
//!     the same order — negative caching is off by default, so every
//!     denied probe must audit identically on both twins).
//!
//! Deliberately *not* compared: transition counts and transition history.
//! Coalescing publishes at most one transition per drain by design, so
//! those legitimately differ between the paths.
//!
//! Runs as a property test over random event sequences with random batch
//! splits (in-tree `sack_suite::prop` harness — the build is offline) and
//! over the shipped synthetic driving traces through the standard
//! detector set.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use sack_core::eventplane::EventFrame;
use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_kernel::uctx::UserContext;
use sack_kernel::Fd;
use sack_sds::service::{standard_detectors, SdsReport, SdsService};
use sack_sds::{run_trace_batched, traces, SACK_EVENTS_PATH, SACK_RING_PATH};
use sack_suite::prop;
use sack_vehicle::car::CarHardware;
use sack_vehicle::policies::VEHICLE_SACK_POLICY;

/// Every event the Fig. 2 vehicle SSM declares; the random sequences draw
/// from the full set so matching and non-matching deliveries both occur.
const VEHICLE_EVENTS: [&str; 6] = [
    "crash",
    "park",
    "start_driving",
    "driver_left",
    "driver_entered",
    "emergency_resolved",
];

/// One booted twin: a kernel with SACK attached, car devices installed,
/// and two exec'd probe processes whose verdicts flip with the situation.
struct World {
    kernel: Arc<Kernel>,
    sack: Arc<Sack>,
    rescue: UserContext,
    media: UserContext,
}

fn boot_world() -> World {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    CarHardware::install(&kernel, 2, 2).unwrap();
    let mk = |exe: &str, uid: u32| {
        kernel
            .vfs()
            .create_file(
                &sack_kernel::KPath::new(exe).unwrap(),
                sack_kernel::Mode::EXEC,
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        let proc = kernel.spawn(Credentials::user(uid, uid));
        proc.exec(exe).unwrap();
        proc
    };
    // Distinct uids so the audit comparison can tell the subjects apart.
    let rescue = mk("/usr/bin/rescue_daemon", 1000);
    let media = mk("/usr/bin/media_app", 1001);
    World {
        kernel,
        sack,
        rescue,
        media,
    }
}

/// Spawns the SDS process (uid 500, `CAP_MAC_ADMIN`) and opens one SACKfs
/// ingestion node for it.
fn open_ingestion(world: &World, node: &str) -> (UserContext, Fd) {
    let sds = world
        .kernel
        .spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    let fd = sds.open(node, OpenFlags::write_only()).unwrap();
    (sds, fd)
}

/// Attempts a write-open; `true` = allowed, `false` = denied by SACK.
/// Any other failure is a harness bug and panics.
fn probe(proc: &UserContext, path: &str) -> bool {
    match proc
        .open(path, OpenFlags::write_only())
        .and_then(|fd| proc.close(fd))
    {
        Ok(()) => true,
        Err(e) if e.context() == Some("sack") => false,
        Err(e) => panic!("unexpected harness error probing {path}: {e:?}"),
    }
}

/// Runs the situation-sensitive probes on both twins and asserts the
/// verdicts agree. The door probe flips at `emergency`, the audio probe at
/// `parking_with_driver`; together they observe every state the vehicle
/// SSM can be in.
fn assert_probes_agree(sync: &World, batched: &World, at: &str) {
    assert_eq!(
        probe(&sync.rescue, "/dev/car/door0"),
        probe(&batched.rescue, "/dev/car/door0"),
        "verdict divergence on /dev/car/door0 {at}"
    );
    assert_eq!(
        probe(&sync.media, "/dev/car/audio"),
        probe(&batched.media, "/dev/car/audio"),
        "verdict divergence on /dev/car/audio {at}"
    );
}

/// The audit log reduced to what must match across the twins: who was
/// denied what, in which situation, in what order. Timestamps and pids are
/// excluded (pids happen to match here, but they are not part of the
/// oracle).
fn audit_fingerprint(sack: &Sack) -> Vec<(u32, String, String, String)> {
    sack.audit()
        .records()
        .into_iter()
        .map(|r| (r.uid, r.path, format!("{:?}", r.requested), r.state))
        .collect()
}

#[test]
fn random_batched_ingestion_matches_the_sync_oracle() {
    prop::for_cases(48, |rng| {
        let sync = boot_world();
        let batched = boot_world();
        let (sync_sds, sync_fd) = open_ingestion(&sync, SACK_EVENTS_PATH);
        let (batched_sds, batched_fd) = open_ingestion(&batched, SACK_RING_PATH);

        let total = rng.range(8, 33);
        let sequence: Vec<&str> = (0..total).map(|_| *rng.pick(&VEHICLE_EVENTS)).collect();

        let mut delivered = 0usize;
        while delivered < sequence.len() {
            let take = rng.range(1, 7).min(sequence.len() - delivered);
            let batch = &sequence[delivered..delivered + take];
            delivered += take;

            // Sync twin: one write(2) per event, one transition each.
            for name in batch {
                sync_sds
                    .write(sync_fd, format!("{name}\n").as_bytes())
                    .unwrap();
            }
            // Batched twin: the same events as one ring submission; the
            // node's drain coalesces them into at most one published
            // transition.
            let blob = format!("{}\n", batch.join("\n"));
            batched_sds.write(batched_fd, blob.as_bytes()).unwrap();

            let at = format!("after {delivered}/{} events", sequence.len());
            assert_eq!(
                sync.sack.current_state_name(),
                batched.sack.current_state_name(),
                "state divergence {at} (batch {batch:?})"
            );
            assert_probes_agree(&sync, &batched, &at);
        }

        // Both paths must have counted every event as delivered, resolved
        // every name (all six are declared), and denied identically.
        let sync_active = sync.sack.active();
        let batched_active = batched.sack.active();
        assert_eq!(
            sync_active.ssm.delivered_count(),
            batched_active.ssm.delivered_count(),
            "coalescing must not lose or duplicate deliveries"
        );
        assert_eq!(
            batched.sack.stats().events_unknown.load(Ordering::Relaxed),
            0,
            "every vehicle event is declared; none may resolve as unknown"
        );
        assert_eq!(
            audit_fingerprint(&sync.sack),
            audit_fingerprint(&batched.sack),
            "audit logs diverged"
        );
    });
}

#[test]
fn shipped_traces_drive_both_paths_to_identical_outcomes() {
    let runs: Vec<(&str, traces::Trace)> = vec![
        ("city_drive", traces::city_drive(12)),
        ("highway_crash", traces::highway_crash(25)),
        ("park_and_return", traces::park_and_return(40)),
        (
            "speed_oscillation",
            traces::speed_oscillation(Duration::from_secs(10), 6),
        ),
    ];
    for (name, trace) in runs {
        let sync = boot_world();
        let batched = boot_world();
        let mut service = SdsService::spawn(&sync.kernel, standard_detectors()).unwrap();
        let mut batched_detectors = standard_detectors();
        let mut sync_report = SdsReport::default();
        let mut batched_report = SdsReport::default();

        // Feed the trace in chunks and probe at every chunk boundary, so
        // equivalence is checked *during* the drive, not just at the end.
        for chunk in trace.chunks(5) {
            let part = service.run_trace(&sync.kernel, chunk);
            sync_report.frames += part.frames;
            sync_report.events.extend(part.events);
            sync_report.rejected.extend(part.rejected);

            let part =
                run_trace_batched(&batched.kernel, &mut batched_detectors, chunk, 4).unwrap();
            batched_report.frames += part.frames;
            batched_report.events.extend(part.events);
            batched_report.rejected.extend(part.rejected);

            let at = format!("({name}, frame {})", sync_report.frames);
            assert_eq!(
                sync.sack.current_state_name(),
                batched.sack.current_state_name(),
                "state divergence {at}"
            );
            assert_probes_agree(&sync, &batched, &at);
        }
        service.shutdown();

        // The detectors saw identical frames, so both paths must have
        // produced (and client-side rejected) the same event stream.
        assert_eq!(sync_report, batched_report, "{name}: reports diverged");
        assert_eq!(
            audit_fingerprint(&sync.sack),
            audit_fingerprint(&batched.sack),
            "{name}: audit logs diverged"
        );
    }
}

#[test]
fn a_reload_between_submit_and_drain_falls_back_to_name_resolution() {
    // Frames carry a generation-tagged id hint resolved at submit time. A
    // policy reload between submit and drain orphans those hints; the
    // drain must then resolve by name against the *new* policy rather than
    // trusting ids minted under the old one.
    let world = boot_world();
    let sack = &world.sack;
    let plane = Arc::clone(sack.event_plane().unwrap());

    let stale = sack.active();
    let gen = stale.load_generation;
    let mut frame = EventFrame::new("crash", 0, 0).unwrap();
    frame.set_hint(stale.ssm.space().event_id("crash").unwrap(), gen);
    assert_eq!(
        plane.submit_batch(&[frame]),
        0,
        "ring must accept the frame"
    );

    sack.reload_policy(VEHICLE_SACK_POLICY).unwrap();
    assert_ne!(
        sack.active().load_generation,
        gen,
        "a reload must mint a fresh hint generation"
    );

    let outcome = plane.drain_all().unwrap();
    assert_eq!(outcome.batch, 1);
    assert_eq!(outcome.matched, 1, "the orphaned frame must still match");
    assert!(outcome.transitioned);
    // The reload restarted the SSM at parking_with_driver; crash moves it
    // to emergency — proof the event was delivered under the new policy.
    assert_eq!(sack.current_state_name(), "emergency");
    assert_eq!(
        sack.stats().events_unknown.load(Ordering::Relaxed),
        0,
        "a stale hint must fall back to the name, not count as unknown"
    );
}
