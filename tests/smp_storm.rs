//! Full-stack SMP storm (DESIGN.md §9): N worker threads drive the LSM
//! stack while the control plane races them with situation transitions,
//! policy reloads, and AppArmor profile replacements.
//!
//! The properties pinned down here are the ones the per-CPU decision
//! caches must not break:
//!
//! * **No stale grant** — a decision whose verdict is identical in every
//!   state is never spuriously denied (and vice versa) no matter how the
//!   epoch churns mid-flight;
//! * **Exactly-once invalidation** — `rcu_epoch_bump` and
//!   `cache_invalidate` fire once per epoch bump, never once per cache
//!   instance;
//! * **Audit exactly-once** — with negative caching on, a replayed denial
//!   increments the counter but is audited at most once per cache
//!   instance, while the denial counter stays exact;
//! * **Serial equivalence** — after the storm quiesces, verdicts match a
//!   freshly-built twin that never saw any concurrency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sack_apparmor::{AppArmor, CompileMode, PolicyDb};
use sack_core::{Sack, TransitionOutcome};
use sack_kernel::cred::Credentials;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::smp;
use sack_kernel::trace::{TraceHub, Tracepoint};
use sack_kernel::types::Pid;
use sack_lmbench::workload::{
    synthetic_enhanced_policy, synthetic_independent_policy, synthetic_racing_policy, BENCH_EXE,
    BENCH_PROFILE, RACING_SHARED_PREFIX,
};

const STATES: usize = 4;
const WORKERS: usize = 4;

fn probe_ctx(pid: u32, exe: &str) -> HookCtx {
    HookCtx::new(
        Pid(pid),
        Credentials::user(1000, 1000),
        Some(KPath::new(exe).unwrap()),
    )
}

fn open(module: &dyn SecurityModule, ctx: &HookCtx, path: &str, mask: AccessMask) -> bool {
    let path = KPath::new(path).unwrap();
    let obj = ObjectRef::regular(&path);
    module.file_open(ctx, &obj, mask).is_ok()
}

/// Drives `sack` around the synthetic ring until it sits in state
/// `s{target}`, delivering one `goto_s*` event per hop.
fn drive_to_state(sack: &Sack, target: usize) {
    for _ in 0..STATES {
        let here: usize = sack
            .current_state_name()
            .strip_prefix('s')
            .and_then(|s| s.parse().ok())
            .expect("synthetic state name");
        if here == target {
            return;
        }
        let next = (here + 1) % STATES;
        sack.deliver_event(&format!("goto_s{next}"), Duration::ZERO)
            .unwrap();
    }
    panic!("ring never reached s{target}");
}

/// Tentpole driver: workers hammer the hook path while the control plane
/// alternates policy reloads and situation transitions. The `/shared`
/// paths are granted in *every* state, so any mid-storm denial would be a
/// stale or torn verdict; the per-state paths flap legitimately and are
/// only checked after the storm quiesces.
#[test]
fn storm_with_racing_reloads_never_produces_a_stale_verdict() {
    let policy = synthetic_racing_policy(STATES, 32);
    let sack = Sack::independent(&policy).unwrap();
    sack.set_negative_cache_enabled(true);
    let hub = TraceHub::new();
    sack.install_tracing(Arc::clone(&hub));
    hub.set_enabled(true);

    let transitions = AtomicU64::new(0);
    let reloads = AtomicU64::new(0);
    let epoch_before = sack.policy_epoch();

    const HAMMER: usize = 600;
    let outcome = smp::run_with_control(
        WORKERS,
        |w| {
            let ctx = probe_ctx(7000 + w as u32, BENCH_EXE);
            let shared = format!("{RACING_SHARED_PREFIX}/dev{w}");
            let mut shared_ok = 0usize;
            let mut flapping_allowed = 0usize;
            for i in 0..HAMMER {
                if open(&*sack, &ctx, &shared, AccessMask::READ) {
                    shared_ok += 1;
                }
                // State-dependent path: verdict legitimately flaps with the
                // racing control plane; only the totals are interesting.
                let state_path = format!("/protected/area0/s{}/dev", i % STATES);
                if open(&*sack, &ctx, &state_path, AccessMask::WRITE) {
                    flapping_allowed += 1;
                }
            }
            (shared_ok, flapping_allowed)
        },
        |round| {
            if round % 3 == 0 {
                sack.reload_policy(&policy).unwrap();
                reloads.fetch_add(1, Ordering::Relaxed);
            } else {
                let here: usize = sack
                    .current_state_name()
                    .strip_prefix('s')
                    .and_then(|s| s.parse().ok())
                    .unwrap();
                let next = (here + 1) % STATES;
                let outcome = sack
                    .deliver_event(&format!("goto_s{next}"), Duration::ZERO)
                    .unwrap();
                assert!(matches!(outcome, TransitionOutcome::Transitioned { .. }));
                transitions.fetch_add(1, Ordering::Relaxed);
            }
        },
    );

    // The always-granted path never saw a stale or torn denial.
    for (w, (shared_ok, _)) in outcome.results.iter().enumerate() {
        assert_eq!(
            *shared_ok, HAMMER,
            "worker {w}: /shared verdict flipped during epoch churn"
        );
    }
    assert!(outcome.control_rounds >= 1);

    // The control plane is the only epoch source: one bump per transition
    // plus one per reload, and the tracepoints fired exactly once per bump
    // — never once per cache instance.
    let bumps = transitions.load(Ordering::Relaxed) + reloads.load(Ordering::Relaxed);
    assert_eq!(sack.policy_epoch() - epoch_before, bumps);
    assert_eq!(hub.fired(Tracepoint::RcuEpochBump), sack.policy_epoch());
    assert_eq!(hub.fired(Tracepoint::CacheInvalidate), sack.policy_epoch());

    // Quiesced: walk the ring and compare every per-state verdict against
    // a twin that was built serially and never raced anything.
    let serial = Sack::independent(&policy).unwrap();
    sack.reload_policy(&policy).unwrap();
    let ctx = probe_ctx(7999, BENCH_EXE);
    for state in 0..STATES {
        drive_to_state(&sack, state);
        drive_to_state(&serial, state);
        for probe_state in 0..STATES {
            let path = format!("/protected/area0/s{probe_state}/dev");
            let stormed = open(&*sack, &ctx, &path, AccessMask::WRITE);
            let expected = open(&*serial, &ctx, &path, AccessMask::WRITE);
            assert_eq!(
                stormed, expected,
                "state s{state}, probe {path}: storm survivor diverged from serial twin"
            );
            assert_eq!(
                stormed,
                probe_state == state,
                "state s{state}, probe {path}"
            );
        }
        let shared = format!("{RACING_SHARED_PREFIX}/post");
        assert!(open(&*sack, &ctx, &shared, AccessMask::READ));
    }
}

/// Audit exactly-once under concurrency: every worker replays the same
/// denied decision hundreds of times. The denial counter must count every
/// refusal; the audit log must record the decision at most once per cache
/// instance (each worker warms its own per-CPU instance), not once per
/// refusal.
#[test]
fn denial_storm_counts_every_refusal_but_audits_at_most_once_per_instance() {
    let sack = Sack::independent(&synthetic_independent_policy(2, 8)).unwrap();
    sack.set_negative_cache_enabled(true);

    // In the initial state s0, the s1 rules do not apply, but the path is
    // still in the protected set: a guaranteed denial in every round.
    const DENIED: &str = "/protected/area0/s1/dev";
    let ctx = probe_ctx(7100, BENCH_EXE);
    assert!(!open(&*sack, &ctx, DENIED, AccessMask::WRITE));

    let denials_before = sack.stats().denials.load(Ordering::SeqCst);
    let audits_before = sack.audit().total();

    const HAMMER: usize = 500;
    let denied: usize = smp::run_workers(WORKERS, |w| {
        let ctx = probe_ctx(7100, BENCH_EXE);
        let mut denied = 0usize;
        for _ in 0..HAMMER {
            if !open(&*sack, &ctx, DENIED, AccessMask::WRITE) {
                denied += 1;
            }
        }
        assert_eq!(denied, HAMMER, "worker {w}: denial verdict flipped");
        denied
    })
    .into_iter()
    .sum();

    assert_eq!(denied, WORKERS * HAMMER);
    // Exact refusal accounting...
    assert_eq!(
        sack.stats().denials.load(Ordering::SeqCst) - denials_before,
        (WORKERS * HAMMER) as u64
    );
    // ...but at most one audit record per per-CPU cache instance: each
    // worker's first miss may audit before the negative entry lands in its
    // instance; every later round replays the cached denial silently.
    let audit_delta = sack.audit().total() - audits_before;
    assert!(
        audit_delta <= WORKERS as u64,
        "audit storm: {audit_delta} records for one decision across {WORKERS} workers"
    );
}

/// Lazy compilation under storm: the profile database installs every
/// bundle as uncompiled stubs, so each control-plane replacement publishes
/// a table whose DFA the racing hooks must first-touch compile. The base
/// grant must hold in every round (an in-flight build answers from the
/// retained scan matcher — never blocks, never flickers), the
/// `profile_recompile` tracepoint must fire at most once per published
/// bundle (the at-most-once claim under maximal contention), and the
/// quiesced table must agree with an eager serial twin.
#[test]
fn lazy_first_touch_storm_compiles_each_published_body_at_most_once() {
    let db = Arc::new(PolicyDb::new());
    db.set_compile_mode(CompileMode::Lazy);
    let hub = TraceHub::new();
    db.set_trace_hub(Arc::clone(&hub));
    hub.set_enabled(true);
    db.load_text(BENCH_PROFILE).unwrap();
    assert_eq!(db.compile_count(), 0, "lazy load must not compile");
    let apparmor = AppArmor::new(Arc::clone(&db));
    apparmor.set_profile(Pid(7300), "bench").unwrap();

    const HAMMER: usize = 400;
    let reloads = AtomicU64::new(0);
    let outcome = smp::run_with_control(
        WORKERS,
        |w| {
            let ctx = probe_ctx(7300, BENCH_EXE);
            let path = format!("/tmp/bench/lazy{w}");
            let mut ok = 0usize;
            for _ in 0..HAMMER {
                if open(&*apparmor, &ctx, &path, AccessMask::WRITE) {
                    ok += 1;
                }
            }
            ok
        },
        |_round| {
            // Atomic bundle replacement: publishes a fresh uncompiled stub
            // for `bench` that the storm immediately first-touches.
            db.load_text(BENCH_PROFILE).unwrap();
            reloads.fetch_add(1, Ordering::Relaxed);
        },
    );

    for (w, ok) in outcome.results.iter().enumerate() {
        assert_eq!(
            *ok, HAMMER,
            "worker {w}: grant flickered during lazy first-touch races"
        );
    }
    assert!(outcome.control_rounds >= 1);

    // Every published bundle carries exactly one distinct body, and racing
    // hooks may compile each published body at most once: the claim CAS
    // admits one winner, losers reuse or fall back.
    let publishes = reloads.load(Ordering::Relaxed) + 1;
    let fired = hub.fired(Tracepoint::ProfileRecompile);
    assert!(
        (1..=publishes).contains(&fired),
        "profile_recompile fired {fired} times across {publishes} published bundles"
    );
    assert_eq!(
        db.compile_count(),
        fired,
        "every DFA build must emit exactly one tracepoint"
    );

    // Quiesced: the stormed lazy table answers exactly like an eager twin
    // that never saw any concurrency.
    let serial_db = Arc::new(PolicyDb::new());
    serial_db.load_text(BENCH_PROFILE).unwrap();
    let serial = AppArmor::new(Arc::clone(&serial_db));
    serial.set_profile(Pid(7300), "bench").unwrap();
    let ctx = probe_ctx(7300, BENCH_EXE);
    for (path, mask) in [
        ("/tmp/bench/post", AccessMask::WRITE),
        ("/etc/passwd", AccessMask::READ),
        ("/etc/sub/dir", AccessMask::READ),
        ("/dev/car/door0", AccessMask::READ),
        ("/dev/car/door0", AccessMask::WRITE),
        ("/var/secret", AccessMask::READ),
        ("/usr/lib/libc.so", AccessMask::READ),
    ] {
        assert_eq!(
            open(&*apparmor, &ctx, path, mask),
            open(&*serial, &ctx, path, mask),
            "probe {path}: stormed lazy table diverged from eager serial twin"
        );
    }
}

/// Enhanced mode: the control plane replaces the AppArmor profile bundle
/// (the `apparmor_parser -r` path) and transitions the SSM while confined
/// traffic storms the hooks. Base-profile grants must hold throughout, and
/// after quiescing the patched profile must match a serially-built twin.
#[test]
fn profile_replacement_races_enhanced_traffic_without_torn_verdicts() {
    let policy = synthetic_enhanced_policy(STATES, 16);
    let build = || {
        let db = Arc::new(PolicyDb::new());
        db.load_text(BENCH_PROFILE).unwrap();
        let apparmor = AppArmor::new(db);
        let sack = Sack::enhanced_apparmor(&policy, Arc::clone(&apparmor)).unwrap();
        (sack, apparmor)
    };
    let (sack, apparmor) = build();
    apparmor.set_profile(Pid(7200), "bench").unwrap();

    const HAMMER: usize = 400;
    let outcome = smp::run_with_control(
        WORKERS,
        |w| {
            let ctx = probe_ctx(7200, BENCH_EXE);
            let path = format!("/tmp/bench/storm{w}");
            let mut ok = 0usize;
            for _ in 0..HAMMER {
                if open(&*apparmor, &ctx, &path, AccessMask::WRITE) {
                    ok += 1;
                }
            }
            ok
        },
        |round| {
            if round % 2 == 0 {
                // Atomic bundle replacement: reverts any situation patch
                // until the next transition re-applies it.
                apparmor.policy().load_text(BENCH_PROFILE).unwrap();
            } else {
                let here: usize = sack
                    .current_state_name()
                    .strip_prefix('s')
                    .and_then(|s| s.parse().ok())
                    .unwrap();
                sack.deliver_event(&format!("goto_s{}", (here + 1) % STATES), Duration::ZERO)
                    .unwrap();
            }
        },
    );

    // `/tmp/**` is in the base profile and in every replacement bundle:
    // a single torn read during the atomic swap would show up here.
    for (w, ok) in outcome.results.iter().enumerate() {
        assert_eq!(*ok, HAMMER, "worker {w}: base-profile grant flickered");
    }

    // Quiesce: one more real transition re-applies the situation patch on
    // top of whatever bundle the control plane left behind, after which the
    // stormed instance must agree with a serial twin in the same state.
    let here: usize = sack
        .current_state_name()
        .strip_prefix('s')
        .and_then(|s| s.parse().ok())
        .unwrap();
    let target = (here + 1) % STATES;
    sack.deliver_event(&format!("goto_s{target}"), Duration::ZERO)
        .unwrap();

    let (serial_sack, serial_aa) = build();
    serial_aa.set_profile(Pid(7200), "bench").unwrap();
    drive_to_state(&serial_sack, target);
    assert_eq!(sack.current_state_name(), serial_sack.current_state_name());

    let ctx = probe_ctx(7200, BENCH_EXE);
    for probe_state in 0..STATES {
        for area in 0..2 {
            let path = format!("/protected/area{area}/s{probe_state}/dev");
            let stormed = open(&*apparmor, &ctx, &path, AccessMask::WRITE);
            let expected = open(&*serial_aa, &ctx, &path, AccessMask::WRITE);
            assert_eq!(
                stormed, expected,
                "probe {path}: stormed profile table diverged from serial twin"
            );
            assert_eq!(stormed, probe_state == target, "probe {path}");
        }
    }
    assert!(open(&*apparmor, &ctx, "/tmp/bench/post", AccessMask::READ));
    assert!(!open(&*apparmor, &ctx, "/var/secret", AccessMask::READ));
}
