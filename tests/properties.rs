//! Property-based tests (proptest) on the core data structures and
//! invariants: glob matching vs a reference implementation, path
//! normalization, the permission algebra, the SSM, the rule index, and the
//! policy pipeline's robustness to arbitrary input.

use proptest::prelude::*;

use sack_apparmor::glob::Glob;
use sack_apparmor::profile::{FilePerms, PathRule};
use sack_apparmor::CompiledRules;
use sack_core::rules::{MacRule, ProtectedSet, StateRuleSet, SubjectCtx};
use sack_core::situation::StateSpace;
use sack_core::ssm::{Ssm, TransitionRule};
use sack_core::SackPolicy;
use sack_kernel::path::KPath;

// ---------------------------------------------------------------------
// Reference glob matcher: simple recursive implementation with the same
// semantics (`*` not crossing `/`, `**` crossing, `?` single non-`/`).
// ---------------------------------------------------------------------

fn ref_match(pat: &[u8], text: &[u8]) -> bool {
    match pat.first() {
        None => text.is_empty(),
        Some(b'*') => {
            if pat.get(1) == Some(&b'*') {
                // `**`
                (0..=text.len()).any(|i| ref_match(&pat[2..], &text[i..]))
            } else {
                (0..=text.len())
                    .take_while(|&i| i == 0 || text[i - 1] != b'/')
                    .any(|i| ref_match(&pat[1..], &text[i..]))
            }
        }
        Some(b'?') => !text.is_empty() && text[0] != b'/' && ref_match(&pat[1..], &text[1..]),
        Some(&c) => !text.is_empty() && text[0] == c && ref_match(&pat[1..], &text[1..]),
    }
}

/// Pattern fragments made only of literals and wildcards (no classes or
/// braces, which the reference matcher doesn't implement).
fn simple_pattern() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            3 => prop_oneof![Just("a"), Just("b"), Just("dir"), Just("x1")].prop_map(String::from),
            2 => Just("/".to_string()),
            2 => Just("*".to_string()),
            1 => Just("**".to_string()),
            1 => Just("?".to_string()),
        ],
        1..8,
    )
    .prop_map(|parts| format!("/{}", parts.concat()))
}

fn path_under_test() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("a"),
            Just("b"),
            Just("ab"),
            Just("dir"),
            Just("x1"),
            Just("q")
        ],
        1..6,
    )
    .prop_map(|parts| format!("/{}", parts.join("/")))
}

proptest! {
    #[test]
    fn glob_matches_reference_semantics(pat in simple_pattern(), path in path_under_test()) {
        if let Ok(glob) = Glob::compile(&pat) {
            let expected = ref_match(pat.as_bytes(), path.as_bytes());
            prop_assert_eq!(
                glob.matches(&path), expected,
                "pattern `{}` vs path `{}`", pat, path
            );
        }
    }

    #[test]
    fn glob_literal_prefix_never_causes_false_negatives(
        pat in simple_pattern(),
        path in path_under_test()
    ) {
        if let Ok(glob) = Glob::compile(&pat) {
            if ref_match(pat.as_bytes(), path.as_bytes()) {
                prop_assert!(glob.matches(&path));
            }
        }
    }

    #[test]
    fn glob_compile_never_panics(pat in "\\PC{0,40}") {
        let _ = Glob::compile(&pat);
    }

    #[test]
    fn kpath_normalization_is_idempotent(raw in "(/[a-z.]{0,6}){0,6}/?") {
        if let Ok(p) = KPath::new(&raw) {
            let again = KPath::new(p.as_str()).unwrap();
            prop_assert_eq!(p.as_str(), again.as_str());
            // Invariants: absolute, no empty/dot components.
            prop_assert!(p.as_str().starts_with('/'));
            for comp in p.components() {
                prop_assert!(!comp.is_empty());
                prop_assert!(comp != "." && comp != "..");
            }
        }
    }

    #[test]
    fn kpath_parent_join_roundtrip(raw in "(/[a-z]{1,5}){1,5}") {
        let p = KPath::new(&raw).unwrap();
        if let (Some(parent), Some(name)) = (p.parent(), p.file_name()) {
            prop_assert_eq!(parent.join(name).unwrap(), p);
        }
    }

    #[test]
    fn file_perms_parse_display_roundtrip(bits in 0u8..64) {
        // Build a perm set from bits, render, re-parse.
        let mut perms = FilePerms::empty();
        for (i, p) in [
            FilePerms::READ, FilePerms::WRITE, FilePerms::APPEND,
            FilePerms::EXEC, FilePerms::MMAP, FilePerms::IOCTL,
        ].into_iter().enumerate() {
            if bits & (1 << i) != 0 {
                perms = perms.union(p);
            }
        }
        if perms.is_empty() {
            prop_assert_eq!(perms.to_string(), "-");
        } else {
            let reparsed = FilePerms::parse(&perms.to_string()).unwrap();
            prop_assert_eq!(reparsed, perms);
        }
    }

    #[test]
    fn file_perms_algebra(a in 0u8..64, b in 0u8..64) {
        fn from_bits(bits: u8) -> FilePerms {
            let mut perms = FilePerms::empty();
            for (i, p) in [
                FilePerms::READ, FilePerms::WRITE, FilePerms::APPEND,
                FilePerms::EXEC, FilePerms::MMAP, FilePerms::IOCTL,
            ].into_iter().enumerate() {
                if bits & (1 << i) != 0 {
                    perms = perms.union(p);
                }
            }
            perms
        }
        let (pa, pb) = (from_bits(a), from_bits(b));
        let union = pa.union(pb);
        prop_assert!(union.contains(pa) && union.contains(pb));
        let diff = pa.difference(pb);
        prop_assert!(!diff.intersects(pb));
        prop_assert!(pa.contains(diff));
        // union = diff(pa,pb) ∪ pb ∪ (pa ∩ pb) — sanity via contains:
        prop_assert_eq!(union.contains(diff.union(pb)), true);
    }

    #[test]
    fn compiled_rules_index_equals_scan(
        specs in proptest::collection::vec(
            (simple_pattern(), 1u8..64, any::<bool>()), 0..12),
        path in path_under_test()
    ) {
        let rules: Vec<PathRule> = specs.iter().filter_map(|(pat, bits, deny)| {
            let perms = FilePerms::parse(
                &format!("{}", {
                    let mut p = FilePerms::empty();
                    for (i, fp) in [FilePerms::READ, FilePerms::WRITE, FilePerms::APPEND,
                                    FilePerms::EXEC, FilePerms::MMAP, FilePerms::IOCTL]
                        .into_iter().enumerate() {
                        if bits & (1 << i) != 0 { p = p.union(fp); }
                    }
                    if p.is_empty() { FilePerms::READ } else { p }
                })
            ).ok()?;
            if *deny {
                PathRule::deny(pat, perms).ok()
            } else {
                PathRule::allow(pat, perms).ok()
            }
        }).collect();
        let compiled = CompiledRules::build(&rules);
        prop_assert_eq!(compiled.evaluate(&path), compiled.evaluate_scan(&path));
    }

    #[test]
    fn protected_set_equals_naive_union(
        pats in proptest::collection::vec(simple_pattern(), 0..10),
        path in path_under_test()
    ) {
        let globs: Vec<Glob> = pats.iter().filter_map(|p| Glob::compile(p).ok()).collect();
        let set = ProtectedSet::build(globs.iter());
        let naive = globs.iter().any(|g| g.matches(&path));
        prop_assert_eq!(set.contains(&path), naive);
    }

    #[test]
    fn ssm_random_walk_stays_consistent(
        n_states in 2usize..8,
        rules in proptest::collection::vec((0usize..8, 0usize..5, 0usize..8), 0..20),
        walk in proptest::collection::vec(0usize..5, 0..50)
    ) {
        let mut space = StateSpace::new();
        for i in 0..n_states {
            space.add_state(&format!("s{i}"), i as u32).unwrap();
        }
        for e in 0..5 {
            space.add_event(&format!("e{e}")).unwrap();
        }
        // Deduplicate rules by (from, event), keeping the first target.
        let mut seen = std::collections::HashSet::new();
        let rules: Vec<TransitionRule> = rules.into_iter().filter_map(|(f, e, t)| {
            let from = sack_core::StateId(f % n_states);
            let event = sack_core::EventId(e);
            let to = sack_core::StateId(t % n_states);
            seen.insert((from, event)).then_some(TransitionRule { from, event, to })
        }).collect();
        let ssm = Ssm::new(space, &rules, sack_core::StateId(0)).unwrap();

        let mut expected = sack_core::StateId(0);
        for step in walk {
            let event = sack_core::EventId(step);
            let outcome = ssm.deliver(event, std::time::Duration::ZERO);
            // Recompute what should have happened from the rule list.
            let target = rules.iter()
                .find(|r| r.from == expected && r.event == event)
                .map(|r| r.to);
            match (outcome.transitioned(), target) {
                (true, Some(t)) => expected = t,
                (false, None) => {}
                (got, want) => prop_assert!(false, "outcome {got:?} vs rule {want:?}"),
            }
            prop_assert_eq!(ssm.current(), expected);
        }
        prop_assert_eq!(ssm.history().len() as u64, ssm.taken_count());
    }

    #[test]
    fn policy_parser_never_panics(text in "\\PC{0,200}") {
        let _ = SackPolicy::parse(&text);
    }

    #[test]
    fn profile_parser_never_panics(text in "\\PC{0,200}") {
        let _ = sack_apparmor::parse_profiles(&text);
    }

    #[test]
    fn profile_parser_never_panics_on_structured_soup(
        parts in proptest::collection::vec(prop_oneof![
            Just("profile"), Just("p"), Just("{"), Just("}"), Just(","),
            Just("/a/*"), Just("rw"), Just("deny"), Just("capability"),
            Just("network"), Just("unix"), Just("flags=(complain)"),
        ], 0..30)
    ) {
        let text = parts.join(" ");
        if let Ok(profiles) = sack_apparmor::parse_profiles(&text) {
            // Anything that parses must also render and re-parse.
            for p in profiles {
                let rendered = p.to_string();
                prop_assert!(sack_apparmor::parse_profiles(&rendered).is_ok(), "{}", rendered);
            }
        }
    }

    #[test]
    fn policy_display_roundtrips_for_valid_asts(
        n_states in 1usize..5,
        n_perms in 1usize..4,
    ) {
        // Build a small synthetic AST directly and round-trip it.
        let mut ast = SackPolicy::default();
        for i in 0..n_states {
            ast.states.push((format!("st{i}"), i as u32));
        }
        ast.events.push("go".to_string());
        if n_states > 1 {
            ast.transitions.push(("st0".into(), "go".into(), "st1".into()));
        }
        ast.initial = Some("st0".to_string());
        for p in 0..n_perms {
            ast.permissions.push(format!("PERM{p}"));
        }
        ast.state_per.push(("st0".to_string(), ast.permissions.clone()));
        ast.per_rules.push((
            "PERM0".to_string(),
            vec![sack_core::policy::RuleSpec {
                effect: sack_core::RuleEffect::Allow,
                subject: sack_core::policy::SubjectSpec::Any,
                object: "/x/**".to_string(),
                perms: "rw".to_string(),
                line: 0,
            }],
        ));
        let rendered = ast.to_string();
        let mut reparsed = SackPolicy::parse(&rendered).unwrap();
        // Line numbers are positional metadata, not semantics.
        for (_, rules) in &mut reparsed.per_rules {
            for r in rules {
                r.line = 0;
            }
        }
        prop_assert_eq!(ast, reparsed);
    }

    #[test]
    fn policy_pipeline_never_panics_on_parsed_input(
        text in "(states \\{ [a-z]{1,4} = [0-9]; \\} )?(initial [a-z]{1,4};)?"
    ) {
        if let Ok(ast) = SackPolicy::parse(&text) {
            // compile() must either succeed or return issues, never panic.
            let _ = ast.compile();
        }
    }

    #[test]
    fn trace_csv_roundtrips(
        frames in proptest::collection::vec(
            (0u64..1_000_000, 0.0f64..300.0, 0.0f64..50.0,
             -90.0f64..90.0, -180.0f64..180.0,
             any::<bool>(), any::<bool>(), any::<bool>()),
            0..20
        )
    ) {
        use sack_sds::sensors::SensorFrame;
        let mut t_acc = 0u64;
        let trace: Vec<SensorFrame> = frames.into_iter().map(
            |(dt, speed, accel, lat, lon, driver, airbag, ignition)| {
                t_acc += dt; // non-decreasing timestamps
                SensorFrame {
                    t: std::time::Duration::from_millis(t_acc),
                    speed_kmh: speed,
                    accel_g: accel,
                    gps: (lat, lon),
                    driver_present: driver,
                    airbag_deployed: airbag,
                    ignition_on: ignition,
                }
            }).collect();
        let csv = sack_sds::tracefile::to_csv(&trace);
        let parsed = sack_sds::tracefile::from_csv(&csv).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn state_rule_set_deny_always_wins(
        perm_bits in 1u8..64,
        path in path_under_test()
    ) {
        let mut perms = FilePerms::empty();
        for (i, fp) in [FilePerms::READ, FilePerms::WRITE, FilePerms::APPEND,
                        FilePerms::EXEC, FilePerms::MMAP, FilePerms::IOCTL]
            .into_iter().enumerate() {
            if perm_bits & (1 << i) != 0 { perms = perms.union(fp); }
        }
        let allow = MacRule::allow_any("/**", FilePerms::all()).unwrap();
        let deny = MacRule {
            subject: sack_core::SubjectMatch::Any,
            object: Glob::compile("/**").unwrap(),
            perms,
            effect: sack_core::RuleEffect::Deny,
        };
        let set = StateRuleSet::build([&allow, &deny]);
        let subject = SubjectCtx { uid: 0, exe: None, profile: None };
        // Anything intersecting the denied set is refused...
        prop_assert!(!set.permits(&subject, &path, perms));
        // ...while the complement is still granted by the broad allow.
        let rest = FilePerms::all().difference(perms);
        if !rest.is_empty() {
            prop_assert!(set.permits(&subject, &path, rest));
        }
    }
}
