//! Property-based tests on the core data structures and invariants: glob
//! matching vs a reference implementation, path normalization, the
//! permission algebra, the SSM, the rule index, and the policy pipeline's
//! robustness to arbitrary input.
//!
//! Runs on the in-repo deterministic harness (`sack_suite::prop`) instead
//! of `proptest`: the build environment is offline, and a fixed seed
//! sequence keeps failures reproducible by case index.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use sack_suite::prop::{self, Rng};

use sack_apparmor::glob::Glob;
use sack_apparmor::profile::{FilePerms, PathRule, Profile};
use sack_apparmor::{AppArmor, CompiledRules, DfaBuilder, PolicyDb};
use sack_core::rules::{MacRule, ProtectedSet, StateRuleSet, SubjectCtx};
use sack_core::situation::StateSpace;
use sack_core::ssm::{Ssm, TransitionRule};
use sack_core::{RuleEffect, Sack, SackPolicy, StateDfa, SubjectMatch};
use sack_kernel::cred::Credentials;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;
use sack_vehicle::{VEHICLE_APPARMOR_PROFILES, VEHICLE_ENHANCED_POLICY, VEHICLE_SACK_POLICY};

// ---------------------------------------------------------------------
// Reference glob matcher: simple recursive implementation with the same
// semantics (`*` not crossing `/`, `**` crossing, `?` single non-`/`).
// ---------------------------------------------------------------------

fn ref_match(pat: &[u8], text: &[u8]) -> bool {
    match pat.first() {
        None => text.is_empty(),
        Some(b'*') => {
            if pat.get(1) == Some(&b'*') {
                // `**`
                (0..=text.len()).any(|i| ref_match(&pat[2..], &text[i..]))
            } else {
                (0..=text.len())
                    .take_while(|&i| i == 0 || text[i - 1] != b'/')
                    .any(|i| ref_match(&pat[1..], &text[i..]))
            }
        }
        Some(b'?') => !text.is_empty() && text[0] != b'/' && ref_match(&pat[1..], &text[1..]),
        Some(&c) => !text.is_empty() && text[0] == c && ref_match(&pat[1..], &text[1..]),
    }
}

/// Pattern fragments made only of literals and wildcards (no classes or
/// braces, which the reference matcher doesn't implement).
// The derefs on `rng.pick` are required: without them inference unifies
// `T` with `str` and the call fails to compile, so clippy's auto-deref
// suggestion is a false positive here.
#[allow(clippy::explicit_auto_deref)]
fn simple_pattern(rng: &mut Rng) -> String {
    let n = rng.range(1, 8);
    let mut out = String::from("/");
    for _ in 0..n {
        match *rng.pick_weighted(&[(3, 0u8), (2, 1), (2, 2), (1, 3), (1, 4)]) {
            0 => out.push_str(*rng.pick(&["a", "b", "dir", "x1"])),
            1 => out.push('/'),
            2 => out.push('*'),
            3 => out.push_str("**"),
            _ => out.push('?'),
        }
    }
    out
}

/// Richer patterns for index-vs-scan equivalence: adds character classes
/// and brace alternations, which the rule index must also bucket correctly.
#[allow(clippy::explicit_auto_deref)] // same inference false positive
fn rich_pattern(rng: &mut Rng) -> String {
    let n = rng.range(1, 8);
    let mut out = String::from("/");
    for _ in 0..n {
        match *rng.pick_weighted(&[(3, 0u8), (2, 1), (2, 2), (1, 3), (1, 4), (1, 5), (1, 6)]) {
            0 => out.push_str(*rng.pick(&["a", "b", "dir", "x1", "door"])),
            1 => out.push('/'),
            2 => out.push('*'),
            3 => out.push_str("**"),
            4 => out.push('?'),
            5 => out.push_str(*rng.pick(&["[ab]", "[0-3]", "[!q]"])),
            _ => out.push_str(*rng.pick(&["{a,b}", "{dir,door}"])),
        }
    }
    out
}

fn path_under_test(rng: &mut Rng) -> String {
    let n = rng.range(1, 6);
    let comps: Vec<&str> = (0..n)
        .map(|_| *rng.pick(&["a", "b", "ab", "dir", "x1", "q"]))
        .collect();
    format!("/{}", comps.join("/"))
}

fn rich_path(rng: &mut Rng) -> String {
    let n = rng.range(1, 6);
    let comps: Vec<&str> = (0..n)
        .map(|_| *rng.pick(&["a", "b", "ab", "dir", "x1", "q", "door", "door0", "door3"]))
        .collect();
    format!("/{}", comps.join("/"))
}

fn perms_from_bits(bits: u8) -> FilePerms {
    let mut perms = FilePerms::empty();
    for (i, p) in [
        FilePerms::READ,
        FilePerms::WRITE,
        FilePerms::APPEND,
        FilePerms::EXEC,
        FilePerms::MMAP,
        FilePerms::IOCTL,
    ]
    .into_iter()
    .enumerate()
    {
        if bits & (1 << i) != 0 {
            perms = perms.union(p);
        }
    }
    perms
}

#[test]
fn glob_matches_reference_semantics() {
    prop::check(|rng| {
        let pat = simple_pattern(rng);
        let path = path_under_test(rng);
        if let Ok(glob) = Glob::compile(&pat) {
            let expected = ref_match(pat.as_bytes(), path.as_bytes());
            assert_eq!(
                glob.matches(&path),
                expected,
                "pattern `{pat}` vs path `{path}`"
            );
        }
    });
}

#[test]
fn glob_literal_prefix_never_causes_false_negatives() {
    prop::check(|rng| {
        let pat = simple_pattern(rng);
        let path = path_under_test(rng);
        if let Ok(glob) = Glob::compile(&pat) {
            if ref_match(pat.as_bytes(), path.as_bytes()) {
                assert!(glob.matches(&path), "pattern `{pat}` vs path `{path}`");
            }
        }
    });
}

#[test]
fn glob_compile_never_panics() {
    prop::check(|rng| {
        let _ = Glob::compile(&rng.soup(40));
    });
}

#[test]
fn kpath_normalization_is_idempotent() {
    prop::check(|rng| {
        // Shape: (/[a-z.]{0,6}){0,6}/?
        let mut raw = String::new();
        for _ in 0..rng.below(7) {
            raw.push('/');
            for _ in 0..rng.below(7) {
                raw.push(*rng.pick(&['a', 'b', 'c', 'z', '.']));
            }
        }
        if rng.bool() {
            raw.push('/');
        }
        if let Ok(p) = KPath::new(&raw) {
            let again = KPath::new(p.as_str()).unwrap();
            assert_eq!(p.as_str(), again.as_str());
            // Invariants: absolute, no empty/dot components.
            assert!(p.as_str().starts_with('/'));
            for comp in p.components() {
                assert!(!comp.is_empty());
                assert!(comp != "." && comp != "..");
            }
        }
    });
}

#[test]
fn kpath_parent_join_roundtrip() {
    prop::check(|rng| {
        // Shape: (/[a-z]{1,5}){1,5}
        let mut raw = String::new();
        for _ in 0..rng.range(1, 6) {
            raw.push('/');
            for _ in 0..rng.range(1, 6) {
                raw.push((b'a' + rng.below(26) as u8) as char);
            }
        }
        let p = KPath::new(&raw).unwrap();
        if let (Some(parent), Some(name)) = (p.parent(), p.file_name()) {
            assert_eq!(parent.join(name).unwrap(), p);
        }
    });
}

#[test]
fn file_perms_parse_display_roundtrip() {
    prop::check(|rng| {
        let perms = perms_from_bits(rng.below(64) as u8);
        if perms.is_empty() {
            assert_eq!(perms.to_string(), "-");
        } else {
            let reparsed = FilePerms::parse(&perms.to_string()).unwrap();
            assert_eq!(reparsed, perms);
        }
    });
}

#[test]
fn file_perms_algebra() {
    prop::check(|rng| {
        let pa = perms_from_bits(rng.below(64) as u8);
        let pb = perms_from_bits(rng.below(64) as u8);
        let union = pa.union(pb);
        assert!(union.contains(pa) && union.contains(pb));
        let diff = pa.difference(pb);
        assert!(!diff.intersects(pb));
        assert!(pa.contains(diff));
        // union covers diff(pa,pb) ∪ pb — sanity via contains:
        assert!(union.contains(diff.union(pb)));
    });
}

/// Tentpole differential: the three `CompiledRules` evaluation strategies —
/// `evaluate` (first-component buckets), `evaluate_scan` (naive
/// scan-everything baseline), and `evaluate_dfa` (unified minimized DFA
/// with build-time-resolved decisions) — must return identical
/// `RuleDecision`s for every generated rule set, including classes and
/// brace alternations, and for several probe paths per set.
#[test]
fn compiled_rules_dfa_index_and_scan_agree() {
    prop::check(|rng| {
        let n_rules = rng.below(13);
        let rules: Vec<PathRule> = (0..n_rules)
            .filter_map(|_| {
                let pat = rich_pattern(rng);
                let perms = {
                    let p = perms_from_bits(rng.range(1, 64) as u8);
                    if p.is_empty() {
                        FilePerms::READ
                    } else {
                        p
                    }
                };
                if rng.bool() {
                    PathRule::deny(&pat, perms).ok()
                } else {
                    PathRule::allow(&pat, perms).ok()
                }
            })
            .collect();
        let compiled = CompiledRules::build(&rules);
        for _ in 0..4 {
            let path = rich_path(rng);
            let scan = compiled.evaluate_scan(&path);
            assert_eq!(
                compiled.evaluate(&path),
                scan,
                "rule index diverged from scan on `{path}` over {rules:?}"
            );
            assert_eq!(
                compiled.evaluate_dfa(&path),
                scan,
                "DFA matcher diverged from scan on `{path}` over {rules:?}"
            );
        }
    });
}

/// The unified per-state table must reproduce the legacy cold path bit for
/// bit: one `StateDfa::decide` walk equals `ProtectedSet::contains` plus
/// `StateRuleSet::permits` for arbitrary rule sets (mixed effects, mixed
/// subject selectors — subject-scoped rules land in the residual scan
/// lists) and arbitrary subjects, paths and requested permissions.
#[test]
fn state_dfa_walk_agrees_with_protected_set_and_rule_scan() {
    prop::check(|rng| {
        let n_rules = rng.below(12);
        let rules: Vec<MacRule> = (0..n_rules)
            .filter_map(|_| {
                let object = Glob::compile(&rich_pattern(rng)).ok()?;
                let subject = match *rng.pick_weighted(&[(4, 0u8), (1, 1), (1, 2)]) {
                    0 => SubjectMatch::Any,
                    1 => SubjectMatch::Uid(if rng.bool() { 0 } else { 1000 }),
                    _ => SubjectMatch::ExeGlob(Glob::compile("/usr/bin/*").unwrap()),
                };
                Some(MacRule {
                    subject,
                    object,
                    perms: perms_from_bits(rng.range(1, 64) as u8),
                    effect: if rng.bool() {
                        RuleEffect::Allow
                    } else {
                        RuleEffect::Deny
                    },
                })
            })
            .collect();
        let set = StateRuleSet::build(rules.iter());
        let protected = ProtectedSet::build(rules.iter().map(|r| &r.object));
        let dfa = StateDfa::build(rules.iter(), rules.iter().map(|r| &r.object));
        let subjects = [
            SubjectCtx {
                uid: 0,
                exe: None,
                profile: None,
            },
            SubjectCtx {
                uid: 1000,
                exe: Some("/usr/bin/app"),
                profile: None,
            },
            SubjectCtx {
                uid: 1000,
                exe: Some("/sbin/init"),
                profile: None,
            },
        ];
        for _ in 0..4 {
            let path = rich_path(rng);
            let requested = perms_from_bits(rng.range(1, 64) as u8);
            for subject in &subjects {
                let decision = dfa.decide(subject, &path, requested);
                assert_eq!(
                    decision.protected,
                    protected.contains(&path),
                    "protected-set membership diverged on `{path}` over {rules:?}"
                );
                assert_eq!(
                    decision.permitted,
                    set.permits(subject, &path, requested),
                    "uid={} exe={:?} path=`{path}` perms={requested} over {rules:?}",
                    subject.uid,
                    subject.exe
                );
            }
        }
    });
}

/// The policy linter's coverage/overlap analysis reads language facts off
/// the merged DFA's tag sets (`dfa.annotations()`): glob `a` covers glob
/// `b` iff every annotation containing `b`'s tag also contains `a`'s, and
/// the two overlap iff some annotation contains both. Those set questions
/// must agree with the pairwise NFA product procedures (`Glob::covers`,
/// `Glob::overlaps`) they replaced in the O(rules) lint loop.
#[test]
fn dfa_tag_sets_agree_with_nfa_cover_and_overlap() {
    prop::check(|rng| {
        let pat_a = simple_pattern(rng);
        let pat_b = simple_pattern(rng);
        let (Ok(glob_a), Ok(glob_b)) = (Glob::compile(&pat_a), Glob::compile(&pat_b)) else {
            return;
        };
        let mut builder = DfaBuilder::new();
        builder.add_glob(&glob_a, 0);
        builder.add_glob(&glob_b, 1);
        let dfa = builder.build(|tags| tags.to_vec());
        let (mut a_covers_b, mut b_covers_a, mut overlap) = (true, true, false);
        for tags in dfa.annotations() {
            let (has_a, has_b) = (tags.contains(&0), tags.contains(&1));
            a_covers_b &= !has_b || has_a;
            b_covers_a &= !has_a || has_b;
            overlap |= has_a && has_b;
        }
        assert_eq!(
            a_covers_b,
            glob_a.covers(&glob_b),
            "covers(`{pat_a}`, `{pat_b}`)"
        );
        assert_eq!(
            b_covers_a,
            glob_b.covers(&glob_a),
            "covers(`{pat_b}`, `{pat_a}`)"
        );
        assert_eq!(
            overlap,
            glob_a.overlaps(&glob_b),
            "overlaps(`{pat_a}`, `{pat_b}`)"
        );
    });
}

#[test]
fn protected_set_equals_naive_union() {
    prop::check(|rng| {
        let n = rng.below(10);
        let globs: Vec<Glob> = (0..n)
            .filter_map(|_| Glob::compile(&simple_pattern(rng)).ok())
            .collect();
        let path = path_under_test(rng);
        let set = ProtectedSet::build(globs.iter());
        let naive = globs.iter().any(|g| g.matches(&path));
        assert_eq!(set.contains(&path), naive);
    });
}

#[test]
fn ssm_random_walk_stays_consistent() {
    prop::check(|rng| {
        let n_states = rng.range(2, 8);
        let mut space = StateSpace::new();
        for i in 0..n_states {
            space.add_state(&format!("s{i}"), i as u32).unwrap();
        }
        for e in 0..5 {
            space.add_event(&format!("e{e}")).unwrap();
        }
        // Deduplicate rules by (from, event), keeping the first target.
        let mut seen = std::collections::HashSet::new();
        let rules: Vec<TransitionRule> = (0..rng.below(20))
            .filter_map(|_| {
                let from = sack_core::StateId(rng.below(8) % n_states);
                let event = sack_core::EventId(rng.below(5));
                let to = sack_core::StateId(rng.below(8) % n_states);
                seen.insert((from, event))
                    .then_some(TransitionRule { from, event, to })
            })
            .collect();
        let ssm = Ssm::new(space, &rules, sack_core::StateId(0)).unwrap();

        let mut expected = sack_core::StateId(0);
        for _ in 0..rng.below(50) {
            let event = sack_core::EventId(rng.below(5));
            let outcome = ssm.deliver(event, std::time::Duration::ZERO);
            // Recompute what should have happened from the rule list.
            let target = rules
                .iter()
                .find(|r| r.from == expected && r.event == event)
                .map(|r| r.to);
            match (outcome.transitioned(), target) {
                (true, Some(t)) => expected = t,
                (false, None) => {}
                (got, want) => panic!("outcome {got:?} vs rule {want:?}"),
            }
            assert_eq!(ssm.current(), expected);
        }
        assert_eq!(ssm.history().len() as u64, ssm.taken_count());
    });
}

#[test]
fn policy_parser_never_panics() {
    prop::check(|rng| {
        let _ = SackPolicy::parse(&rng.soup(200));
    });
}

#[test]
fn profile_parser_never_panics() {
    prop::check(|rng| {
        let _ = sack_apparmor::parse_profiles(&rng.soup(200));
    });
}

#[test]
fn profile_parser_never_panics_on_structured_soup() {
    prop::check(|rng| {
        let n = rng.below(30);
        let parts: Vec<&str> = (0..n)
            .map(|_| {
                *rng.pick(&[
                    "profile",
                    "p",
                    "{",
                    "}",
                    ",",
                    "/a/*",
                    "rw",
                    "deny",
                    "capability",
                    "network",
                    "unix",
                    "flags=(complain)",
                ])
            })
            .collect();
        let text = parts.join(" ");
        if let Ok(profiles) = sack_apparmor::parse_profiles(&text) {
            // Anything that parses must also render and re-parse.
            for p in profiles {
                let rendered = p.to_string();
                assert!(
                    sack_apparmor::parse_profiles(&rendered).is_ok(),
                    "{rendered}"
                );
            }
        }
    });
}

#[test]
fn policy_display_roundtrips_for_valid_asts() {
    prop::check(|rng| {
        let n_states = rng.range(1, 5);
        let n_perms = rng.range(1, 4);
        // Build a small synthetic AST directly and round-trip it.
        let mut ast = SackPolicy::default();
        for i in 0..n_states {
            ast.states.push((format!("st{i}"), i as u32));
        }
        ast.events.push("go".to_string());
        if n_states > 1 {
            ast.transitions
                .push(("st0".into(), "go".into(), "st1".into()));
        }
        ast.initial = Some("st0".to_string());
        for p in 0..n_perms {
            ast.permissions.push(format!("PERM{p}"));
        }
        ast.state_per
            .push(("st0".to_string(), ast.permissions.clone()));
        ast.per_rules.push((
            "PERM0".to_string(),
            vec![sack_core::policy::RuleSpec {
                effect: sack_core::RuleEffect::Allow,
                subject: sack_core::policy::SubjectSpec::Any,
                object: "/x/**".to_string(),
                perms: "rw".to_string(),
                line: 0,
            }],
        ));
        let rendered = ast.to_string();
        let mut reparsed = SackPolicy::parse(&rendered).unwrap();
        // Line numbers are positional metadata, not semantics.
        for (_, rules) in &mut reparsed.per_rules {
            for r in rules {
                r.line = 0;
            }
        }
        assert_eq!(ast, reparsed);
    });
}

#[test]
fn policy_pipeline_never_panics_on_parsed_input() {
    prop::check(|rng| {
        // Shape: (states { <id> = <d>; } )?(initial <id>;)?
        let mut text = String::new();
        if rng.bool() {
            let mut name = String::new();
            for _ in 0..rng.range(1, 5) {
                name.push((b'a' + rng.below(26) as u8) as char);
            }
            text.push_str(&format!("states {{ {name} = {}; }} ", rng.below(10)));
        }
        if rng.bool() {
            let mut name = String::new();
            for _ in 0..rng.range(1, 5) {
                name.push((b'a' + rng.below(26) as u8) as char);
            }
            text.push_str(&format!("initial {name};"));
        }
        if let Ok(ast) = SackPolicy::parse(&text) {
            // compile() must either succeed or return issues, never panic.
            let _ = ast.compile();
        }
    });
}

#[test]
fn trace_csv_roundtrips() {
    prop::check(|rng| {
        use sack_sds::sensors::SensorFrame;
        let n = rng.below(20);
        let mut t_acc = 0u64;
        let trace: Vec<SensorFrame> = (0..n)
            .map(|_| {
                t_acc += rng.below(1_000_000) as u64; // non-decreasing timestamps
                SensorFrame {
                    t: std::time::Duration::from_millis(t_acc),
                    speed_kmh: rng.f64(0.0, 300.0),
                    accel_g: rng.f64(0.0, 50.0),
                    gps: (rng.f64(-90.0, 90.0), rng.f64(-180.0, 180.0)),
                    driver_present: rng.bool(),
                    airbag_deployed: rng.bool(),
                    ignition_on: rng.bool(),
                }
            })
            .collect();
        let csv = sack_sds::tracefile::to_csv(&trace);
        let parsed = sack_sds::tracefile::from_csv(&csv).unwrap();
        assert_eq!(parsed, trace);
    });
}

/// The decision cache's whole invalidation story is the epoch tag: a
/// reload bumps the epoch, and every entry inserted under the old epoch
/// must be unreachable afterwards — no flush, just keys that never match
/// again. The property drives random working sets, states and permission
/// bits, and checks both directions: immediate hits under the inserting
/// epoch, guaranteed misses under any bumped epoch, in arbitrary lookup
/// order.
#[test]
fn cached_grant_is_never_served_across_an_epoch_bump() {
    use sack_core::{CachedOutcome, DecisionCache, DecisionKey};
    prop::check(|rng| {
        let cache = DecisionCache::new();
        let old_epoch = rng.next_u64();
        let bump = rng.range(1, 1000) as u64;
        let new_epoch = old_epoch.wrapping_add(bump);
        fn make_key(epoch: u64, path: &str, state: usize, perms: u8) -> DecisionKey<'_> {
            DecisionKey {
                epoch,
                confinement_gen: 0,
                state,
                uid: 1000,
                mac_override: false,
                exe: Some("/usr/bin/app"),
                path,
                perms,
            }
        }
        let mut entries: Vec<(String, usize, u8)> = (0..rng.range(1, 40))
            .map(|_| (rich_path(rng), rng.below(8), rng.range(1, 64) as u8))
            .collect();
        for (path, state, perms) in &entries {
            let key = make_key(old_epoch, path, *state, *perms);
            cache.insert(&key, CachedOutcome::Allow);
            assert_eq!(
                cache.lookup(&key),
                Some(CachedOutcome::Allow),
                "freshly inserted grant must hit under its own epoch"
            );
        }
        rng.shuffle(&mut entries);
        for (path, state, perms) in &entries {
            assert_eq!(
                cache.lookup(&make_key(new_epoch, path, *state, *perms)),
                None,
                "stale grant served across epoch bump (+{bump}) for `{path}`"
            );
        }
    });
}

/// Probe paths biased toward the vehicle bundles' namespace (`/dev/car`,
/// `/dev/can0`, `/usr/bin`, `/tmp`) plus generic noise paths.
#[allow(clippy::explicit_auto_deref)] // same inference false positive
fn vehicle_path(rng: &mut Rng) -> String {
    if rng.bool() {
        (*rng.pick(&[
            "/dev/car/door0",
            "/dev/car/door3",
            "/dev/car/window0",
            "/dev/car/audio",
            "/dev/car/engine/rpm",
            "/dev/can0",
            "/dev/can1",
            "/usr/bin/media_app",
            "/usr/bin/rescue_daemon",
            "/usr/lib/libc.so",
            "/tmp/scratch",
            "/etc/passwd",
        ]))
        .to_string()
    } else {
        rich_path(rng)
    }
}

/// Acceptance sweep over the shipped vehicle bundles: in every situation
/// state of `VEHICLE_SACK_POLICY` and `VEHICLE_ENHANCED_POLICY`, the
/// published `StateDfa` table must agree with the legacy protected-set +
/// rule-scan pipeline for randomized subjects, paths, and permissions.
#[test]
fn vehicle_bundle_state_dfas_agree_with_scan() {
    for text in [VEHICLE_SACK_POLICY, VEHICLE_ENHANCED_POLICY] {
        let compiled = SackPolicy::parse(text).unwrap().compile().unwrap();
        prop::check(|rng| {
            let path = vehicle_path(rng);
            let requested = perms_from_bits(rng.range(1, 64) as u8);
            let subject = SubjectCtx {
                uid: if rng.bool() { 0 } else { 1000 },
                exe: *rng.pick(&[
                    None,
                    Some("/usr/bin/media_app"),
                    Some("/usr/bin/rescue_daemon"),
                ]),
                profile: *rng.pick(&[None, Some("media_app"), Some("rescue_daemon")]),
            };
            for index in 0..compiled.space().state_count() {
                let state = sack_core::StateId(index);
                let decision = compiled.state_dfa(state).decide(&subject, &path, requested);
                assert_eq!(
                    decision.protected,
                    compiled.protected().contains(&path),
                    "protected-set membership diverged on `{path}`"
                );
                assert_eq!(
                    decision.permitted,
                    compiled
                        .state_rules(state)
                        .permits(&subject, &path, requested),
                    "state {index} diverged on `{path}` perms={requested} exe={:?} profile={:?}",
                    subject.exe,
                    subject.profile
                );
            }
        });
    }
}

/// The same three-way agreement over the shipped AppArmor bundle: every
/// profile's compiled rule set must label paths identically through the
/// bucketed index, the naive scan, and the DFA matcher.
#[test]
fn vehicle_profiles_dfa_index_and_scan_agree() {
    let profiles = sack_apparmor::parse_profiles(VEHICLE_APPARMOR_PROFILES).unwrap();
    assert!(!profiles.is_empty());
    for profile in &profiles {
        let compiled = CompiledRules::build(&profile.path_rules);
        prop::check(|rng| {
            let path = vehicle_path(rng);
            let scan = compiled.evaluate_scan(&path);
            assert_eq!(
                compiled.evaluate(&path),
                scan,
                "profile {} index diverged on `{path}`",
                profile.name
            );
            assert_eq!(
                compiled.evaluate_dfa(&path),
                scan,
                "profile {} DFA diverged on `{path}`",
                profile.name
            );
        });
    }
}

/// A random [`PathRule`] over the rich pattern vocabulary.
fn random_path_rule(rng: &mut Rng) -> Option<PathRule> {
    let pat = rich_pattern(rng);
    let perms = {
        let p = perms_from_bits(rng.range(1, 64) as u8);
        if p.is_empty() {
            FilePerms::READ
        } else {
            p
        }
    };
    if rng.bool() {
        PathRule::deny(&pat, perms).ok()
    } else {
        PathRule::allow(&pat, perms).ok()
    }
}

/// Differential over the `PolicyDb` load path: profiles compiled through
/// the database — i.e. against the *namespace-shared* byte-class alphabet
/// rather than a private one — must still agree with the naive scan and
/// the bucketed index on every probe, and every profile's matcher must
/// literally share the database's alphabet (`Arc` identity, not just
/// equal classes).
#[test]
fn policy_db_profiles_share_the_alphabet_and_agree_with_scan() {
    prop::check(|rng| {
        let db = PolicyDb::new();
        let n_profiles = rng.range(1, 5);
        for i in 0..n_profiles {
            let mut profile = Profile::new(format!("p{i}"));
            for _ in 0..rng.below(8) {
                if let Some(rule) = random_path_rule(rng) {
                    profile.path_rules.push(rule);
                }
            }
            db.load(profile);
        }
        let alphabet = db.alphabet();
        for name in db.profile_names() {
            let compiled = db.get(&name).unwrap();
            assert!(
                Arc::ptr_eq(compiled.rules().alphabet(), &alphabet),
                "profile {name} compiled against a private alphabet"
            );
            for _ in 0..3 {
                let path = rich_path(rng);
                let scan = compiled.rules().evaluate_scan(&path);
                assert_eq!(
                    compiled.rules().evaluate(&path),
                    scan,
                    "profile {name} index diverged on `{path}`"
                );
                assert_eq!(
                    compiled.rules().evaluate_dfa(&path),
                    scan,
                    "profile {name} DFA diverged on `{path}`"
                );
            }
        }
    });
}

/// The shipped AppArmor bundle loaded through the real `PolicyDb` text
/// path: shared-alphabet compilation must not change a single verdict
/// relative to the naive scan, on vehicle-shaped and noise paths alike.
#[test]
fn vehicle_bundle_through_policy_db_agrees_with_scan() {
    let db = PolicyDb::new();
    let loaded = db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
    assert!(loaded > 0);
    let alphabet = db.alphabet();
    prop::check(|rng| {
        let path = vehicle_path(rng);
        for name in db.profile_names() {
            let compiled = db.get(&name).unwrap();
            assert!(Arc::ptr_eq(compiled.rules().alphabet(), &alphabet));
            let scan = compiled.rules().evaluate_scan(&path);
            assert_eq!(
                compiled.rules().evaluate_dfa(&path),
                scan,
                "profile {name} DFA diverged on `{path}`"
            );
            assert_eq!(
                compiled.rules().evaluate(&path),
                scan,
                "profile {name} index diverged on `{path}`"
            );
        }
    });
}

/// The end-to-end stacked verdict — SACK's situation gate plus the
/// AppArmor profile hook, sharing one `Sack::set_dfa_matcher_enabled`
/// switch — must be bit-identical with the DFA matchers on and off,
/// across random situation walks, subjects, paths, and access masks.
/// The decision cache is disabled so every probe reaches the matchers.
#[test]
#[allow(clippy::explicit_auto_deref)] // same inference false positive
fn stacked_sack_apparmor_verdict_is_identical_with_dfa_on_and_off() {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
    let apparmor = AppArmor::new(Arc::clone(&db));
    sack.set_profile_oracle(Arc::clone(&apparmor));
    sack.set_decision_cache_enabled(false);
    let confined = Pid(9);
    apparmor.set_profile(confined, "media_app").unwrap();
    let unconfined = Pid(10);
    prop::check(|rng| {
        let event = *rng.pick(&[
            "crash",
            "park",
            "start_driving",
            "driver_left",
            "driver_entered",
            "emergency_resolved",
        ]);
        let _ = sack.deliver_event(event, std::time::Duration::ZERO);
        let pid = if rng.bool() { confined } else { unconfined };
        let ctx = HookCtx::new(
            pid,
            Credentials::user(1000, 1000),
            Some(KPath::new(*rng.pick(&["/usr/bin/media_app", "/usr/bin/rescue_daemon"])).unwrap()),
        );
        let path = KPath::new(&vehicle_path(rng)).unwrap();
        let obj = ObjectRef::regular(&path);
        let mask = *rng.pick(&[
            AccessMask::READ,
            AccessMask::WRITE,
            AccessMask::EXEC,
            AccessMask::APPEND,
        ]);
        let verdict = |dfa: bool| {
            sack.set_dfa_matcher_enabled(dfa);
            (
                sack.file_open(&ctx, &obj, mask).is_ok(),
                apparmor.file_open(&ctx, &obj, mask).is_ok(),
            )
        };
        let with_dfa = verdict(true);
        let with_scan = verdict(false);
        assert_eq!(
            with_dfa,
            with_scan,
            "stacked verdict diverged in state `{}` for pid={pid:?} \
             path=`{path}` mask={mask:?}",
            sack.current_state_name()
        );
    });
}

/// Incremental recompilation differential: after every random edit the
/// whole table still agrees with the naive scan, the edited profile is
/// the *only* one recompiled unless the edit genuinely split a byte
/// class (checked via the database's own counters), and untouched
/// profiles keep their exact `Arc` — the compiler never even looked at
/// them.
#[test]
fn incremental_recompile_preserves_equivalence_and_pins_untouched_profiles() {
    prop::check(|rng| {
        let db = PolicyDb::new();
        let n_profiles = rng.range(2, 5);
        for i in 0..n_profiles {
            let mut profile = Profile::new(format!("p{i}"));
            for _ in 0..rng.range(1, 6) {
                if let Some(rule) = random_path_rule(rng) {
                    profile.path_rules.push(rule);
                }
            }
            db.load(profile);
        }
        for _ in 0..rng.range(1, 5) {
            let target = format!("p{}", rng.below(n_profiles));
            let before: Vec<(String, Arc<sack_apparmor::CompiledProfile>)> = db
                .profile_names()
                .into_iter()
                .map(|name| {
                    let compiled = db.get(&name).unwrap();
                    (name, compiled)
                })
                .collect();
            let compiles_before = db.compile_count();
            let rebuilds_before = db.alphabet_rebuild_count();
            let push = rng.bool();
            let new_rule = random_path_rule(rng);
            db.patch(&target, |p| {
                if push || p.path_rules.is_empty() {
                    if let Some(rule) = new_rule.clone() {
                        p.path_rules.push(rule);
                    }
                } else {
                    p.path_rules.pop();
                }
            })
            .unwrap();
            let changed = db.compile_count() > compiles_before;
            let rebuilt = db.alphabet_rebuild_count() > rebuilds_before;
            if changed {
                let expected = if rebuilt { n_profiles as u64 } else { 1 };
                assert_eq!(
                    db.compile_count() - compiles_before,
                    expected,
                    "a single-profile edit must recompile only that profile \
                     (or the world exactly once on a genuine class split)"
                );
            }
            if !rebuilt {
                for (name, old) in &before {
                    if *name != target {
                        assert!(
                            Arc::ptr_eq(old, &db.get(name).unwrap()),
                            "untouched profile {name} was rebuilt"
                        );
                    }
                }
            }
            let alphabet = db.alphabet();
            for name in db.profile_names() {
                let compiled = db.get(&name).unwrap();
                assert!(
                    Arc::ptr_eq(compiled.rules().alphabet(), &alphabet),
                    "profile {name} lost the shared alphabet after an edit"
                );
                for _ in 0..2 {
                    let path = rich_path(rng);
                    let scan = compiled.rules().evaluate_scan(&path);
                    assert_eq!(
                        compiled.rules().evaluate_dfa(&path),
                        scan,
                        "profile {name} DFA diverged on `{path}` after an edit"
                    );
                }
            }
        }
    });
}

/// Satellite invariant for the opt-in negative cache: a denial is counted
/// on every refusal, but the audit record for a given (path, perms,
/// subject, state) decision is emitted exactly once — replays are served
/// from the cache without re-auditing. Protected-but-unwritable paths
/// under a read-only grant exercise the default-deny denial path.
#[test]
fn negative_cache_audits_each_distinct_denial_exactly_once() {
    const READONLY_POLICY: &str = r#"
        states { locked = 0; }
        events { noop; }
        transitions { locked -noop-> locked; }
        initial locked;
        permissions { P; }
        state_per { locked: P; }
        per_rules { P: allow subject=* /locked/** r; }
    "#;
    prop::check(|rng| {
        let sack = Sack::independent(READONLY_POLICY).unwrap();
        sack.set_negative_cache_enabled(true);
        let ctx = HookCtx::new(
            Pid(9),
            Credentials::user(1000, 1000),
            Some(KPath::new("/usr/bin/app").unwrap()),
        );
        let n_paths = rng.range(1, 5);
        let paths: Vec<KPath> = (0..n_paths)
            .map(|i| KPath::new(&format!("/locked/f{i}")).unwrap())
            .collect();
        let probes = rng.range(n_paths, 24);
        for k in 0..probes {
            // Visit every path once up front, then replay at random.
            let i = if k < n_paths { k } else { rng.below(n_paths) };
            let obj = ObjectRef::regular(&paths[i]);
            assert!(
                sack.file_open(&ctx, &obj, AccessMask::WRITE).is_err(),
                "write into the read-only grant must be refused"
            );
        }
        assert_eq!(
            sack.stats().denials.load(Ordering::Relaxed),
            probes as u64,
            "every refusal is counted"
        );
        assert_eq!(
            sack.audit().total(),
            n_paths as u64,
            "each distinct denied decision is audited exactly once"
        );
        assert!(
            sack.stats().cache_hits.load(Ordering::Relaxed) >= (probes - n_paths) as u64,
            "replayed denials must come from the cache"
        );
    });
}

#[test]
fn state_rule_set_deny_always_wins() {
    prop::check(|rng| {
        let perms = perms_from_bits(rng.range(1, 64) as u8);
        if perms.is_empty() {
            return;
        }
        let path = path_under_test(rng);
        let allow = MacRule::allow_any("/**", FilePerms::all()).unwrap();
        let deny = MacRule {
            subject: sack_core::SubjectMatch::Any,
            object: Glob::compile("/**").unwrap(),
            perms,
            effect: sack_core::RuleEffect::Deny,
        };
        let set = StateRuleSet::build([&allow, &deny]);
        let subject = SubjectCtx {
            uid: 0,
            exe: None,
            profile: None,
        };
        // Anything intersecting the denied set is refused...
        assert!(!set.permits(&subject, &path, perms));
        // ...while the complement is still granted by the broad allow.
        let rest = FilePerms::all().difference(perms);
        if !rest.is_empty() {
            assert!(set.permits(&subject, &path, rest));
        }
    });
}
