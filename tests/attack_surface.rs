//! Integration test: the security-enhancement claims (paper Q2) — KOFFEE
//! command injection and the CVE-2023-6073 volume attack under each
//! defence configuration and situation state.

use std::sync::Arc;

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::device::CharDevice;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_sds::service::{standard_detectors, SdsService};
use sack_vehicle::attack::{koffee_injection, volume_max_attack};
use sack_vehicle::car::CarHardware;
use sack_vehicle::ivi::{AppManifest, IviPermission, IviSystem};
use sack_vehicle::policies::{VEHICLE_APPARMOR_PROFILES, VEHICLE_SACK_POLICY};

fn compromised_app(kernel: &Arc<Kernel>) -> sack_vehicle::ivi::IviApp {
    let mut ivi = IviSystem::new(Arc::clone(kernel));
    ivi.install_app(
        AppManifest::new("media_app", "/usr/bin/media_app", 1001).grant(IviPermission::SetVolume),
    )
    .unwrap()
}

#[test]
fn injection_fully_succeeds_on_dac_only_kernel() {
    let kernel = Kernel::boot_default();
    let hw = CarHardware::install(&kernel, 2, 2).unwrap();
    let app = compromised_app(&kernel);
    let report = koffee_injection(app.process(), 2, 2);
    assert_eq!(report.blocked(), 0, "{report}");
    assert!(!hw.all_doors_locked());
}

#[test]
fn injection_fully_blocked_while_driving_under_sack() {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let hw = CarHardware::install(&kernel, 2, 2).unwrap();
    let sds = SdsService::spawn(&kernel, standard_detectors()).unwrap();
    sds.send_event("start_driving").unwrap();

    let app = compromised_app(&kernel);
    let report = koffee_injection(app.process(), 2, 2);
    assert!(report.fully_contained(), "{report}");
    // Every denial came from SACK specifically.
    for attempt in &report.attempts {
        assert_eq!(attempt.blocked_by.as_ref().unwrap().1, Some("sack"));
    }
    assert!(hw.all_doors_locked());
    assert_eq!(hw.audio().volume(), 30);
    sds.shutdown();
}

#[test]
fn can_frame_injection_blocked_by_sack_while_driving() {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let hw = CarHardware::install(&kernel, 2, 2).unwrap();
    let bus = hw.install_can(&kernel).unwrap();
    let sds = SdsService::spawn(&kernel, standard_detectors()).unwrap();
    sds.send_event("start_driving").unwrap();

    let app = compromised_app(&kernel);
    let report = sack_vehicle::attack::koffee_can_injection(app.process(), 2, 2);
    assert!(report.fully_contained(), "{report}");
    assert!(hw.all_doors_locked());
    assert!(bus.trace().is_empty(), "no frame reached the bus");

    // Without MAC the same write floods the bus and moves the hardware.
    let bare = Kernel::boot_default();
    let hw2 = CarHardware::install(&bare, 2, 2).unwrap();
    let bus2 = hw2.install_can(&bare).unwrap();
    let attacker = bare.spawn(Credentials::user(1001, 1001));
    let report = sack_vehicle::attack::koffee_can_injection(&attacker, 2, 2);
    assert_eq!(report.blocked(), 0);
    assert_eq!(bus2.trace().len(), 5);
    assert!(!hw2.all_doors_locked());
    assert_eq!(hw2.audio().volume(), 100);
    sds.shutdown();
}

#[test]
fn volume_attack_is_situation_dependent() {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let hw = CarHardware::install(&kernel, 1, 1).unwrap();
    let sds = SdsService::spawn(&kernel, standard_detectors()).unwrap();
    let app = compromised_app(&kernel);

    // Parked with driver: volume writes are mapped -> attack lands.
    assert_eq!(sack.current_state_name(), "parking_with_driver");
    assert_eq!(volume_max_attack(app.process()).successes(), 1);
    assert_eq!(hw.audio().volume(), 100);

    // Reset and drive: the same injection is denied in the kernel.
    hw.audio()
        .ioctl(sack_vehicle::devices::audio_ioctl::SET_VOLUME, 30)
        .unwrap();
    sds.send_event("start_driving").unwrap();
    assert_eq!(volume_max_attack(app.process()).successes(), 0);
    assert_eq!(hw.audio().volume(), 30);
    sds.shutdown();
}

#[test]
fn even_emergency_only_helps_the_rescue_daemon() {
    // During an emergency the door permission exists, but it is bound to
    // the rescue executable; the compromised media app still gets nothing.
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let hw = CarHardware::install(&kernel, 2, 2).unwrap();
    let sds = SdsService::spawn(&kernel, standard_detectors()).unwrap();
    sds.send_event("crash").unwrap();
    assert_eq!(sack.current_state_name(), "emergency");

    let app = compromised_app(&kernel);
    let report = koffee_injection(app.process(), 2, 2);
    // Doors/windows blocked (wrong subject); volume blocked (permission
    // not granted in emergency).
    assert!(report.fully_contained(), "{report}");
    assert!(hw.all_doors_locked());
    sds.shutdown();
}

#[test]
fn attacker_cannot_forge_situation_events() {
    // The attack that *would* work: flip the situation to emergency first,
    // then use the break-the-glass permission. SACKfs requires
    // CAP_MAC_ADMIN, which the threat model denies to attackers.
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    CarHardware::install(&kernel, 1, 1).unwrap();
    let app = compromised_app(&kernel);

    let fd = app
        .process()
        .open(
            "/sys/kernel/security/SACK/events",
            sack_kernel::file::OpenFlags::write_only(),
        )
        .unwrap();
    let err = app.process().write(fd, b"crash\n").unwrap_err();
    assert_eq!(err.errno(), sack_kernel::Errno::EPERM);
    assert_eq!(sack.current_state_name(), "parking_with_driver");
}

#[test]
fn attacker_cannot_rewrite_sack_policy() {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let permissive = b"states { s = 0; } initial s; permissions { P; } \
                       state_per { s: P; } \
                       per_rules { P: allow subject=* /** rw; }";

    // An unprivileged attacker is already stopped by DAC (the node is
    // 0644, root-owned).
    let attacker = kernel.spawn(Credentials::user(1001, 1001));
    let err = attacker
        .open(
            "/sys/kernel/security/SACK/policy",
            sack_kernel::file::OpenFlags::write_only(),
        )
        .unwrap_err();
    assert_eq!(err.errno(), sack_kernel::Errno::EACCES);

    // A uid-0 process *without* CAP_MAC_ADMIN (capabilities dropped) opens
    // the node but the handler's capability check rejects the write.
    let depriv = kernel.spawn(Credentials {
        uid: sack_kernel::Uid::ROOT,
        gid: sack_kernel::Gid(0),
        caps: sack_kernel::CapabilitySet::empty(),
    });
    let fd = depriv
        .open(
            "/sys/kernel/security/SACK/policy",
            sack_kernel::file::OpenFlags::write_only(),
        )
        .unwrap();
    let err = depriv.write(fd, permissive).unwrap_err();
    assert_eq!(err.errno(), sack_kernel::Errno::EPERM);
    // Policy unchanged.
    assert_eq!(sack.current_state_name(), "parking_with_driver");
}

#[test]
fn mac_override_capability_is_honoured_but_gated() {
    // A process that *does* hold CAP_MAC_OVERRIDE (e.g. a recovery shell)
    // bypasses SACK — that is Linux MAC semantics — but such a capability
    // is exactly what the threat model says attackers cannot obtain.
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let hw = CarHardware::install(&kernel, 1, 0).unwrap();
    let recovery = kernel.spawn(Credentials::user(0, 0).with_capability(Capability::MacOverride));
    let report = koffee_injection(&recovery, 1, 0);
    assert_eq!(report.blocked(), 0);
    assert!(!hw.all_doors_locked());
}

#[test]
fn apparmor_alone_blocks_but_cannot_adapt() {
    // Static profiles stop the attack but also stop the legitimate
    // emergency flow — the flexibility SACK adds (paper motivation).
    let db = Arc::new(PolicyDb::new());
    db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
    let apparmor = AppArmor::new(db);
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
        .boot();
    let hw = CarHardware::install(&kernel, 1, 0).unwrap();
    let mut ivi = IviSystem::new(Arc::clone(&kernel));
    let rescue = ivi
        .install_app(
            AppManifest::new("rescue_daemon", "/usr/bin/rescue_daemon", 900)
                .grant(IviPermission::ControlCarDoors),
        )
        .unwrap();
    // Attack blocked...
    let report = koffee_injection(rescue.process(), 1, 0);
    assert!(report.fully_contained());
    // ...but the legitimate rescue flow is blocked too, emergency or not.
    assert!(rescue.unlock_door(0).is_err());
    assert!(hw.all_doors_locked());
}
