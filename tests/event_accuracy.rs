//! Integration test: the §IV-B "situation awareness latency" claim's
//! accuracy half — every event written into SACKfs is received by the SSM,
//! in order, with none lost or duplicated (the paper reports 100% accuracy
//! across four event kinds).

use std::sync::Arc;

use sack_core::Sack;
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;

const POLICY: &str = r#"
states { a = 0; b = 1; c = 2; d = 3; }
events { go_b; go_c; go_d; go_a; }
transitions {
    a -go_b-> b;
    b -go_c-> c;
    c -go_d-> d;
    d -go_a-> a;
}
initial a;
permissions { P; }
state_per { a: P; }
per_rules { P: allow subject=* /x r; }
"#;

fn boot() -> (Arc<sack_kernel::Kernel>, Arc<Sack>) {
    let sack = Sack::independent(POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    (kernel, sack)
}

#[test]
fn every_event_is_received_exactly_once() {
    let (kernel, sack) = boot();
    let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    let fd = sds
        .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
        .unwrap();
    const ROUNDS: u64 = 2_500; // 4 events per round = 10k events
    for _ in 0..ROUNDS {
        for event in ["go_b", "go_c", "go_d", "go_a"] {
            sds.write(fd, format!("{event}\n").as_bytes()).unwrap();
        }
    }
    let active = sack.active();
    assert_eq!(active.ssm.delivered_count(), ROUNDS * 4, "no event lost");
    assert_eq!(active.ssm.taken_count(), ROUNDS * 4, "every event matched");
    assert_eq!(active.ssm.current_name(), "a", "full cycles end at start");
}

#[test]
fn event_order_is_preserved_in_history() {
    let (kernel, sack) = boot();
    let sds = kernel.spawn(Credentials::root());
    let fd = sds
        .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
        .unwrap();
    sds.write(fd, b"go_b\ngo_c\ngo_d\ngo_a\n").unwrap();
    let active = sack.active();
    let names: Vec<&str> = active
        .ssm
        .history()
        .iter()
        .map(|r| active.ssm.space().event(r.event).name.as_str())
        .map(|s| match s {
            "go_b" => "go_b",
            "go_c" => "go_c",
            "go_d" => "go_d",
            _ => "go_a",
        })
        .collect();
    assert_eq!(names, vec!["go_b", "go_c", "go_d", "go_a"]);
}

#[test]
fn concurrent_writers_lose_nothing() {
    let (kernel, sack) = boot();
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 1_000;
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let kernel = Arc::clone(&kernel);
            scope.spawn(move || {
                let sds =
                    kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
                let fd = sds
                    .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
                    .unwrap();
                for _ in 0..PER_WRITER {
                    // Known event; may or may not match the current state.
                    sds.write(fd, b"go_b\n").unwrap();
                }
            });
        }
    });
    let active = sack.active();
    assert_eq!(
        active.ssm.delivered_count(),
        WRITERS as u64 * PER_WRITER,
        "all concurrent events received"
    );
    assert_eq!(
        active.ssm.history().len() as u64,
        active.ssm.taken_count(),
        "history consistent under concurrency"
    );
}

#[test]
fn latency_is_microseconds_not_milliseconds() {
    // Not a precision benchmark (criterion covers that) — just a guard
    // that the securityfs path hasn't regressed by orders of magnitude.
    let (kernel, _sack) = boot();
    let sds = kernel.spawn(Credentials::root());
    let fd = sds
        .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
        .unwrap();
    let start = std::time::Instant::now();
    const N: u32 = 10_000;
    for _ in 0..N {
        sds.write(fd, b"go_b\n").unwrap();
    }
    let per_event = start.elapsed() / N;
    assert!(
        per_event < std::time::Duration::from_millis(1),
        "event transmission took {per_event:?}"
    );
}
