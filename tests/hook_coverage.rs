//! Hook-coverage tests: every mediated syscall dispatches exactly the LSM
//! hooks its Linux counterpart would, exactly once per module. This pins
//! the substrate's fidelity — overheads measured by the benchmarks are
//! meaningless if hooks silently double-fire or get skipped.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::error::KernelResult;
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectKind, ObjectRef, SecurityModule, SocketFamily};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;

/// Records every hook invocation.
#[derive(Default)]
struct Recorder {
    counts: Mutex<HashMap<&'static str, u64>>,
}

impl Recorder {
    fn bump(&self, hook: &'static str) {
        *self.counts.lock().entry(hook).or_insert(0) += 1;
    }

    fn take(&self) -> HashMap<&'static str, u64> {
        std::mem::take(&mut self.counts.lock())
    }
}

impl SecurityModule for Recorder {
    fn name(&self) -> &'static str {
        "recorder"
    }
    fn file_open(&self, _: &HookCtx, _: &ObjectRef<'_>, _: AccessMask) -> KernelResult<()> {
        self.bump("file_open");
        Ok(())
    }
    fn file_permission(&self, _: &HookCtx, _: &ObjectRef<'_>, _: AccessMask) -> KernelResult<()> {
        self.bump("file_permission");
        Ok(())
    }
    fn file_ioctl(&self, _: &HookCtx, _: &ObjectRef<'_>, _: u32) -> KernelResult<()> {
        self.bump("file_ioctl");
        Ok(())
    }
    fn file_mmap(&self, _: &HookCtx, _: &ObjectRef<'_>, _: AccessMask) -> KernelResult<()> {
        self.bump("file_mmap");
        Ok(())
    }
    fn inode_create(&self, _: &HookCtx, _: &KPath, _: &str, _: ObjectKind) -> KernelResult<()> {
        self.bump("inode_create");
        Ok(())
    }
    fn inode_unlink(&self, _: &HookCtx, _: &ObjectRef<'_>) -> KernelResult<()> {
        self.bump("inode_unlink");
        Ok(())
    }
    fn inode_rename(&self, _: &HookCtx, _: &ObjectRef<'_>, _: &KPath) -> KernelResult<()> {
        self.bump("inode_rename");
        Ok(())
    }
    fn inode_getattr(&self, _: &HookCtx, _: &ObjectRef<'_>) -> KernelResult<()> {
        self.bump("inode_getattr");
        Ok(())
    }
    fn bprm_check(&self, _: &HookCtx, _: &KPath) -> KernelResult<()> {
        self.bump("bprm_check");
        Ok(())
    }
    fn bprm_committed(&self, _: &HookCtx, _: &KPath) {
        self.bump("bprm_committed");
    }
    fn task_alloc(&self, _: &HookCtx, _: Pid) -> KernelResult<()> {
        self.bump("task_alloc");
        Ok(())
    }
    fn task_free(&self, _: Pid) {
        self.bump("task_free");
    }
    fn capable(&self, _: &HookCtx, _: Capability) -> KernelResult<()> {
        self.bump("capable");
        Ok(())
    }
    fn socket_create(&self, _: &HookCtx, _: SocketFamily) -> KernelResult<()> {
        self.bump("socket_create");
        Ok(())
    }
    fn socket_connect(&self, _: &HookCtx, _: SocketFamily, _: &str) -> KernelResult<()> {
        self.bump("socket_connect");
        Ok(())
    }
}

fn boot() -> (Arc<Kernel>, Arc<Recorder>) {
    let recorder = Arc::new(Recorder::default());
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&recorder) as Arc<dyn SecurityModule>)
        .boot();
    (kernel, recorder)
}

#[test]
fn open_existing_fires_file_open_once() {
    let (kernel, rec) = boot();
    let p = kernel.spawn(Credentials::root());
    p.write_file("/tmp/f", b"x").unwrap();
    rec.take();
    let fd = p.open("/tmp/f", OpenFlags::read_only()).unwrap();
    let counts = rec.take();
    assert_eq!(counts.get("file_open"), Some(&1));
    assert_eq!(counts.get("inode_create"), None, "no create on plain open");
    assert_eq!(counts.get("file_permission"), None, "open is not a read");
    p.close(fd).unwrap();
    assert!(rec.take().is_empty(), "close dispatches no hooks");
}

#[test]
fn creating_open_fires_create_then_open() {
    let (kernel, rec) = boot();
    let p = kernel.spawn(Credentials::root());
    rec.take();
    p.open("/tmp/new", OpenFlags::create_new()).unwrap();
    let counts = rec.take();
    assert_eq!(counts.get("inode_create"), Some(&1));
    assert_eq!(counts.get("file_open"), Some(&1));
}

#[test]
fn each_read_and_write_fires_file_permission() {
    let (kernel, rec) = boot();
    let p = kernel.spawn(Credentials::root());
    p.write_file("/tmp/f", b"abc").unwrap();
    let fd = p.open("/tmp/f", OpenFlags::read_write()).unwrap();
    rec.take();
    let mut buf = [0u8; 1];
    for _ in 0..3 {
        p.read(fd, &mut buf).unwrap();
    }
    p.write(fd, b"z").unwrap();
    let counts = rec.take();
    assert_eq!(counts.get("file_permission"), Some(&4), "3 reads + 1 write");
}

#[test]
fn ioctl_mmap_stat_unlink_rename_fire_their_hooks() {
    let (kernel, rec) = boot();
    let p = kernel.spawn(Credentials::root());
    p.write_file("/tmp/f", b"abc").unwrap();
    let fd = p.open("/tmp/f", OpenFlags::read_only()).unwrap();
    rec.take();

    let _ = p.ioctl(fd, 1, 2); // ENOTTY on a regular file, but mediated first
    assert_eq!(rec.take().get("file_ioctl"), Some(&1));

    p.mmap(fd, 0, 3).unwrap();
    assert_eq!(rec.take().get("file_mmap"), Some(&1));

    p.stat("/tmp/f").unwrap();
    assert_eq!(rec.take().get("inode_getattr"), Some(&1));

    p.fstat(fd).unwrap();
    assert_eq!(rec.take().get("inode_getattr"), Some(&1));

    p.rename("/tmp/f", "/tmp/g").unwrap();
    assert_eq!(rec.take().get("inode_rename"), Some(&1));

    p.unlink("/tmp/g").unwrap();
    assert_eq!(rec.take().get("inode_unlink"), Some(&1));
}

#[test]
fn fork_exec_exit_lifecycle_hooks() {
    let (kernel, rec) = boot();
    kernel
        .vfs()
        .create_file(
            &KPath::new("/usr/bin/true").unwrap(),
            sack_kernel::Mode::EXEC,
            sack_kernel::Uid::ROOT,
            sack_kernel::Gid(0),
        )
        .unwrap();
    let p = kernel.spawn(Credentials::root());
    rec.take();

    let child = p.fork().unwrap();
    assert_eq!(rec.take().get("task_alloc"), Some(&1));

    child.exec("/usr/bin/true").unwrap();
    let counts = rec.take();
    assert_eq!(counts.get("bprm_check"), Some(&1));
    assert_eq!(counts.get("bprm_committed"), Some(&1));

    child.exit();
    assert_eq!(rec.take().get("task_free"), Some(&1));
}

#[test]
fn socket_lifecycle_hooks() {
    let (kernel, rec) = boot();
    let server = kernel.spawn(Credentials::root());
    let client = kernel.spawn(Credentials::root());
    rec.take();
    let listener = server.listen(SocketFamily::Unix, "/run/x").unwrap();
    assert_eq!(rec.take().get("socket_create"), Some(&1));
    let cfd = client.connect(SocketFamily::Unix, "/run/x").unwrap();
    let counts = rec.take();
    assert_eq!(counts.get("socket_create"), Some(&1));
    assert_eq!(counts.get("socket_connect"), Some(&1));
    let sfd = server.accept(&listener).unwrap();
    // Data transfer is mediated as file_permission on sockets.
    client.write(cfd, b"x").unwrap();
    let mut buf = [0u8; 1];
    server.read(sfd, &mut buf).unwrap();
    let counts = rec.take();
    assert_eq!(counts.get("file_permission"), Some(&2));
}

#[test]
fn capability_checks_are_mediated() {
    let (kernel, rec) = boot();
    let p = kernel.spawn(Credentials::root());
    rec.take();
    let task = kernel.tasks().get(p.pid()).unwrap();
    kernel
        .capable(&task.hook_ctx(), Capability::MacAdmin)
        .unwrap();
    assert_eq!(rec.take().get("capable"), Some(&1));
}

#[test]
fn null_syscall_dispatches_nothing() {
    let (kernel, rec) = boot();
    let p = kernel.spawn(Credentials::root());
    rec.take();
    for _ in 0..100 {
        p.null_syscall();
    }
    assert!(
        rec.take().is_empty(),
        "getpid has no LSM hooks, as on Linux"
    );
}

#[test]
fn symlink_resolution_mediates_the_target_path_once() {
    let (kernel, rec) = boot();
    let p = kernel.spawn(Credentials::root());
    p.write_file("/tmp/real", b"x").unwrap();
    p.symlink("/tmp/real", "/tmp/link").unwrap();
    rec.take();
    p.open("/tmp/link", OpenFlags::read_only()).unwrap();
    let counts = rec.take();
    assert_eq!(
        counts.get("file_open"),
        Some(&1),
        "one open hook, on the canonical path"
    );
}
