//! Differential properties of the profile-compilation pipeline:
//! **lazy == eager == serial** (DESIGN.md §12).
//!
//! Random profile corpora and the shipped vehicle bundle are loaded three
//! ways — serial-eager (1 worker), parallel-eager (worker pool), and lazy
//! (uncompiled stubs, first-touch compiled in randomized order) — and
//! must be indistinguishable from the hook side:
//!
//! * byte-identical verdicts on random path probes, DFA vs bucketed index
//!   vs naive scan, across all three load modes;
//! * identical audit records for the same access sequence through the
//!   full `AppArmor` module;
//! * dedup pinned structurally: profiles with identical rule bodies share
//!   one `Arc<SharedDfa>` (`Arc::ptr_eq`), and the compile counter moves
//!   once per *distinct body*, not once per profile;
//! * lazy compiles exactly the touched set — the counter tracks the
//!   number of distinct bodies touched, and untouched profiles stay
//!   uncompiled stubs.

use std::collections::HashSet;
use std::sync::Arc;

use sack_suite::prop::{self, Rng};

use sack_apparmor::profile::FilePerms;
use sack_apparmor::{AppArmor, CompileMode, PolicyDb};
use sack_kernel::cred::Credentials;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;
use sack_vehicle::VEHICLE_APPARMOR_PROFILES;

/// Glob fragments for generated rule patterns: literals, wildcards,
/// classes, and brace alternations, all from a small byte vocabulary so
/// random probes actually collide with the rules.
#[allow(clippy::explicit_auto_deref)] // deref required for inference, as in properties.rs
fn pattern(rng: &mut Rng) -> String {
    let n = rng.range(1, 7);
    let mut out = String::from("/");
    for _ in 0..n {
        match *rng.pick_weighted(&[(3, 0u8), (2, 1), (2, 2), (1, 3), (1, 4), (1, 5), (1, 6)]) {
            0 => out.push_str(*rng.pick(&["a", "b", "dir", "door", "x1"])),
            1 => out.push('/'),
            2 => out.push('*'),
            3 => out.push_str("**"),
            4 => out.push('?'),
            5 => out.push_str(*rng.pick(&["[ab]", "[0-3]", "[!q]"])),
            _ => out.push_str(*rng.pick(&["{a,b}", "{dir,door}"])),
        }
    }
    out
}

fn probe_path(rng: &mut Rng) -> String {
    let n = rng.range(1, 6);
    let comps: Vec<&str> = (0..n)
        .map(|_| *rng.pick(&["a", "b", "ab", "dir", "door", "door0", "x1", "q"]))
        .collect();
    format!("/{}", comps.join("/"))
}

/// A random corpus: a pool of distinct rule bodies (each stamped with a
/// unique literal rule so no two bodies can coincide by chance) and a
/// profile list where several profiles deliberately share a body.
/// Returns the corpus text and each profile's body index.
fn corpus(rng: &mut Rng) -> (String, Vec<usize>) {
    let nbodies = rng.range(2, 5);
    let bodies: Vec<String> = (0..nbodies)
        .map(|b| {
            let mut body = format!("    /body{b}/tag r,\n");
            for _ in 0..rng.range(1, 4) {
                let deny = if rng.below(4) == 0 { "deny " } else { "" };
                let perms = *rng.pick(&["r", "w", "rw", "rwm", "rx"]);
                body.push_str(&format!("    {deny}{} {perms},\n", pattern(rng)));
            }
            body
        })
        .collect();
    let nprofiles = rng.range(4, 10);
    let mut text = String::new();
    let mut assignment = Vec::with_capacity(nprofiles);
    for i in 0..nprofiles {
        let b = rng.below(bodies.len());
        assignment.push(b);
        text.push_str(&format!("profile p{i} {{\n{}}}\n", bodies[b]));
    }
    (text, assignment)
}

fn three_dbs(text: &str) -> (PolicyDb, PolicyDb, PolicyDb) {
    let serial = PolicyDb::new();
    serial.set_compile_workers(1);
    let parallel = PolicyDb::new();
    parallel.set_compile_workers(4);
    let lazy = PolicyDb::new();
    lazy.set_compile_mode(CompileMode::Lazy);
    let n = serial.load_text(text).unwrap();
    assert_eq!(parallel.load_text(text).unwrap(), n);
    assert_eq!(lazy.load_text(text).unwrap(), n);
    (serial, parallel, lazy)
}

#[test]
fn random_corpora_load_identically_serial_parallel_lazy() {
    prop::for_cases(25, |rng| {
        let (text, assignment) = corpus(rng);
        let nprofiles = assignment.len();
        let distinct: HashSet<usize> = assignment.iter().copied().collect();
        let (serial, parallel, lazy) = three_dbs(&text);

        // Dedup compiles each distinct body exactly once; lazy compiles
        // nothing at load.
        assert_eq!(serial.compile_count(), distinct.len() as u64);
        assert_eq!(parallel.compile_count(), distinct.len() as u64);
        assert_eq!(lazy.compile_count(), 0);

        // Structural dedup pin in every mode: same body ⇔ same slot.
        for db in [&serial, &parallel, &lazy] {
            let handles: Vec<_> = (0..nprofiles)
                .map(|i| Arc::clone(db.get(&format!("p{i}")).unwrap().rules().dfa_handle()))
                .collect();
            for i in 0..nprofiles {
                for j in (i + 1)..nprofiles {
                    assert_eq!(
                        Arc::ptr_eq(&handles[i], &handles[j]),
                        assignment[i] == assignment[j],
                        "p{i} vs p{j}: slot sharing must mirror body equality"
                    );
                }
            }
        }

        // Serial and parallel build identical tables.
        for i in 0..nprofiles {
            let name = format!("p{i}");
            let s = serial.get(&name).unwrap();
            let p = parallel.get(&name).unwrap();
            assert_eq!(s.rules().dfa_stats(), p.rules().dfa_stats(), "{name}");
        }

        // First-touch a random subset of the lazy table in random order;
        // every touch must agree with both eager tables and with the
        // retained scan matcher, and the compile counter must track the
        // touched *body* set exactly.
        let mut order: Vec<usize> = (0..nprofiles).collect();
        rng.shuffle(&mut order);
        let touch_n = rng.range(1, nprofiles + 1);
        let probes: Vec<String> = (0..12).map(|_| probe_path(rng)).collect();
        let mut touched_bodies: HashSet<usize> = HashSet::new();
        for &i in &order[..touch_n] {
            let name = format!("p{i}");
            let s = serial.get(&name).unwrap();
            let p = parallel.get(&name).unwrap();
            let l = lazy.get(&name).unwrap();
            for probe in &probes {
                let want = s.rules().evaluate_dfa(probe);
                assert_eq!(want, p.rules().evaluate_dfa(probe), "{name} @ {probe}");
                assert_eq!(want, l.rules().evaluate(probe), "{name} @ {probe} (scan)");
                assert_eq!(
                    want,
                    l.rules().evaluate_dfa(probe),
                    "{name} @ {probe} (lazy)"
                );
            }
            touched_bodies.insert(assignment[i]);
            assert_eq!(
                lazy.compile_count(),
                touched_bodies.len() as u64,
                "lazy must compile exactly the touched body set"
            );
        }

        // Untouched bodies stay stubs.
        for &i in &order[touch_n..] {
            if !touched_bodies.contains(&assignment[i]) {
                let l = lazy.get(&format!("p{i}")).unwrap();
                assert!(
                    !l.rules().dfa_handle().is_compiled(),
                    "p{i}: never touched, must stay uncompiled"
                );
            }
        }
    });
}

fn hook_ctx(pid: u32, exe: &str) -> HookCtx {
    HookCtx::new(
        Pid(pid),
        Credentials::user(1000, 1000),
        Some(KPath::new(exe).unwrap()),
    )
}

fn open(module: &AppArmor, ctx: &HookCtx, path: &str, mask: AccessMask) -> bool {
    let path = KPath::new(path).unwrap();
    let obj = ObjectRef::regular(&path);
    module.file_open(ctx, &obj, mask).is_ok()
}

/// The shipped vehicle bundle driven through the full `AppArmor` module
/// in all three load modes: one confined task per profile, a shared
/// random access sequence, byte-identical verdicts *and* identical audit
/// records, and the lazy compile counter pinned to the touched set.
#[test]
fn vehicle_bundle_verdicts_and_audits_match_across_load_modes() {
    prop::for_cases(8, |rng| {
        let mk = |cfg: &dyn Fn(&PolicyDb)| {
            let db = Arc::new(PolicyDb::new());
            cfg(&db);
            db.load_text(VEHICLE_APPARMOR_PROFILES).unwrap();
            let module = AppArmor::new(Arc::clone(&db));
            (db, module)
        };
        let (serial_db, serial) = mk(&|db| db.set_compile_workers(1));
        let (_parallel_db, parallel) = mk(&|db| db.set_compile_workers(4));
        let (lazy_db, lazy) = mk(&|db| db.set_compile_mode(CompileMode::Lazy));
        assert_eq!(lazy_db.compile_count(), 0, "lazy load must not compile");

        let names = serial_db.profile_names();
        for module in [&serial, &parallel, &lazy] {
            for (i, name) in names.iter().enumerate() {
                module.set_profile(Pid(9000 + i as u32), name).unwrap();
            }
        }
        // Confining a task snapshots the profile but must not compile it.
        assert_eq!(lazy_db.compile_count(), 0, "set_profile must not compile");

        let targets = [
            "/usr/bin/media_app",
            "/usr/lib/libc.so",
            "/media/usb/song.mp3",
            "/dev/car/door0",
            "/dev/car/engine/rpm",
            "/tmp/cache/a",
            "/etc/passwd",
            "/var/secret",
        ];
        let mut touched: HashSet<usize> = HashSet::new();
        for _ in 0..40 {
            let task = rng.below(names.len());
            let ctx = hook_ctx(9000 + task as u32, &format!("/usr/bin/{}", names[task]));
            let path = if rng.bool() {
                (*rng.pick(&targets)).to_string()
            } else {
                probe_path(rng)
            };
            let mask = if rng.bool() {
                AccessMask::READ
            } else {
                AccessMask::WRITE
            };
            let want = open(&serial, &ctx, &path, mask);
            assert_eq!(
                want,
                open(&parallel, &ctx, &path, mask),
                "{path} (parallel)"
            );
            assert_eq!(want, open(&lazy, &ctx, &path, mask), "{path} (lazy)");
            touched.insert(task);
            // The bundle's three bodies are distinct, so the lazy counter
            // tracks exactly the set of profiles hooks have touched.
            assert_eq!(
                lazy_db.compile_count(),
                touched.len() as u64,
                "lazy must compile exactly the touched profiles"
            );
        }

        // The three modules saw identical traffic; their audit trails
        // must be identical records, not merely equal counts.
        let want = serial.take_audit_log();
        assert!(!want.is_empty(), "denied probes must produce audit records");
        assert_eq!(want, parallel.take_audit_log(), "parallel audit diverged");
        assert_eq!(want, lazy.take_audit_log(), "lazy audit diverged");
    });
}

#[test]
fn vehicle_bundle_probe_equivalence() {
    prop::for_cases(8, |rng| {
        let (serial, parallel, lazy) = three_dbs(VEHICLE_APPARMOR_PROFILES);
        let mut names = serial.profile_names();
        rng.shuffle(&mut names);
        let probes: Vec<String> = (0..16)
            .map(|_| {
                if rng.bool() {
                    probe_path(rng)
                } else {
                    (*rng.pick(&[
                        "/usr/bin/media_app",
                        "/usr/lib/libc.so",
                        "/dev/car/door0",
                        "/dev/car/engine/rpm",
                        "/tmp/cache/a",
                        "/etc/passwd",
                        "/var/secret",
                    ]))
                    .to_string()
                }
            })
            .collect();
        for name in &names {
            let s = serial.get(name).unwrap();
            let p = parallel.get(name).unwrap();
            let l = lazy.get(name).unwrap();
            for probe in &probes {
                let want = s.rules().evaluate_dfa(probe);
                assert_eq!(want, p.rules().evaluate_dfa(probe), "{name} @ {probe}");
                assert_eq!(want, l.rules().evaluate(probe), "{name} @ {probe} (scan)");
                assert_eq!(
                    want,
                    l.rules().evaluate_dfa(probe),
                    "{name} @ {probe} (lazy)"
                );
                assert_eq!(
                    want.permits(FilePerms::READ),
                    l.rules().evaluate(probe).permits(FilePerms::READ)
                );
            }
        }
        // The bundle's three bodies are distinct: all touched ⇒ all built.
        assert_eq!(lazy.compile_count(), serial.compile_count());
    });
}
