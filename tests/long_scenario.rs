//! A long end-to-end scenario: a full day of driving — commute, parking,
//! driver leaving and returning, a highway leg, a crash, rescue, recovery —
//! with system-wide invariants checked after every single frame.
//!
//! This is the "does the whole stack stay coherent over time" test the
//! paper's prototype implies but cannot show in a 6-page evaluation.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use sack_core::Sack;
use sack_kernel::kernel::KernelBuilder;
use sack_kernel::lsm::SecurityModule;
use sack_sds::sensors::SensorFrame;
use sack_sds::service::{standard_detectors, SdsService};
use sack_sds::traces;
use sack_vehicle::car::CarHardware;
use sack_vehicle::ivi::{standard_manifests, IviApp, IviSystem};
use sack_vehicle::policies::VEHICLE_SACK_POLICY;

struct World {
    kernel: Arc<sack_kernel::Kernel>,
    sack: Arc<Sack>,
    hw: CarHardware,
    apps: Vec<IviApp>,
}

fn build_world() -> World {
    let sack = Sack::independent(VEHICLE_SACK_POLICY).unwrap();
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).unwrap();
    let hw = CarHardware::install(&kernel, 4, 4).unwrap();
    hw.install_can(&kernel).unwrap();
    let mut ivi = IviSystem::new(Arc::clone(&kernel));
    let apps = standard_manifests()
        .into_iter()
        .map(|m| ivi.install_app(m).unwrap())
        .collect();
    World {
        kernel,
        sack,
        hw,
        apps,
    }
}

/// Invariants that must hold in *every* situation state.
fn check_invariants(world: &World) {
    let state = world.sack.current_state_name();
    let media = &world.apps[0];
    let rescue = &world.apps[2];

    // 1. The media app can never control doors, in any state (it has no
    //    user-space permission, and the kernel rules bind doors to the
    //    rescue executable).
    assert!(
        media.unlock_door(0).is_err(),
        "media unlocked a door in {state}"
    );

    // 2. Device reads are always possible (NORMAL in every state).
    assert!(
        media.process().read_to_vec("/dev/car/door0").is_ok(),
        "read denied in {state}"
    );

    // 3. Door control tracks the situation exactly.
    let rescue_can_open = rescue.unlock_door(3).is_ok();
    assert_eq!(
        rescue_can_open,
        state == "emergency",
        "door control wrong in {state}"
    );
    if rescue_can_open {
        // Re-lock so later invariant checks start from a known state.
        rescue
            .process()
            .write_file_door_lock()
            .expect("relock after check");
    }

    // 4. Volume control tracks the situation exactly (SET_VOLUME_FREE is
    //    granted only while parked with driver).
    let can_set_volume = media.set_volume(31).is_ok();
    assert_eq!(
        can_set_volume,
        state == "parking_with_driver",
        "volume control wrong in {state}"
    );
}

/// Tiny extension trait so the invariant checker can re-lock door 3
/// through the kernel interface (ioctl LOCK).
trait Relock {
    fn write_file_door_lock(&self) -> Result<(), sack_kernel::KernelError>;
}

impl Relock for sack_kernel::UserContext {
    fn write_file_door_lock(&self) -> Result<(), sack_kernel::KernelError> {
        let fd = self.open("/dev/car/door3", sack_kernel::file::OpenFlags::write_only())?;
        self.write(fd, b"lock")?;
        self.close(fd)?;
        Ok(())
    }
}

#[test]
fn full_day_scenario_holds_invariants_at_every_frame() {
    let world = build_world();
    let mut sds = SdsService::spawn(&world.kernel, standard_detectors()).unwrap();

    // Compose the day from the trace generators, re-based in time.
    let mut day: Vec<SensorFrame> = Vec::new();
    let mut offset = Duration::ZERO;
    let append = |day: &mut Vec<SensorFrame>, offset: &mut Duration, trace: Vec<SensorFrame>| {
        let base = *offset;
        let mut last = Duration::ZERO;
        for mut frame in trace {
            last = frame.t + Duration::from_secs(1);
            frame.t += base;
            day.push(frame);
        }
        *offset = base + last;
    };
    // city_drive ends with the driver leaving (parking_without_driver);
    // park_and_return brings them back (parking_with_driver), so the
    // highway leg starts from a state that has the crash transition.
    append(&mut day, &mut offset, traces::city_drive(10));
    append(&mut day, &mut offset, traces::park_and_return(30));
    append(&mut day, &mut offset, traces::highway_crash(12));

    let mut states_seen = std::collections::BTreeSet::new();
    let mut transitions = 0u64;
    for frame in &day {
        if frame.t > world.kernel.clock().now() {
            world.kernel.clock().set(frame.t);
        }
        let (sent, _) = sds.process_frame(frame);
        transitions += sent.len() as u64;
        states_seen.insert(world.sack.current_state_name());
        check_invariants(&world);
    }

    // The day visited the whole Fig. 2 machine.
    for state in [
        "driving",
        "parking_with_driver",
        "parking_without_driver",
        "emergency",
    ] {
        assert!(
            states_seen.contains(state),
            "never reached {state}: {states_seen:?}"
        );
    }
    assert!(
        transitions >= 8,
        "expected a rich day, got {transitions} events"
    );
    assert_eq!(world.sack.current_state_name(), "emergency");

    // Rescue completes; the system returns to normal and the permission
    // disappears with it.
    for i in 0..4 {
        world.apps[2].unlock_door(i).unwrap();
    }
    assert!(!world.hw.all_doors_locked());
    sds.send_event("emergency_resolved").unwrap();
    check_invariants(&world);

    // Bookkeeping stayed consistent all day.
    let active = world.sack.active();
    assert_eq!(active.ssm.history().len() as u64, active.ssm.taken_count());
    assert!(world.sack.stats().denials.load(Ordering::Relaxed) > 0);
    assert_eq!(
        world.sack.stats().denials.load(Ordering::Relaxed),
        world.sack.audit().total(),
        "every denial audited"
    );
    sds.shutdown();
}

#[test]
fn repeated_crash_recover_cycles_do_not_leak() {
    let world = build_world();
    let sds = SdsService::spawn(&world.kernel, standard_detectors()).unwrap();
    let rescue = &world.apps[2];
    for cycle in 0..200 {
        sds.send_event("crash").unwrap();
        assert_eq!(
            world.sack.current_state_name(),
            "emergency",
            "cycle {cycle}"
        );
        rescue.unlock_door(0).unwrap();
        sds.send_event("emergency_resolved").unwrap();
        assert!(rescue.unlock_door(0).is_err(), "cycle {cycle}");
    }
    let active = world.sack.active();
    assert_eq!(active.ssm.taken_count(), 400);
    // Process table is stable (apps + sds only; no leaked tasks).
    assert!(world.kernel.tasks().live_count() <= 8);
    sds.shutdown();
}
