//! Minimal property-testing harness.
//!
//! The build environment has no registry access, so instead of `proptest`
//! the suite's property tests run on this hand-rolled harness: a
//! deterministic xorshift PRNG, a few combinators for generating structured
//! values, and a [`for_cases`] runner that replays a fixed seed sequence so
//! failures are reproducible (the failing case index and seed are part of
//! the panic message).

/// Deterministic xorshift64* PRNG — no external randomness, so every run of
/// a property test sees exactly the same case sequence.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Picks one element of a slice.
    pub fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.below(options.len())]
    }

    /// In-place Fisher–Yates shuffle driven by this generator — for
    /// properties that must hold regardless of operation order.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            slice.swap(i, self.below(i + 1));
        }
    }

    /// Picks an element with integer weights (like `prop_oneof!` weights).
    pub fn pick_weighted<'a, T>(&mut self, options: &'a [(u32, T)]) -> &'a T {
        let total: u32 = options.iter().map(|(w, _)| *w).sum();
        let mut roll = self.below(total as usize) as u32;
        for (w, v) in options {
            if roll < *w {
                return v;
            }
            roll -= w;
        }
        &options[options.len() - 1].1
    }

    /// A string built by sampling `parts` between `min` and `max` times.
    pub fn concat_parts(&mut self, parts: &[(u32, &str)], min: usize, max: usize) -> String {
        let n = self.range(min, max + 1);
        (0..n).map(|_| *self.pick_weighted(parts)).collect()
    }

    /// An arbitrary printable-ish string of length `< max_len`, including
    /// unicode, braces, and policy metacharacters — fuzz fodder for parsers.
    pub fn soup(&mut self, max_len: usize) -> String {
        let n = self.below(max_len + 1);
        (0..n)
            .map(|_| {
                let c = match self.below(8) {
                    0 => char::from_u32(self.range(0x20, 0x7f) as u32).unwrap(),
                    1 => *self.pick(&['{', '}', ';', ':', ',', '/', '*', '?', '[', ']']),
                    2 => *self.pick(&['\n', '\t', ' ']),
                    3 => char::from_u32(self.range(0xa1, 0x2ff) as u32).unwrap_or('¿'),
                    _ => {
                        char::from_u32(self.range(b'a' as usize, b'z' as usize + 1) as u32).unwrap()
                    }
                };
                c
            })
            .collect()
    }
}

/// Number of cases each property runs (proptest's default is 256).
pub const DEFAULT_CASES: usize = 256;

/// Runs `body` for `cases` generated cases. Each case gets its own
/// deterministically-seeded [`Rng`]; a panic inside `body` is annotated with
/// the case index and seed so it can be replayed in isolation.
pub fn for_cases(cases: usize, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        // Seeds are fixed per (case index); splitmix the index so seeds
        // differ in many bits.
        let mut z = (case as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let seed = z ^ (z >> 31);
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".to_string());
            panic!("property failed at case {case} (seed {seed:#x}): {msg}");
        }
    }
}

/// Runs [`for_cases`] with [`DEFAULT_CASES`].
pub fn check(body: impl FnMut(&mut Rng)) {
    for_cases(DEFAULT_CASES, body);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
            let x = rng.range(5, 9);
            assert!((5..9).contains(&x));
        }
    }

    #[test]
    fn pick_weighted_only_returns_positive_weight_options() {
        let mut rng = Rng::new(3);
        for _ in 0..500 {
            let v = *rng.pick_weighted(&[(3, "a"), (0, "never"), (1, "b")]);
            assert_ne!(v, "never");
        }
    }

    #[test]
    fn failing_property_reports_case_and_seed() {
        let err = std::panic::catch_unwind(|| {
            for_cases(10, |rng| {
                assert!(rng.below(100) < 101, "impossible");
                panic!("boom");
            })
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("case 0"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
    }

    #[test]
    fn shuffle_preserves_the_multiset() {
        let mut rng = Rng::new(5);
        let mut v: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // With 20 elements the identity permutation is vanishingly
        // unlikely; a deterministic seed makes this assertion stable.
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn soup_respects_length_budget() {
        let mut rng = Rng::new(11);
        for _ in 0..100 {
            assert!(rng.soup(40).chars().count() <= 40);
        }
    }
}
