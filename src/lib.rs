//! # sack-suite — umbrella crate for the SACK reproduction
//!
//! Re-exports every workspace crate so examples and integration tests can
//! reach the full system through one dependency. See `README.md` for the
//! tour, `DESIGN.md` for the architecture and experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub mod prop;

pub use sack_analyze as analyze;
pub use sack_apparmor as apparmor;
pub use sack_core as core;
pub use sack_kernel as kernel;
pub use sack_lmbench as lmbench;
pub use sack_sds as sds;
pub use sack_te as te;
pub use sack_vehicle as vehicle;
