//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! this minimal implementation of the `parking_lot` API surface the
//! repository actually uses: [`Mutex`], [`RwLock`] and [`Condvar`] with
//! non-poisoning guards. Lock poisoning is deliberately swallowed
//! (`parking_lot` has no poisoning either): a panicked critical section
//! propagates its panic in the panicking thread, and other threads simply
//! keep using the protected data.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's wait consumes the guard by value; parking_lot's takes `&mut`).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable usable with [`MutexGuard`], `parking_lot` style:
/// `wait` takes the guard by `&mut` reference.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and waits for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let taken = guard.inner.take().expect("guard taken during wait");
        let reacquired = self
            .inner
            .wait(taken)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the data stays usable.
        assert_eq!(*m.lock(), 0);
    }
}
