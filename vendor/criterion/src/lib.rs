//! Offline shim for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal benchmark harness with criterion's surface API: `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `criterion_group!` and
//! `criterion_main!`. Timing is wall-clock (`Instant`): each sample runs the
//! closure in a batch sized to fill `measurement_time / sample_size`, and
//! the reported figure is the median ns/iteration across samples.
//!
//! Extras for CI tooling:
//!
//! * `--quick` (or `--test`) on the command line collapses warm-up and
//!   sampling to a fast smoke run;
//! * a substring argument filters which benchmarks run (like criterion);
//! * if `BENCH_JSON_OUT` is set in the environment, a JSON array of
//!   `{"name": ..., "median_ns": ...}` records is written there when the
//!   binary exits (used by `scripts/bench_gate.sh`).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, kept for the optional JSON dump.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function` style).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Snapshot of every measurement recorded so far in this process.
pub fn collected_results() -> Vec<BenchRecord> {
    RESULTS.lock().unwrap().clone()
}

/// Writes the collected results to `$BENCH_JSON_OUT` (if set). Called by the
/// `criterion_main!`-generated `main` after all groups have run.
pub fn finalize() {
    let Ok(path) = std::env::var("BENCH_JSON_OUT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"median_ns\": {:.1}}}{comma}\n",
            r.name.replace('"', "'"),
            r.median_ns
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

fn cli() -> (bool, Option<String>) {
    let mut quick = false;
    let mut filter = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" | "--test" => quick = true,
            "--bench" => {}
            s if s.starts_with("--") => {} // ignore unknown criterion flags
            s => filter = Some(s.to_string()),
        }
    }
    (quick, filter)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `self.iters` times, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark configuration and entry point (criterion's main type).
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let (quick, filter) = cli();
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            samples: 20,
            quick,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.samples = n.max(2);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: None,
        }
    }

    /// Measures a standalone benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        let name = name.into();
        self.run_one(&name, self.samples, f);
        self
    }

    fn skipped(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, samples: usize, mut f: F) {
        if self.skipped(name) {
            return;
        }
        let (warm_up, measurement, samples) = if self.quick {
            (Duration::from_millis(20), Duration::from_millis(60), 5)
        } else {
            (self.warm_up, self.measurement, samples)
        };

        // Warm-up: also calibrates iterations/sample so that each sample
        // lasts roughly measurement/samples.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_elapsed = Duration::ZERO;
        while warm_start.elapsed() < warm_up {
            f(&mut bencher);
            warm_iters += bencher.iters;
            warm_elapsed += bencher.elapsed;
            if bencher.elapsed < Duration::from_micros(50) {
                bencher.iters = (bencher.iters * 2).min(1 << 30);
            }
        }
        let per_iter_ns = if warm_iters == 0 {
            1.0
        } else {
            (warm_elapsed.as_nanos() as f64 / warm_iters as f64).max(0.1)
        };
        let sample_budget_ns = measurement.as_nanos() as f64 / samples as f64;
        let iters = ((sample_budget_ns / per_iter_ns) as u64).clamp(1, 1 << 32);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.iters = iters;
            f(&mut bencher);
            per_iter.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];

        println!("{name:<60} {median:>12.1} ns/iter  ({samples} samples x {iters} iters)");
        RESULTS.lock().unwrap().push(BenchRecord {
            name: name.to_string(),
            median_ns: median,
        });
    }
}

/// A group of related benchmarks sharing an id prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(2));
        self
    }

    /// Measures one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        let samples = self.samples.unwrap_or(self.criterion.samples);
        self.criterion.run_one(&name, samples, |b| f(b, input));
        self
    }

    /// Measures one benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{id}", self.name);
        let samples = self.samples.unwrap_or(self.criterion.samples);
        self.criterion.run_one(&name, samples, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group, criterion style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3);
        c.quick = true;
        c.filter = None;
        c.bench_function("shim/smoke", |b| b.iter(|| black_box(2 + 2)));
        let results = collected_results();
        assert!(results.iter().any(|r| r.name == "shim/smoke"));
        let r = results.iter().find(|r| r.name == "shim/smoke").unwrap();
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn group_ids_are_prefixed() {
        let mut c = Criterion {
            quick: true,
            filter: None,
            ..Default::default()
        };
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("p1"), &7u32, |b, v| {
            b.iter(|| black_box(*v * 2))
        });
        group.finish();
        assert!(collected_results().iter().any(|r| r.name == "grp/p1"));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            quick: true,
            filter: Some("only-this".to_string()),
            ..Default::default()
        };
        c.bench_function("something-else", |b| b.iter(|| black_box(1)));
        assert!(!collected_results()
            .iter()
            .any(|r| r.name == "something-else"));
    }
}
