//! Car hardware installation: device nodes under `/dev/car/`.

use std::fmt;
use std::sync::Arc;

use sack_kernel::error::KernelResult;
use sack_kernel::kernel::Kernel;
use sack_kernel::path::KPath;
use sack_kernel::types::{DeviceId, Mode};
use sack_kernel::{Gid, Uid};

use crate::can::{frame_id, CanBus, CanDevice, CanFrame, CanNode};
use crate::devices::{
    audio_ioctl, door_ioctl, window_ioctl, AudioDevice, DoorDevice, WindowDevice,
};
use sack_kernel::device::CharDevice;

/// Char-device major number for car hardware.
pub const CAR_MAJOR: u32 = 240;

/// Minor number of `/dev/can0` (clear of the door/window/audio range).
pub const CAN_MINOR: u32 = 100;

/// Handles to the installed car hardware, for state assertions.
pub struct CarHardware {
    doors: Vec<Arc<DoorDevice>>,
    windows: Vec<Arc<WindowDevice>>,
    audio: Arc<AudioDevice>,
}

impl CarHardware {
    /// Creates the car's device nodes on `kernel`:
    /// `/dev/car/door0..N`, `/dev/car/window0..M`, `/dev/car/audio`.
    ///
    /// Nodes are world-accessible (mode `0666`): per the paper's threat
    /// model the gate on vehicle hardware is MAC (SACK/AppArmor), not DAC.
    ///
    /// # Errors
    ///
    /// Device registration or VFS errors (e.g. installed twice).
    pub fn install(
        kernel: &Arc<Kernel>,
        doors: usize,
        windows: usize,
    ) -> KernelResult<CarHardware> {
        let vfs = kernel.vfs();
        vfs.mkdir_all(&KPath::new("/dev/car")?)?;
        let mut hw = CarHardware {
            doors: Vec::with_capacity(doors),
            windows: Vec::with_capacity(windows),
            audio: AudioDevice::new(),
        };
        let mut minor = 0u32;
        let mut install_node =
            |name: &str, driver: Arc<dyn sack_kernel::device::CharDevice>| -> KernelResult<()> {
                let dev = DeviceId::new(CAR_MAJOR, minor);
                minor += 1;
                vfs.devices().register(dev, driver)?;
                vfs.mknod(
                    &KPath::new(&format!("/dev/car/{name}"))?,
                    dev,
                    Mode(0o666),
                    Uid::ROOT,
                    Gid(0),
                )?;
                Ok(())
            };
        for i in 0..doors {
            let door = DoorDevice::new(format!("door{i}"));
            install_node(&format!("door{i}"), Arc::clone(&door) as _)?;
            hw.doors.push(door);
        }
        for i in 0..windows {
            let window = WindowDevice::new(format!("window{i}"));
            install_node(&format!("window{i}"), Arc::clone(&window) as _)?;
            hw.windows.push(window);
        }
        install_node("audio", Arc::clone(&hw.audio) as _)?;
        Ok(hw)
    }

    /// The door actuators.
    pub fn doors(&self) -> &[Arc<DoorDevice>] {
        &self.doors
    }

    /// Additionally installs a CAN bus: body ECUs bridging
    /// [`frame_id::DOOR_CONTROL`]/[`frame_id::WINDOW_CONTROL`]/
    /// [`frame_id::AUDIO_VOLUME`] frames to the same actuators, exposed to
    /// user space as `/dev/can0` (the KOFFEE injection vector).
    ///
    /// # Errors
    ///
    /// Device registration or VFS errors.
    pub fn install_can(&self, kernel: &Arc<Kernel>) -> KernelResult<Arc<CanBus>> {
        let bus = CanBus::new();
        bus.attach(Arc::new(BodyEcu {
            doors: self.doors.clone(),
            windows: self.windows.clone(),
            audio: Arc::clone(&self.audio),
        }) as Arc<dyn CanNode>);
        let dev_id = DeviceId::new(CAR_MAJOR, CAN_MINOR);
        kernel.vfs().devices().register(
            dev_id,
            CanDevice::new(Arc::clone(&bus)) as Arc<dyn CharDevice>,
        )?;
        kernel.vfs().mknod(
            &KPath::new("/dev/can0")?,
            dev_id,
            Mode(0o666),
            Uid::ROOT,
            Gid(0),
        )?;
        Ok(bus)
    }

    /// The window actuators.
    pub fn windows(&self) -> &[Arc<WindowDevice>] {
        &self.windows
    }

    /// The audio device.
    pub fn audio(&self) -> &Arc<AudioDevice> {
        &self.audio
    }

    /// True if every door is locked.
    pub fn all_doors_locked(&self) -> bool {
        self.doors.iter().all(|d| d.is_locked())
    }
}

/// The body-control ECU: translates CAN control frames into actuator
/// operations (what the micom daemon drives in the real KOFFEE testbed).
struct BodyEcu {
    doors: Vec<Arc<DoorDevice>>,
    windows: Vec<Arc<WindowDevice>>,
    audio: Arc<AudioDevice>,
}

impl CanNode for BodyEcu {
    fn node_name(&self) -> &str {
        "body-ecu"
    }

    fn subscribed_ids(&self) -> Vec<u32> {
        vec![
            frame_id::DOOR_CONTROL,
            frame_id::WINDOW_CONTROL,
            frame_id::AUDIO_VOLUME,
        ]
    }

    fn receive(&self, frame: &CanFrame) {
        let payload = frame.payload();
        match frame.id {
            frame_id::DOOR_CONTROL => {
                if let [action, index, ..] = payload {
                    if let Some(door) = self.doors.get(usize::from(*index)) {
                        let cmd = if *action == 1 {
                            door_ioctl::UNLOCK
                        } else {
                            door_ioctl::LOCK
                        };
                        let _ = door.ioctl(cmd, 0);
                    }
                }
            }
            frame_id::WINDOW_CONTROL => {
                if let [percent, index, ..] = payload {
                    if let Some(window) = self.windows.get(usize::from(*index)) {
                        let _ = window.ioctl(window_ioctl::SET_POSITION, u64::from(*percent));
                    }
                }
            }
            frame_id::AUDIO_VOLUME => {
                if let [volume, ..] = payload {
                    let _ = self
                        .audio
                        .ioctl(audio_ioctl::SET_VOLUME, u64::from(*volume));
                }
            }
            _ => {}
        }
    }
}

impl fmt::Debug for CarHardware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CarHardware")
            .field("doors", &self.doors.len())
            .field("windows", &self.windows.len())
            .field("volume", &self.audio.volume())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::door_ioctl;
    use sack_kernel::cred::Credentials;
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::Kernel;

    #[test]
    fn install_creates_nodes_and_wires_drivers() {
        let kernel = Kernel::boot_default();
        let hw = CarHardware::install(&kernel, 2, 2).unwrap();
        let p = kernel.spawn(Credentials::user(1000, 1000));
        for node in [
            "/dev/car/door0",
            "/dev/car/door1",
            "/dev/car/window0",
            "/dev/car/audio",
        ] {
            assert!(p.stat(node).is_ok(), "{node} missing");
        }
        // ioctl through the syscall layer reaches the actuator.
        let fd = p.open("/dev/car/door1", OpenFlags::read_write()).unwrap();
        p.ioctl(fd, door_ioctl::UNLOCK, 0).unwrap();
        assert!(!hw.doors()[1].is_locked());
        assert!(hw.doors()[0].is_locked());
        assert!(!hw.all_doors_locked());
    }

    #[test]
    fn can_frames_drive_actuators_through_dev_can0() {
        let kernel = Kernel::boot_default();
        let hw = CarHardware::install(&kernel, 2, 1).unwrap();
        hw.install_can(&kernel).unwrap();
        let p = kernel.spawn(Credentials::user(1000, 1000));
        let fd = p.open("/dev/can0", OpenFlags::read_write()).unwrap();
        let mut wire = Vec::new();
        wire.extend_from_slice(
            &crate::can::CanFrame::new(frame_id::DOOR_CONTROL, &[1, 1]).to_wire(),
        );
        wire.extend_from_slice(
            &crate::can::CanFrame::new(frame_id::WINDOW_CONTROL, &[80, 0]).to_wire(),
        );
        wire.extend_from_slice(&crate::can::CanFrame::new(frame_id::AUDIO_VOLUME, &[90]).to_wire());
        p.write(fd, &wire).unwrap();
        assert!(!hw.doors()[1].is_locked());
        assert!(hw.doors()[0].is_locked());
        assert_eq!(hw.windows()[0].position(), 80);
        assert_eq!(hw.audio().volume(), 90);
        // Sniffing the bus back through read(2).
        let mut buf = [0u8; crate::can::FRAME_WIRE_SIZE];
        assert_eq!(p.read(fd, &mut buf).unwrap(), buf.len());
        assert_eq!(
            crate::can::CanFrame::from_wire(&buf).unwrap().id,
            frame_id::DOOR_CONTROL
        );
    }

    #[test]
    fn unknown_frame_ids_are_ignored() {
        let kernel = Kernel::boot_default();
        let hw = CarHardware::install(&kernel, 1, 1).unwrap();
        let bus = hw.install_can(&kernel).unwrap();
        bus.send(crate::can::CanFrame::new(0x7FF, &[1, 0]));
        assert!(hw.doors()[0].is_locked());
        assert_eq!(hw.windows()[0].position(), 0);
    }

    #[test]
    fn double_install_fails_cleanly() {
        let kernel = Kernel::boot_default();
        CarHardware::install(&kernel, 1, 1).unwrap();
        assert!(CarHardware::install(&kernel, 1, 1).is_err());
    }

    #[test]
    fn write_interface_reaches_door() {
        let kernel = Kernel::boot_default();
        let hw = CarHardware::install(&kernel, 1, 0).unwrap();
        let p = kernel.spawn(Credentials::user(1000, 1000));
        let fd = p.open("/dev/car/door0", OpenFlags::write_only()).unwrap();
        p.write(fd, b"unlock").unwrap();
        assert!(!hw.doors()[0].is_locked());
    }
}
