//! Canonical vehicle policies — the running example of the paper (Fig. 1
//! and the §IV-C case study), shared by examples, tests and benchmarks.

/// The Fig. 2 situation state machine plus the Fig. 1 permission mapping:
/// door/window control only in emergencies, volume-to-max only when not
/// driving, reads always allowed.
pub const VEHICLE_SACK_POLICY: &str = r#"
# SACK vehicle policy (paper Fig. 1 / Fig. 2).
states {
    driving = 0;
    parking_with_driver = 1;
    parking_without_driver = 2;
    emergency = 3;
}
events {
    crash;
    park;
    start_driving;
    driver_left;
    driver_entered;
    emergency_resolved;
}
transitions {
    driving -crash-> emergency;
    driving -park-> parking_with_driver;
    parking_with_driver -start_driving-> driving;
    parking_with_driver -driver_left-> parking_without_driver;
    parking_without_driver -driver_entered-> parking_with_driver;
    parking_with_driver -crash-> emergency;
    emergency -emergency_resolved-> parking_with_driver;
}
initial parking_with_driver;
permissions {
    NORMAL;
    CONTROL_CAR_DOORS;
    SET_VOLUME_FREE;
}
state_per {
    driving: NORMAL;
    parking_with_driver: NORMAL, SET_VOLUME_FREE;
    parking_without_driver: NORMAL;
    emergency: NORMAL, CONTROL_CAR_DOORS;
}
per_rules {
    # Reads of vehicle state are always fine; volume changes are bounded
    # by the audio driver, but *any* write to the audio device is treated
    # as situation-sensitive while driving (CVE-2023-6073).
    NORMAL:
        allow subject=* /dev/car/** r;
        allow subject=* /dev/can0 r;
    CONTROL_CAR_DOORS:
        allow subject=/usr/bin/rescue* /dev/car/door* wi;
        allow subject=/usr/bin/rescue* /dev/car/window* wi;
        allow subject=/usr/bin/rescue* /dev/can0 wi;
    SET_VOLUME_FREE: allow subject=* /dev/car/audio wi;
}
"#;

/// The same mapping for SACK-enhanced AppArmor: rules target profiles
/// rather than executables.
pub const VEHICLE_ENHANCED_POLICY: &str = r#"
states {
    driving = 0;
    parking_with_driver = 1;
    parking_without_driver = 2;
    emergency = 3;
}
events {
    crash;
    park;
    start_driving;
    driver_left;
    driver_entered;
    emergency_resolved;
}
transitions {
    driving -crash-> emergency;
    driving -park-> parking_with_driver;
    parking_with_driver -start_driving-> driving;
    parking_with_driver -driver_left-> parking_without_driver;
    parking_without_driver -driver_entered-> parking_with_driver;
    parking_with_driver -crash-> emergency;
    emergency -emergency_resolved-> parking_with_driver;
}
initial parking_with_driver;
permissions {
    CONTROL_CAR_DOORS;
    SET_VOLUME_FREE;
}
state_per {
    parking_with_driver: SET_VOLUME_FREE;
    emergency: CONTROL_CAR_DOORS;
}
per_rules {
    CONTROL_CAR_DOORS:
        allow subject=profile:rescue_daemon /dev/car/door* wi;
        allow subject=profile:rescue_daemon /dev/car/window* wi;
    SET_VOLUME_FREE: allow subject=profile:media_app /dev/car/audio wi;
}
"#;

/// Baseline AppArmor profiles for the demo apps (without SACK's
/// situation-sensitive rules — those are injected by the enhancer).
pub const VEHICLE_APPARMOR_PROFILES: &str = r#"
profile media_app /usr/bin/media_app {
    /usr/bin/media_app rx,
    /usr/lib/** rm,
    /dev/car/** r,
    /tmp/** rw,
}
profile navi_app /usr/bin/navi_app {
    /usr/bin/navi_app rx,
    /usr/lib/** rm,
    /dev/car/** r,
    /tmp/** rw,
}
profile rescue_daemon /usr/bin/rescue_daemon {
    /usr/bin/rescue_daemon rx,
    /usr/lib/** rm,
    /dev/car/** r,
    /tmp/** rw,
}
"#;

#[cfg(test)]
mod tests {
    use sack_core::SackPolicy;

    #[test]
    fn vehicle_sack_policy_compiles_cleanly() {
        let compiled = SackPolicy::parse(super::VEHICLE_SACK_POLICY)
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(compiled.space().state_count(), 4);
        assert_eq!(compiled.space().event_count(), 6);
        assert!(compiled.warnings().is_empty(), "{:?}", compiled.warnings());
    }

    #[test]
    fn enhanced_policy_compiles_cleanly() {
        let compiled = SackPolicy::parse(super::VEHICLE_ENHANCED_POLICY)
            .unwrap()
            .compile()
            .unwrap();
        assert!(compiled.warnings().is_empty(), "{:?}", compiled.warnings());
    }

    #[test]
    fn apparmor_profiles_parse() {
        let profiles = sack_apparmor::parse_profiles(super::VEHICLE_APPARMOR_PROFILES).unwrap();
        assert_eq!(profiles.len(), 3);
    }
}
