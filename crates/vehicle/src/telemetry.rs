//! CAN telemetry: speed broadcasts on the vehicle bus as an SDS sensor
//! source.
//!
//! In a real vehicle the SDS does not get a magic `speed_kmh` float — it
//! listens to periodic CAN broadcasts from the powertrain ECU. This module
//! provides both ends: [`SpeedBroadcaster`] encodes speed onto the bus
//! (`frame_id::SPEED_BROADCAST`, km/h ×10 little-endian in bytes 0..2),
//! and [`CanTelemetry`] is a bus node that decodes broadcasts back into
//! [`SensorFrame`]s for [`sack_sds::SdsService`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use sack_kernel::kernel::Kernel;
use sack_sds::sensors::SensorFrame;

use crate::can::{frame_id, CanBus, CanFrame, CanNode};

/// Encodes vehicle speed as a CAN broadcast.
#[derive(Debug)]
pub struct SpeedBroadcaster {
    bus: Arc<CanBus>,
}

impl SpeedBroadcaster {
    /// Creates a broadcaster on `bus`.
    pub fn new(bus: Arc<CanBus>) -> SpeedBroadcaster {
        SpeedBroadcaster { bus }
    }

    /// Broadcasts the current speed (km/h; clamped to 0..=6553.5).
    pub fn broadcast(&self, speed_kmh: f64) {
        let decikmh = (speed_kmh.clamp(0.0, 6553.5) * 10.0).round() as u16;
        let bytes = decikmh.to_le_bytes();
        self.bus.send(CanFrame::new(
            frame_id::SPEED_BROADCAST,
            &[bytes[0], bytes[1]],
        ));
    }
}

/// Decodes a speed broadcast payload back to km/h.
///
/// Returns `None` for frames that are not speed broadcasts or carry short
/// payloads.
pub fn decode_speed(frame: &CanFrame) -> Option<f64> {
    if frame.id != frame_id::SPEED_BROADCAST {
        return None;
    }
    let payload = frame.payload();
    if payload.len() < 2 {
        return None;
    }
    Some(f64::from(u16::from_le_bytes([payload[0], payload[1]])) / 10.0)
}

/// A bus node that turns speed broadcasts into SDS sensor frames,
/// timestamped with the kernel's simulated clock.
pub struct CanTelemetry {
    kernel: Weak<Kernel>,
    pending: Mutex<VecDeque<SensorFrame>>,
}

impl CanTelemetry {
    /// Creates the telemetry node and attaches it to `bus`.
    pub fn attach(bus: &CanBus, kernel: &Arc<Kernel>) -> Arc<CanTelemetry> {
        let node = Arc::new(CanTelemetry {
            kernel: Arc::downgrade(kernel),
            pending: Mutex::new(VecDeque::new()),
        });
        bus.attach(Arc::clone(&node) as Arc<dyn CanNode>);
        node
    }

    /// Drains the sensor frames decoded since the last call.
    pub fn drain(&self) -> Vec<SensorFrame> {
        self.pending.lock().drain(..).collect()
    }

    /// Number of queued frames.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }
}

impl CanNode for CanTelemetry {
    fn node_name(&self) -> &str {
        "can-telemetry"
    }

    fn subscribed_ids(&self) -> Vec<u32> {
        vec![frame_id::SPEED_BROADCAST]
    }

    fn receive(&self, frame: &CanFrame) {
        let Some(speed) = decode_speed(frame) else {
            return;
        };
        let now = self
            .kernel
            .upgrade()
            .map(|k| k.clock().now())
            .unwrap_or_default();
        self.pending
            .lock()
            .push_back(SensorFrame::parked(now).with_speed(speed));
    }
}

impl fmt::Debug for CanTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CanTelemetry")
            .field("pending", &self.pending_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn broadcast_decode_roundtrip() {
        let bus = CanBus::new();
        let tx = SpeedBroadcaster::new(Arc::clone(&bus));
        tx.broadcast(87.3);
        let frame = bus.trace()[0];
        assert_eq!(decode_speed(&frame), Some(87.3));
        // Non-speed frames decode to None.
        assert_eq!(decode_speed(&CanFrame::new(0x123, &[1, 2])), None);
        assert_eq!(
            decode_speed(&CanFrame::new(frame_id::SPEED_BROADCAST, &[1])),
            None
        );
    }

    #[test]
    fn broadcast_clamps_extremes() {
        let bus = CanBus::new();
        let tx = SpeedBroadcaster::new(Arc::clone(&bus));
        tx.broadcast(-10.0);
        tx.broadcast(99999.0);
        let trace = bus.trace();
        assert_eq!(decode_speed(&trace[0]), Some(0.0));
        assert_eq!(decode_speed(&trace[1]), Some(6553.5));
    }

    #[test]
    fn telemetry_stamps_with_kernel_time() {
        let kernel = sack_kernel::Kernel::boot_default();
        let bus = CanBus::new();
        let telemetry = CanTelemetry::attach(&bus, &kernel);
        let tx = SpeedBroadcaster::new(Arc::clone(&bus));
        kernel.clock().set(Duration::from_secs(5));
        tx.broadcast(42.0);
        kernel.clock().set(Duration::from_secs(6));
        tx.broadcast(43.5);
        let frames = telemetry.drain();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].t, Duration::from_secs(5));
        assert_eq!(frames[0].speed_kmh, 42.0);
        assert_eq!(frames[1].t, Duration::from_secs(6));
        assert!(frames[1].ignition_on, "moving vehicle implies ignition");
        assert_eq!(telemetry.pending_count(), 0, "drain empties the queue");
    }

    /// The full loop: ECU broadcast -> bus -> telemetry -> SDS detectors ->
    /// SACKfs -> situation state.
    #[test]
    fn speed_broadcasts_drive_the_situation_state() {
        use sack_core::Sack;
        use sack_kernel::kernel::KernelBuilder;
        use sack_kernel::lsm::SecurityModule;
        use sack_sds::service::SdsService;

        let policy = r#"
            states { low = 0; high = 1; }
            events { high_speed; low_speed; }
            transitions { low -high_speed-> high; high -low_speed-> low; }
            initial low;
            permissions { P; }
            state_per { low: P; }
            per_rules { P: allow subject=* /etc/critical r; }
        "#;
        let sack = Sack::independent(policy).unwrap();
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).unwrap();

        let bus = CanBus::new();
        let telemetry = CanTelemetry::attach(&bus, &kernel);
        let tx = SpeedBroadcaster::new(Arc::clone(&bus));
        let mut sds = SdsService::spawn(
            &kernel,
            vec![Box::new(sack_sds::detector::SpeedDetector::new(30.0, 60.0))],
        )
        .unwrap();

        // Accelerate past the high-speed threshold.
        for speed in [20.0, 45.0, 70.0, 90.0] {
            tx.broadcast(speed);
        }
        for frame in telemetry.drain() {
            sds.process_frame(&frame);
        }
        assert_eq!(sack.current_state_name(), "high");

        // Slow back down.
        tx.broadcast(10.0);
        for frame in telemetry.drain() {
            sds.process_frame(&frame);
        }
        assert_eq!(sack.current_state_name(), "low");
        sds.shutdown();
    }
}
