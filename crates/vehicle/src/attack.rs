//! Attack simulations.
//!
//! [`koffee_injection`] reproduces the KOFFEE-class attack (CVE-2020-8539)
//! the paper uses for motivation and evaluation: a compromised IVI process
//! injects vehicle-control commands by invoking the kernel interface
//! (ioctl/write on car devices) **directly**, never passing through the
//! user-space permission framework. On a DAC-only or framework-only system
//! the injection succeeds; with SACK stacked in the kernel it is denied
//! unless the current situation state grants the permission.
//!
//! [`volume_max_attack`] reproduces CVE-2023-6073: forcing the cabin
//! volume to maximum, dangerous while driving.

use std::fmt;

use sack_kernel::error::Errno;
use sack_kernel::file::OpenFlags;
use sack_kernel::uctx::UserContext;

use crate::devices::{audio_ioctl, door_ioctl, window_ioctl};

/// One injected command and its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackAttempt {
    /// What was attempted.
    pub description: String,
    /// Target device node.
    pub target: String,
    /// `None` if the injection succeeded, otherwise the errno that stopped
    /// it and the subsystem that raised it.
    pub blocked_by: Option<(Errno, Option<&'static str>)>,
}

impl AttackAttempt {
    /// True if the kernel let the command through.
    pub fn succeeded(&self) -> bool {
        self.blocked_by.is_none()
    }
}

impl fmt::Display for AttackAttempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.blocked_by {
            None => write!(f, "{} on {}: SUCCEEDED", self.description, self.target),
            Some((errno, ctx)) => write!(
                f,
                "{} on {}: blocked ({errno}{})",
                self.description,
                self.target,
                ctx.map(|c| format!(" by {c}")).unwrap_or_default()
            ),
        }
    }
}

/// Report of an attack campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttackReport {
    /// Every injected command, in order.
    pub attempts: Vec<AttackAttempt>,
}

impl AttackReport {
    /// Number of commands that reached the hardware.
    pub fn successes(&self) -> usize {
        self.attempts.iter().filter(|a| a.succeeded()).count()
    }

    /// Number of commands stopped in the kernel.
    pub fn blocked(&self) -> usize {
        self.attempts.len() - self.successes()
    }

    /// True if every command was stopped.
    pub fn fully_contained(&self) -> bool {
        self.successes() == 0
    }
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "attack report: {}/{} injected commands reached the hardware",
            self.successes(),
            self.attempts.len()
        )?;
        for a in &self.attempts {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

fn inject_ioctl(
    proc: &UserContext,
    report: &mut AttackReport,
    description: &str,
    target: &str,
    cmd: u32,
    arg: u64,
) {
    let outcome = proc
        .open(target, OpenFlags::read_write())
        .and_then(|fd| {
            let r = proc.ioctl(fd, cmd, arg);
            proc.close(fd)?;
            r
        })
        .map(|_| ())
        .err()
        .map(|e| (e.errno(), e.context()));
    report.attempts.push(AttackAttempt {
        description: description.to_string(),
        target: target.to_string(),
        blocked_by: outcome,
    });
}

fn inject_write(
    proc: &UserContext,
    report: &mut AttackReport,
    description: &str,
    target: &str,
    payload: &[u8],
) {
    let outcome = proc
        .open(target, OpenFlags::write_only())
        .and_then(|fd| {
            let r = proc.write(fd, payload);
            proc.close(fd)?;
            r
        })
        .map(|_| ())
        .err()
        .map(|e| (e.errno(), e.context()));
    report.attempts.push(AttackAttempt {
        description: description.to_string(),
        target: target.to_string(),
        blocked_by: outcome,
    });
}

/// The KOFFEE-class command-injection campaign, run from a compromised
/// process: unlock every door, open every window, max the volume — all by
/// direct kernel-interface calls that skip the IVI permission framework.
pub fn koffee_injection(proc: &UserContext, doors: usize, windows: usize) -> AttackReport {
    let mut report = AttackReport::default();
    for i in 0..doors {
        inject_ioctl(
            proc,
            &mut report,
            "inject DOOR_UNLOCK ioctl",
            &format!("/dev/car/door{i}"),
            door_ioctl::UNLOCK,
            0,
        );
        inject_write(
            proc,
            &mut report,
            "inject `unlock` write",
            &format!("/dev/car/door{i}"),
            b"unlock",
        );
    }
    for i in 0..windows {
        inject_ioctl(
            proc,
            &mut report,
            "inject WINDOW open ioctl",
            &format!("/dev/car/window{i}"),
            window_ioctl::SET_POSITION,
            100,
        );
    }
    inject_ioctl(
        proc,
        &mut report,
        "inject SET_VOLUME(100) ioctl",
        "/dev/car/audio",
        audio_ioctl::SET_VOLUME,
        100,
    );
    report
}

/// The original KOFFEE vector: injecting raw CAN frames through the bus
/// device instead of the per-actuator nodes. One `write(2)` on `/dev/can0`
/// carries unlock-all-doors, open-all-windows and volume-max frames.
pub fn koffee_can_injection(proc: &UserContext, doors: usize, windows: usize) -> AttackReport {
    use crate::can::{frame_id, CanFrame};
    let mut wire = Vec::new();
    for i in 0..doors.min(255) {
        wire.extend_from_slice(&CanFrame::new(frame_id::DOOR_CONTROL, &[1, i as u8]).to_wire());
    }
    for i in 0..windows.min(255) {
        wire.extend_from_slice(&CanFrame::new(frame_id::WINDOW_CONTROL, &[100, i as u8]).to_wire());
    }
    wire.extend_from_slice(&CanFrame::new(frame_id::AUDIO_VOLUME, &[100]).to_wire());

    let mut report = AttackReport::default();
    inject_write(
        proc,
        &mut report,
        &format!(
            "inject {} CAN frames",
            wire.len() / crate::can::FRAME_WIRE_SIZE
        ),
        "/dev/can0",
        &wire,
    );
    report
}

/// CVE-2023-6073 style: only the volume-to-max injection.
pub fn volume_max_attack(proc: &UserContext) -> AttackReport {
    let mut report = AttackReport::default();
    inject_ioctl(
        proc,
        &mut report,
        "inject SET_VOLUME(100) ioctl",
        "/dev/car/audio",
        audio_ioctl::SET_VOLUME,
        100,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::car::CarHardware;
    use sack_kernel::cred::Credentials;
    use sack_kernel::kernel::Kernel;

    #[test]
    fn injection_succeeds_without_mac() {
        // DAC-only kernel: the user-space framework is the only check, and
        // the attacker skips it — every command reaches the hardware.
        let kernel = Kernel::boot_default();
        let hw = CarHardware::install(&kernel, 2, 1).unwrap();
        let compromised = kernel.spawn(Credentials::user(1001, 1001));
        let report = koffee_injection(&compromised, 2, 1);
        assert_eq!(report.blocked(), 0);
        assert!(!report.fully_contained());
        assert!(!hw.all_doors_locked());
        assert_eq!(hw.windows()[0].position(), 100);
        assert_eq!(hw.audio().volume(), 100);
    }

    #[test]
    fn report_formatting() {
        let kernel = Kernel::boot_default();
        CarHardware::install(&kernel, 1, 0).unwrap();
        let p = kernel.spawn(Credentials::user(1, 1));
        let report = volume_max_attack(&p);
        let text = report.to_string();
        assert!(text.contains("1/1"));
        assert!(text.contains("SUCCEEDED"));
    }

    #[test]
    fn attempt_success_classification() {
        let ok = AttackAttempt {
            description: "x".into(),
            target: "/dev/car/door0".into(),
            blocked_by: None,
        };
        assert!(ok.succeeded());
        let blocked = AttackAttempt {
            description: "x".into(),
            target: "/dev/car/door0".into(),
            blocked_by: Some((Errno::EACCES, Some("sack"))),
        };
        assert!(!blocked.succeeded());
        assert!(blocked.to_string().contains("blocked"));
        assert!(blocked.to_string().contains("sack"));
    }
}
