//! A CAN-bus model with a char-device interface (`/dev/can0`).
//!
//! The original KOFFEE exploit injects *CAN frames* from the compromised
//! IVI into the vehicle bus (the micom daemon forwards them). This module
//! closes that loop in the simulation: car ECUs subscribe to frame IDs on
//! a [`CanBus`], and the bus is exposed to user space as a device node so
//! frame injection is an ordinary `write(2)` — mediated, like everything
//! else, by the LSM stack.
//!
//! Frame wire format on the device: 16 bytes —
//! `id:u32 LE | len:u8 | pad:3 | data:[u8;8]`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use sack_kernel::device::CharDevice;
use sack_kernel::error::{Errno, KernelError, KernelResult};

/// Standard CAN frame IDs used by the simulated vehicle.
pub mod frame_id {
    /// Door control (data\[0\]: 0 = lock, 1 = unlock; data\[1\]: door index).
    pub const DOOR_CONTROL: u32 = 0x2B0;
    /// Window control (data\[0\]: percent; data\[1\]: window index).
    pub const WINDOW_CONTROL: u32 = 0x2B1;
    /// Cabin audio volume (data\[0\]: volume).
    pub const AUDIO_VOLUME: u32 = 0x2C0;
    /// Vehicle speed broadcast (data\[0..2\]: km/h ×10, LE).
    pub const SPEED_BROADCAST: u32 = 0x0D0;
}

/// One CAN 2.0A frame (8-byte payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanFrame {
    /// Arbitration ID.
    pub id: u32,
    /// Payload length (0..=8).
    pub len: u8,
    /// Payload (only `len` bytes meaningful).
    pub data: [u8; 8],
}

/// Size of one frame in the device wire format.
pub const FRAME_WIRE_SIZE: usize = 16;

impl CanFrame {
    /// Builds a frame from a payload slice.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds 8 bytes.
    pub fn new(id: u32, payload: &[u8]) -> CanFrame {
        assert!(payload.len() <= 8, "CAN payload is at most 8 bytes");
        let mut data = [0u8; 8];
        data[..payload.len()].copy_from_slice(payload);
        CanFrame {
            id,
            len: payload.len() as u8,
            data,
        }
    }

    /// The meaningful payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.data[..usize::from(self.len.min(8))]
    }

    /// Encodes to the device wire format.
    pub fn to_wire(&self) -> [u8; FRAME_WIRE_SIZE] {
        let mut out = [0u8; FRAME_WIRE_SIZE];
        out[..4].copy_from_slice(&self.id.to_le_bytes());
        out[4] = self.len;
        out[8..16].copy_from_slice(&self.data);
        out
    }

    /// Decodes from the device wire format.
    ///
    /// # Errors
    ///
    /// `EINVAL` for short buffers or length > 8.
    pub fn from_wire(bytes: &[u8]) -> KernelResult<CanFrame> {
        if bytes.len() < FRAME_WIRE_SIZE {
            return Err(KernelError::with_context(Errno::EINVAL, "can"));
        }
        let id = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let len = bytes[4];
        if len > 8 {
            return Err(KernelError::with_context(Errno::EINVAL, "can"));
        }
        let mut data = [0u8; 8];
        data.copy_from_slice(&bytes[8..16]);
        Ok(CanFrame { id, len, data })
    }
}

impl fmt::Display for CanFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "can 0x{:03X} [{}]", self.id, self.len)?;
        for b in self.payload() {
            write!(f, " {b:02X}")?;
        }
        Ok(())
    }
}

/// An ECU endpoint: receives the frames whose IDs it subscribed to.
pub trait CanNode: Send + Sync {
    /// Node name (diagnostics).
    fn node_name(&self) -> &str;
    /// Frame IDs this node listens to.
    fn subscribed_ids(&self) -> Vec<u32>;
    /// Frame delivery.
    fn receive(&self, frame: &CanFrame);
}

/// The bus: fan-out to subscribed nodes plus a bounded trace log.
pub struct CanBus {
    nodes: Mutex<Vec<Arc<dyn CanNode>>>,
    trace: Mutex<VecDeque<CanFrame>>,
    trace_capacity: usize,
}

impl CanBus {
    /// Creates a bus with a 1024-frame trace buffer.
    pub fn new() -> Arc<CanBus> {
        Arc::new(CanBus {
            nodes: Mutex::new(Vec::new()),
            trace: Mutex::new(VecDeque::new()),
            trace_capacity: 1024,
        })
    }

    /// Attaches an ECU.
    pub fn attach(&self, node: Arc<dyn CanNode>) {
        self.nodes.lock().push(node);
    }

    /// Broadcasts a frame to every subscribed node and records it in the
    /// trace.
    pub fn send(&self, frame: CanFrame) {
        {
            let mut trace = self.trace.lock();
            if trace.len() == self.trace_capacity {
                trace.pop_front();
            }
            trace.push_back(frame);
        }
        let nodes: Vec<Arc<dyn CanNode>> = self.nodes.lock().clone();
        for node in nodes {
            if node.subscribed_ids().contains(&frame.id) {
                node.receive(&frame);
            }
        }
    }

    /// Snapshot of the trace, oldest first.
    pub fn trace(&self) -> Vec<CanFrame> {
        self.trace.lock().iter().copied().collect()
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.lock().len()
    }
}

impl fmt::Debug for CanBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CanBus")
            .field("nodes", &self.node_count())
            .field("traced", &self.trace.lock().len())
            .finish()
    }
}

/// The char-device front-end: `write(2)` of wire-format frames transmits
/// them on the bus; `read(2)` drains the trace (telematics-style sniffing).
pub struct CanDevice {
    bus: Arc<CanBus>,
    read_cursor: Mutex<usize>,
}

impl CanDevice {
    /// Creates the device over a bus.
    pub fn new(bus: Arc<CanBus>) -> Arc<CanDevice> {
        Arc::new(CanDevice {
            bus,
            read_cursor: Mutex::new(0),
        })
    }

    /// The underlying bus.
    pub fn bus(&self) -> &Arc<CanBus> {
        &self.bus
    }
}

impl fmt::Debug for CanDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CanDevice").field("bus", &self.bus).finish()
    }
}

impl CharDevice for CanDevice {
    fn driver_name(&self) -> &str {
        "can0"
    }

    fn write(&self, buf: &[u8], _offset: u64) -> KernelResult<usize> {
        if buf.is_empty() || !buf.len().is_multiple_of(FRAME_WIRE_SIZE) {
            return Err(KernelError::with_context(Errno::EINVAL, "can"));
        }
        for chunk in buf.chunks_exact(FRAME_WIRE_SIZE) {
            let frame = CanFrame::from_wire(chunk)?;
            self.bus.send(frame);
        }
        Ok(buf.len())
    }

    fn read(&self, buf: &mut [u8], _offset: u64) -> KernelResult<usize> {
        let trace = self.bus.trace();
        let mut cursor = self.read_cursor.lock();
        let mut written = 0;
        while *cursor < trace.len() && written + FRAME_WIRE_SIZE <= buf.len() {
            buf[written..written + FRAME_WIRE_SIZE].copy_from_slice(&trace[*cursor].to_wire());
            *cursor += 1;
            written += FRAME_WIRE_SIZE;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Recorder {
        ids: Vec<u32>,
        count: AtomicU32,
        last: Mutex<Option<CanFrame>>,
    }

    impl CanNode for Recorder {
        fn node_name(&self) -> &str {
            "recorder"
        }
        fn subscribed_ids(&self) -> Vec<u32> {
            self.ids.clone()
        }
        fn receive(&self, frame: &CanFrame) {
            self.count.fetch_add(1, Ordering::Relaxed);
            *self.last.lock() = Some(*frame);
        }
    }

    fn recorder(ids: &[u32]) -> Arc<Recorder> {
        Arc::new(Recorder {
            ids: ids.to_vec(),
            count: AtomicU32::new(0),
            last: Mutex::new(None),
        })
    }

    #[test]
    fn wire_roundtrip() {
        let frame = CanFrame::new(frame_id::DOOR_CONTROL, &[1, 2]);
        let decoded = CanFrame::from_wire(&frame.to_wire()).unwrap();
        assert_eq!(frame, decoded);
        assert_eq!(decoded.payload(), &[1, 2]);
    }

    #[test]
    fn from_wire_rejects_garbage() {
        assert!(CanFrame::from_wire(&[0u8; 4]).is_err());
        let mut bad = [0u8; FRAME_WIRE_SIZE];
        bad[4] = 9; // len > 8
        assert!(CanFrame::from_wire(&bad).is_err());
    }

    #[test]
    fn bus_fans_out_by_subscription() {
        let bus = CanBus::new();
        let doors = recorder(&[frame_id::DOOR_CONTROL]);
        let audio = recorder(&[frame_id::AUDIO_VOLUME]);
        bus.attach(Arc::clone(&doors) as Arc<dyn CanNode>);
        bus.attach(Arc::clone(&audio) as Arc<dyn CanNode>);
        bus.send(CanFrame::new(frame_id::DOOR_CONTROL, &[1, 0]));
        assert_eq!(doors.count.load(Ordering::Relaxed), 1);
        assert_eq!(audio.count.load(Ordering::Relaxed), 0);
        assert_eq!(
            doors.last.lock().unwrap().payload(),
            &[1, 0],
            "payload delivered intact"
        );
        assert_eq!(bus.trace().len(), 1);
    }

    #[test]
    fn device_write_transmits_frames() {
        let bus = CanBus::new();
        let node = recorder(&[frame_id::WINDOW_CONTROL]);
        bus.attach(Arc::clone(&node) as Arc<dyn CanNode>);
        let dev = CanDevice::new(Arc::clone(&bus));
        let mut wire = Vec::new();
        wire.extend_from_slice(&CanFrame::new(frame_id::WINDOW_CONTROL, &[100, 0]).to_wire());
        wire.extend_from_slice(&CanFrame::new(frame_id::WINDOW_CONTROL, &[50, 1]).to_wire());
        assert_eq!(dev.write(&wire, 0).unwrap(), 32);
        assert_eq!(node.count.load(Ordering::Relaxed), 2);
        // Partial frames rejected.
        assert!(dev.write(&wire[..10], 0).is_err());
    }

    #[test]
    fn device_read_drains_trace_incrementally() {
        let bus = CanBus::new();
        let dev = CanDevice::new(Arc::clone(&bus));
        bus.send(CanFrame::new(0x100, &[1]));
        bus.send(CanFrame::new(0x200, &[2]));
        let mut buf = [0u8; FRAME_WIRE_SIZE];
        assert_eq!(dev.read(&mut buf, 0).unwrap(), FRAME_WIRE_SIZE);
        assert_eq!(CanFrame::from_wire(&buf).unwrap().id, 0x100);
        assert_eq!(dev.read(&mut buf, 0).unwrap(), FRAME_WIRE_SIZE);
        assert_eq!(CanFrame::from_wire(&buf).unwrap().id, 0x200);
        assert_eq!(dev.read(&mut buf, 0).unwrap(), 0, "trace drained");
    }

    #[test]
    fn trace_is_bounded() {
        let bus = CanBus::new();
        for i in 0..2000u32 {
            bus.send(CanFrame::new(i, &[]));
        }
        let trace = bus.trace();
        assert_eq!(trace.len(), 1024);
        assert_eq!(trace[0].id, 2000 - 1024, "oldest evicted");
    }

    #[test]
    fn display_format() {
        let frame = CanFrame::new(0x2B0, &[1, 3]);
        assert_eq!(frame.to_string(), "can 0x2B0 [2] 01 03");
    }
}
