//! The in-vehicle infotainment (IVI) emulator.
//!
//! Modelled on the KOFFEE testbed the paper uses: applications run under a
//! *user-space permission framework* that checks an app's manifest before
//! forwarding hardware requests. That framework is exactly the layer the
//! paper shows to be bypassable — [`crate::attack`] drives the same
//! hardware interfaces without consulting it, which only in-kernel
//! mediation (SACK) stops.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use sack_kernel::cred::Credentials;
use sack_kernel::error::{KernelError, KernelResult};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::Kernel;
use sack_kernel::path::KPath;
use sack_kernel::types::Mode;
use sack_kernel::uctx::UserContext;
use sack_kernel::{Gid, Uid};

use crate::devices::{audio_ioctl, door_ioctl, window_ioctl};

/// User-space permissions an IVI app can hold in its manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IviPermission {
    /// Lock/unlock doors.
    ControlCarDoors,
    /// Open/close windows.
    ControlWindows,
    /// Change audio volume.
    SetVolume,
    /// Read vehicle state (door status, window position).
    ReadVehicleState,
}

impl fmt::Display for IviPermission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IviPermission::ControlCarDoors => "CONTROL_CAR_DOORS",
            IviPermission::ControlWindows => "CONTROL_WINDOWS",
            IviPermission::SetVolume => "SET_VOLUME",
            IviPermission::ReadVehicleState => "READ_VEHICLE_STATE",
        };
        f.write_str(s)
    }
}

/// An application manifest: identity plus granted user-space permissions.
#[derive(Debug, Clone)]
pub struct AppManifest {
    /// Application name.
    pub name: String,
    /// Executable path (profiles attach here).
    pub exe: String,
    /// Uid the app runs as.
    pub uid: u32,
    /// Granted user-space permissions.
    pub granted: Vec<IviPermission>,
}

impl AppManifest {
    /// Creates a manifest with no permissions.
    pub fn new(name: &str, exe: &str, uid: u32) -> AppManifest {
        AppManifest {
            name: name.to_string(),
            exe: exe.to_string(),
            uid,
            granted: Vec::new(),
        }
    }

    /// Grants a permission (builder-style).
    pub fn grant(mut self, perm: IviPermission) -> AppManifest {
        self.granted.push(perm);
        self
    }
}

/// Error from the user-space permission framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IviError {
    /// The framework denied the request (manifest lacks the permission).
    PermissionDenied(IviPermission),
    /// The kernel denied or failed the hardware operation.
    Kernel(KernelError),
}

impl fmt::Display for IviError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IviError::PermissionDenied(p) => {
                write!(f, "IVI framework: permission {p} not granted")
            }
            IviError::Kernel(e) => write!(f, "kernel: {e}"),
        }
    }
}

impl std::error::Error for IviError {}

impl From<KernelError> for IviError {
    fn from(e: KernelError) -> Self {
        IviError::Kernel(e)
    }
}

/// Framework audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IviAudit {
    /// App name.
    pub app: String,
    /// Requested operation.
    pub operation: String,
    /// Whether the user-space check passed.
    pub framework_allowed: bool,
}

/// A running IVI application.
pub struct IviApp {
    manifest: AppManifest,
    proc: UserContext,
    audit: Arc<Mutex<Vec<IviAudit>>>,
}

impl IviApp {
    /// The app's manifest.
    pub fn manifest(&self) -> &AppManifest {
        &self.manifest
    }

    /// The app's process — note that any code in the process (or an
    /// attacker controlling it) can use this handle *directly*, skipping
    /// every check below. That is the paper's motivation.
    pub fn process(&self) -> &UserContext {
        &self.proc
    }

    fn framework_check(&self, perm: IviPermission, operation: &str) -> Result<(), IviError> {
        let allowed = self.manifest.granted.contains(&perm);
        self.audit.lock().push(IviAudit {
            app: self.manifest.name.clone(),
            operation: operation.to_string(),
            framework_allowed: allowed,
        });
        if allowed {
            Ok(())
        } else {
            Err(IviError::PermissionDenied(perm))
        }
    }

    fn device_ioctl(&self, node: &str, cmd: u32, arg: u64) -> Result<i64, IviError> {
        let fd = self.proc.open(node, OpenFlags::read_write())?;
        let result = self.proc.ioctl(fd, cmd, arg);
        self.proc.close(fd)?;
        Ok(result?)
    }

    /// Unlocks a door through the framework (user-space check first).
    ///
    /// # Errors
    ///
    /// Framework denial or kernel denial.
    pub fn unlock_door(&self, index: usize) -> Result<(), IviError> {
        self.framework_check(IviPermission::ControlCarDoors, "unlock_door")?;
        self.device_ioctl(&format!("/dev/car/door{index}"), door_ioctl::UNLOCK, 0)?;
        Ok(())
    }

    /// Opens a window to `percent` through the framework.
    ///
    /// # Errors
    ///
    /// Framework denial or kernel denial.
    pub fn open_window(&self, index: usize, percent: u8) -> Result<(), IviError> {
        self.framework_check(IviPermission::ControlWindows, "open_window")?;
        self.device_ioctl(
            &format!("/dev/car/window{index}"),
            window_ioctl::SET_POSITION,
            u64::from(percent),
        )?;
        Ok(())
    }

    /// Sets the cabin volume through the framework.
    ///
    /// # Errors
    ///
    /// Framework denial or kernel denial.
    pub fn set_volume(&self, volume: u8) -> Result<(), IviError> {
        self.framework_check(IviPermission::SetVolume, "set_volume")?;
        self.device_ioctl("/dev/car/audio", audio_ioctl::SET_VOLUME, u64::from(volume))?;
        Ok(())
    }

    /// Reads a door's lock status through the framework.
    ///
    /// # Errors
    ///
    /// Framework denial or kernel denial.
    pub fn door_locked(&self, index: usize) -> Result<bool, IviError> {
        self.framework_check(IviPermission::ReadVehicleState, "door_status")?;
        let status = self.device_ioctl(&format!("/dev/car/door{index}"), door_ioctl::STATUS, 0)?;
        Ok(status == 1)
    }
}

impl fmt::Debug for IviApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IviApp")
            .field("name", &self.manifest.name)
            .field("pid", &self.proc.pid())
            .finish()
    }
}

/// The IVI system: installs apps and holds the shared framework audit log.
pub struct IviSystem {
    kernel: Arc<Kernel>,
    audit: Arc<Mutex<Vec<IviAudit>>>,
    apps: Vec<String>,
}

impl IviSystem {
    /// Creates the IVI system on a booted kernel.
    pub fn new(kernel: Arc<Kernel>) -> IviSystem {
        IviSystem {
            kernel,
            audit: Arc::new(Mutex::new(Vec::new())),
            apps: Vec::new(),
        }
    }

    /// Installs and launches an app: creates its executable, spawns its
    /// process, and execs it (triggering any profile attachment).
    ///
    /// # Errors
    ///
    /// VFS or exec errors.
    pub fn install_app(&mut self, manifest: AppManifest) -> KernelResult<IviApp> {
        let exe = KPath::new(&manifest.exe)?;
        if let Some(parent) = exe.parent() {
            self.kernel.vfs().mkdir_all(&parent)?;
        }
        if !self.kernel.vfs().exists(&exe) {
            self.kernel
                .vfs()
                .create_file(&exe, Mode::EXEC, Uid::ROOT, Gid(0))?;
        }
        let proc = self
            .kernel
            .spawn(Credentials::user(manifest.uid, manifest.uid));
        proc.exec(&manifest.exe)?;
        self.apps.push(manifest.name.clone());
        Ok(IviApp {
            manifest,
            proc,
            audit: Arc::clone(&self.audit),
        })
    }

    /// The framework audit log.
    pub fn audit_log(&self) -> Vec<IviAudit> {
        self.audit.lock().clone()
    }

    /// Names of installed apps.
    pub fn app_names(&self) -> &[String] {
        &self.apps
    }

    /// The kernel the IVI runs on.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }
}

impl fmt::Debug for IviSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IviSystem")
            .field("apps", &self.apps)
            .finish()
    }
}

/// Builds the standard demo app set used by examples and tests:
/// a media app (volume only), a navi app (read-only), and the privileged
/// rescue daemon (doors + windows).
pub fn standard_manifests() -> Vec<AppManifest> {
    vec![
        AppManifest::new("media_app", "/usr/bin/media_app", 1001).grant(IviPermission::SetVolume),
        AppManifest::new("navi_app", "/usr/bin/navi_app", 1002)
            .grant(IviPermission::ReadVehicleState),
        AppManifest::new("rescue_daemon", "/usr/bin/rescue_daemon", 900)
            .grant(IviPermission::ControlCarDoors)
            .grant(IviPermission::ControlWindows)
            .grant(IviPermission::ReadVehicleState),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::car::CarHardware;

    fn setup() -> (Arc<Kernel>, CarHardware, IviSystem) {
        let kernel = Kernel::boot_default();
        let hw = CarHardware::install(&kernel, 2, 2).unwrap();
        let ivi = IviSystem::new(Arc::clone(&kernel));
        (kernel, hw, ivi)
    }

    #[test]
    fn framework_grants_manifest_permissions() {
        let (_kernel, hw, mut ivi) = setup();
        let rescue = ivi
            .install_app(
                AppManifest::new("rescue", "/usr/bin/rescue", 900)
                    .grant(IviPermission::ControlCarDoors),
            )
            .unwrap();
        rescue.unlock_door(0).unwrap();
        assert!(!hw.doors()[0].is_locked());
    }

    #[test]
    fn framework_denies_missing_permissions() {
        let (_kernel, hw, mut ivi) = setup();
        let media = ivi
            .install_app(
                AppManifest::new("media", "/usr/bin/media", 1001).grant(IviPermission::SetVolume),
            )
            .unwrap();
        let err = media.unlock_door(0).unwrap_err();
        assert_eq!(
            err,
            IviError::PermissionDenied(IviPermission::ControlCarDoors)
        );
        assert!(hw.doors()[0].is_locked(), "denied request has no effect");
        media.set_volume(55).unwrap();
        assert_eq!(hw.audio().volume(), 55);
        // Audit log recorded both decisions.
        let log = ivi.audit_log();
        assert_eq!(log.len(), 2);
        assert!(!log[0].framework_allowed);
        assert!(log[1].framework_allowed);
    }

    #[test]
    fn exec_sets_app_identity() {
        let (_kernel, _hw, mut ivi) = setup();
        let app = ivi
            .install_app(AppManifest::new("navi", "/usr/bin/navi", 1002))
            .unwrap();
        assert_eq!(
            app.process().task().exe().unwrap().as_str(),
            "/usr/bin/navi"
        );
    }

    #[test]
    fn read_vehicle_state() {
        let (_kernel, _hw, mut ivi) = setup();
        let navi = ivi
            .install_app(
                AppManifest::new("navi", "/usr/bin/navi", 1002)
                    .grant(IviPermission::ReadVehicleState),
            )
            .unwrap();
        assert!(navi.door_locked(0).unwrap());
    }

    #[test]
    fn standard_manifests_shape() {
        let manifests = standard_manifests();
        assert_eq!(manifests.len(), 3);
        assert!(manifests[2]
            .granted
            .contains(&IviPermission::ControlCarDoors));
        assert!(!manifests[0]
            .granted
            .contains(&IviPermission::ControlCarDoors));
    }
}
