//! # sack-vehicle — the CAV substrate
//!
//! Everything vehicle-shaped the paper's evaluation needs, built on the
//! simulated kernel:
//!
//! * car hardware as char devices with real actuator state
//!   ([`devices`], [`car`]): doors, windows, cabin audio;
//! * an IVI emulator with the bypassable user-space permission framework
//!   ([`ivi`]);
//! * KOFFEE-class command injection and the CVE-2023-6073 volume attack
//!   ([`attack`]);
//! * the canonical vehicle policies used across examples, tests and
//!   benchmarks ([`policies`]).
//!
//! ## Example: an attack that skips the user-space framework
//!
//! ```
//! use sack_kernel::{Kernel, Credentials};
//! use sack_vehicle::car::CarHardware;
//! use sack_vehicle::attack::koffee_injection;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = Kernel::boot_default(); // DAC only, no MAC
//! let hw = CarHardware::install(&kernel, 2, 2)?;
//! let compromised = kernel.spawn(Credentials::user(1001, 1001));
//! let report = koffee_injection(&compromised, 2, 2);
//! // Without in-kernel mediation, every injected command lands.
//! assert_eq!(report.blocked(), 0);
//! assert!(!hw.all_doors_locked());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attack;
pub mod can;
pub mod car;
pub mod devices;
pub mod ivi;
pub mod policies;
pub mod telemetry;

pub use attack::{
    koffee_can_injection, koffee_injection, volume_max_attack, AttackAttempt, AttackReport,
};
pub use can::{CanBus, CanDevice, CanFrame, CanNode};
pub use car::{CarHardware, CAN_MINOR, CAR_MAJOR};
pub use devices::{AudioDevice, DoorDevice, WindowDevice};
pub use ivi::{standard_manifests, AppManifest, IviApp, IviError, IviPermission, IviSystem};
pub use policies::{VEHICLE_APPARMOR_PROFILES, VEHICLE_ENHANCED_POLICY, VEHICLE_SACK_POLICY};
pub use telemetry::{decode_speed, CanTelemetry, SpeedBroadcaster};
