//! Car hardware as character devices.
//!
//! The paper's case study mediates `ioctl`/`write` on window and door
//! devices; CVE-2023-6073 concerns the audio volume. These drivers give
//! those devices real state and real command sets so a granted access has
//! an observable physical effect (doors unlock, windows open, volume
//! changes) that tests and examples can assert on.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use sack_kernel::device::CharDevice;
use sack_kernel::error::{Errno, KernelError, KernelResult};

/// ioctl commands understood by [`DoorDevice`].
pub mod door_ioctl {
    /// Lock the door.
    pub const LOCK: u32 = 0x4400;
    /// Unlock the door.
    pub const UNLOCK: u32 = 0x4401;
    /// Query state: returns 1 if locked.
    pub const STATUS: u32 = 0x4402;
}

/// ioctl commands understood by [`WindowDevice`].
pub mod window_ioctl {
    /// Set position (arg = percent open, 0-100).
    pub const SET_POSITION: u32 = 0x5700;
    /// Query position.
    pub const GET_POSITION: u32 = 0x5701;
}

/// ioctl commands understood by [`AudioDevice`].
pub mod audio_ioctl {
    /// Set volume (arg = 0-100).
    pub const SET_VOLUME: u32 = 0x4100;
    /// Query volume.
    pub const GET_VOLUME: u32 = 0x4101;
}

/// A door actuator: locked/unlocked with an action log.
#[derive(Debug)]
pub struct DoorDevice {
    label: String,
    locked: Mutex<bool>,
    log: Mutex<Vec<&'static str>>,
}

impl DoorDevice {
    /// Creates a locked door.
    pub fn new(label: impl Into<String>) -> Arc<DoorDevice> {
        Arc::new(DoorDevice {
            label: label.into(),
            locked: Mutex::new(true),
            log: Mutex::new(Vec::new()),
        })
    }

    /// True if the door is locked.
    pub fn is_locked(&self) -> bool {
        *self.locked.lock()
    }

    /// Actions performed on the actuator, in order.
    pub fn action_log(&self) -> Vec<&'static str> {
        self.log.lock().clone()
    }
}

impl CharDevice for DoorDevice {
    fn driver_name(&self) -> &str {
        &self.label
    }

    fn read(&self, buf: &mut [u8], offset: u64) -> KernelResult<usize> {
        // Honour the file offset so `read` loops terminate at EOF.
        let state: &[u8] = if self.is_locked() {
            b"locked\n"
        } else {
            b"unlocked\n"
        };
        let off = offset as usize;
        if off >= state.len() {
            return Ok(0);
        }
        let n = buf.len().min(state.len() - off);
        buf[..n].copy_from_slice(&state[off..off + n]);
        Ok(n)
    }

    fn write(&self, buf: &[u8], _offset: u64) -> KernelResult<usize> {
        match std::str::from_utf8(buf).map(str::trim) {
            Ok("lock") => {
                *self.locked.lock() = true;
                self.log.lock().push("lock");
                Ok(buf.len())
            }
            Ok("unlock") => {
                *self.locked.lock() = false;
                self.log.lock().push("unlock");
                Ok(buf.len())
            }
            _ => Err(KernelError::with_context(Errno::EINVAL, "door")),
        }
    }

    fn ioctl(&self, cmd: u32, _arg: u64) -> KernelResult<i64> {
        match cmd {
            door_ioctl::LOCK => {
                *self.locked.lock() = true;
                self.log.lock().push("lock");
                Ok(0)
            }
            door_ioctl::UNLOCK => {
                *self.locked.lock() = false;
                self.log.lock().push("unlock");
                Ok(0)
            }
            door_ioctl::STATUS => Ok(i64::from(self.is_locked())),
            _ => Err(KernelError::with_context(Errno::ENOTTY, "door")),
        }
    }
}

/// A window actuator: position 0 (closed) to 100 (open).
#[derive(Debug)]
pub struct WindowDevice {
    label: String,
    position: Mutex<u8>,
}

impl WindowDevice {
    /// Creates a closed window.
    pub fn new(label: impl Into<String>) -> Arc<WindowDevice> {
        Arc::new(WindowDevice {
            label: label.into(),
            position: Mutex::new(0),
        })
    }

    /// Percent open.
    pub fn position(&self) -> u8 {
        *self.position.lock()
    }
}

impl CharDevice for WindowDevice {
    fn driver_name(&self) -> &str {
        &self.label
    }

    fn ioctl(&self, cmd: u32, arg: u64) -> KernelResult<i64> {
        match cmd {
            window_ioctl::SET_POSITION => {
                if arg > 100 {
                    return Err(KernelError::with_context(Errno::EINVAL, "window"));
                }
                *self.position.lock() = arg as u8;
                Ok(0)
            }
            window_ioctl::GET_POSITION => Ok(i64::from(self.position())),
            _ => Err(KernelError::with_context(Errno::ENOTTY, "window")),
        }
    }
}

/// The cabin audio device (CVE-2023-6073's target): volume 0-100.
#[derive(Debug)]
pub struct AudioDevice {
    volume: Mutex<u8>,
}

impl AudioDevice {
    /// Creates the device at a comfortable volume (30).
    pub fn new() -> Arc<AudioDevice> {
        Arc::new(AudioDevice {
            volume: Mutex::new(30),
        })
    }

    /// Current volume.
    pub fn volume(&self) -> u8 {
        *self.volume.lock()
    }
}

impl CharDevice for AudioDevice {
    fn driver_name(&self) -> &str {
        "audio"
    }

    fn ioctl(&self, cmd: u32, arg: u64) -> KernelResult<i64> {
        match cmd {
            audio_ioctl::SET_VOLUME => {
                if arg > 100 {
                    return Err(KernelError::with_context(Errno::EINVAL, "audio"));
                }
                *self.volume.lock() = arg as u8;
                Ok(0)
            }
            audio_ioctl::GET_VOLUME => Ok(i64::from(self.volume())),
            _ => Err(KernelError::with_context(Errno::ENOTTY, "audio")),
        }
    }
}

impl fmt::Display for DoorDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}",
            self.label,
            if self.is_locked() {
                "locked"
            } else {
                "unlocked"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn door_ioctl_cycle() {
        let door = DoorDevice::new("door0");
        assert!(door.is_locked());
        assert_eq!(door.ioctl(door_ioctl::UNLOCK, 0).unwrap(), 0);
        assert!(!door.is_locked());
        assert_eq!(door.ioctl(door_ioctl::STATUS, 0).unwrap(), 0);
        door.ioctl(door_ioctl::LOCK, 0).unwrap();
        assert_eq!(door.ioctl(door_ioctl::STATUS, 0).unwrap(), 1);
        assert_eq!(door.action_log(), vec!["unlock", "lock"]);
    }

    #[test]
    fn door_write_commands() {
        let door = DoorDevice::new("door0");
        door.write(b"unlock\n", 0).unwrap();
        assert!(!door.is_locked());
        assert!(door.write(b"explode", 0).is_err());
        let mut buf = [0u8; 16];
        let n = door.read(&mut buf, 0).unwrap();
        assert_eq!(&buf[..n], b"unlocked\n");
    }

    #[test]
    fn window_position_bounds() {
        let w = WindowDevice::new("window0");
        w.ioctl(window_ioctl::SET_POSITION, 70).unwrap();
        assert_eq!(w.position(), 70);
        assert_eq!(w.ioctl(window_ioctl::GET_POSITION, 0).unwrap(), 70);
        assert_eq!(
            w.ioctl(window_ioctl::SET_POSITION, 150)
                .unwrap_err()
                .errno(),
            Errno::EINVAL
        );
    }

    #[test]
    fn audio_volume() {
        let a = AudioDevice::new();
        assert_eq!(a.volume(), 30);
        a.ioctl(audio_ioctl::SET_VOLUME, 100).unwrap();
        assert_eq!(a.volume(), 100);
        assert!(a.ioctl(audio_ioctl::SET_VOLUME, 101).is_err());
        assert!(a.ioctl(0xdead, 0).is_err());
    }
}
