//! Bounded worker pool for parallel compilation.
//!
//! Bulk profile loads and `SackPolicy::compile` both reduce to the same
//! shape: N independent DFA builds against one pre-computed shared
//! [`crate::dfa::Alphabet`]. The alphabet pre-pass means workers never
//! race a byte-class split, so the builds are embarrassingly parallel —
//! this module provides the one scoped worker pool both call sites use.
//!
//! The pool is deliberately *not* routed through the `sync::shim` seam:
//! compilation is control-plane work (no hook ever runs inside it), the
//! pool owns no cross-call state, and its only synchronisation is a
//! work-index counter plus per-slot once-cells that the `thread::scope`
//! join fully orders. The concurrency the schedule executor must explore
//! — the first-touch compile race — lives in
//! [`sack_kernel::sync::LazySlot`] instead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of workers a compile pool should use when the caller does not
/// pin one: the machine's available parallelism, with a floor of 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `workers` scoped threads, preserving
/// order. `workers <= 1` (or fewer than two items) runs inline — the
/// serial baseline the differential tests compare against is literally
/// this branch.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope join rethrows it).
pub fn map_parallel<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<OnceLock<R>> = (0..items.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let filled = slots[i].set(f(item));
                debug_assert!(filled.is_ok(), "work index hands out each slot once");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot was filled"))
        .collect()
}

/// [`map_parallel`] for side-effecting work with no result.
pub fn for_each_parallel<T, F>(items: &[T], workers: usize, f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    map_parallel(items, workers, |item| f(item));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_worker_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for workers in [0, 1, 2, 4, 16] {
            assert_eq!(map_parallel(&items, workers, |i| i * 3), expect);
        }
    }

    #[test]
    fn empty_and_single_item_run_inline() {
        let none: Vec<u32> = Vec::new();
        assert!(map_parallel(&none, 8, |x| *x).is_empty());
        assert_eq!(map_parallel(&[5u32], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        for_each_parallel(&items, 4, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
