//! Text parser for the simplified AppArmor profile language.
//!
//! ```text
//! # IVI media application
//! profile media_app /usr/bin/media_app flags=(enforce) {
//!   capability net_bind_service,
//!   network inet,
//!   /usr/lib/** rm,
//!   /dev/audio rwi,
//!   deny /dev/car/** rwi,
//! }
//! ```

use std::fmt;

use sack_kernel::cred::Capability;
use sack_kernel::lsm::SocketFamily;

use crate::profile::{FilePerms, PathRule, Profile, ProfileMode};

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileError {
    /// Line the error occurred on.
    pub line: usize,
    message: String,
}

impl ParseProfileError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseProfileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseProfileError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    OpenBrace,
    CloseBrace,
    Comma,
}

fn tokenize(text: &str) -> Vec<(usize, Tok)> {
    let mut tokens = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(idx) => &line[..idx],
            None => line,
        };
        let mut word = String::new();
        // Depth of glob alternation braces (`/tmp/{a,b}`): while positive,
        // `{`/`}`/`,` belong to the pattern, not to the block structure. A
        // `{` opens an alternation exactly when it appears mid-word (block
        // braces are always preceded by whitespace).
        let mut glob_depth = 0usize;
        let flush = |word: &mut String, glob_depth: &mut usize, tokens: &mut Vec<(usize, Tok)>| {
            if !word.is_empty() {
                tokens.push((lineno + 1, Tok::Word(std::mem::take(word))));
            }
            *glob_depth = 0;
        };
        for ch in line.chars() {
            match ch {
                '{' if !word.is_empty() => {
                    glob_depth += 1;
                    word.push('{');
                }
                '}' if glob_depth > 0 => {
                    glob_depth -= 1;
                    word.push('}');
                }
                ',' if glob_depth > 0 => word.push(','),
                '{' => {
                    flush(&mut word, &mut glob_depth, &mut tokens);
                    tokens.push((lineno + 1, Tok::OpenBrace));
                }
                '}' => {
                    flush(&mut word, &mut glob_depth, &mut tokens);
                    tokens.push((lineno + 1, Tok::CloseBrace));
                }
                ',' => {
                    flush(&mut word, &mut glob_depth, &mut tokens);
                    tokens.push((lineno + 1, Tok::Comma));
                }
                c if c.is_whitespace() => flush(&mut word, &mut glob_depth, &mut tokens),
                c => word.push(c),
            }
        }
        flush(&mut word, &mut glob_depth, &mut tokens);
    }
    tokens
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<(usize, Tok)> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn expect_word(&mut self, what: &str) -> Result<(usize, String), ParseProfileError> {
        match self.next() {
            Some((line, Tok::Word(w))) => Ok((line, w)),
            Some((line, other)) => Err(ParseProfileError::new(
                line,
                format!("expected {what}, found {other:?}"),
            )),
            None => Err(ParseProfileError::new(
                self.line(),
                format!("expected {what}, found end of input"),
            )),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<usize, ParseProfileError> {
        match self.next() {
            Some((line, t)) if t == tok => Ok(line),
            Some((line, other)) => Err(ParseProfileError::new(
                line,
                format!("expected {what}, found {other:?}"),
            )),
            None => Err(ParseProfileError::new(
                self.line(),
                format!("expected {what}, found end of input"),
            )),
        }
    }

    fn parse_profile(&mut self) -> Result<Profile, ParseProfileError> {
        let (line, kw) = self.expect_word("`profile`")?;
        if kw != "profile" {
            return Err(ParseProfileError::new(
                line,
                format!("expected `profile`, found `{kw}`"),
            ));
        }
        let (_, name) = self.expect_word("profile name")?;
        let mut profile = Profile::new(name);

        // Optional attachment path and flags before `{`.
        loop {
            match self.peek() {
                Some((_, Tok::OpenBrace)) => break,
                Some((line, Tok::Word(w))) => {
                    let line = *line;
                    let w = w.clone();
                    self.pos += 1;
                    if let Some(flags) = w.strip_prefix("flags=(") {
                        let flags = flags.strip_suffix(')').ok_or_else(|| {
                            ParseProfileError::new(line, "unterminated flags=(...)")
                        })?;
                        profile.mode = match flags {
                            "complain" => ProfileMode::Complain,
                            "enforce" => ProfileMode::Enforce,
                            other => {
                                return Err(ParseProfileError::new(
                                    line,
                                    format!("unknown flag `{other}`"),
                                ))
                            }
                        };
                    } else if w.starts_with('/') {
                        profile = profile
                            .with_attachment(&w)
                            .map_err(|e| ParseProfileError::new(line, e.to_string()))?;
                    } else {
                        return Err(ParseProfileError::new(
                            line,
                            format!("unexpected token `{w}` in profile header"),
                        ));
                    }
                }
                other => {
                    let line = other.map_or(self.line(), |(l, _)| *l);
                    return Err(ParseProfileError::new(
                        line,
                        "expected `{` after profile header",
                    ));
                }
            }
        }
        self.expect(Tok::OpenBrace, "`{`")?;

        loop {
            match self.peek() {
                Some((_, Tok::CloseBrace)) => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.parse_rule(&mut profile)?,
                None => {
                    return Err(ParseProfileError::new(
                        self.line(),
                        "unterminated profile body (missing `}`)",
                    ))
                }
            }
        }
        Ok(profile)
    }

    fn parse_rule(&mut self, profile: &mut Profile) -> Result<(), ParseProfileError> {
        let (line, first) = self.expect_word("rule")?;
        match first.as_str() {
            "capability" => {
                let (cline, cap) = self.expect_word("capability name")?;
                let cap = Capability::parse(&cap).ok_or_else(|| {
                    ParseProfileError::new(cline, format!("unknown capability `{cap}`"))
                })?;
                profile.capabilities.push(cap);
            }
            "network" => {
                let (nline, fam) = self.expect_word("network family")?;
                let family = match fam.as_str() {
                    "unix" => SocketFamily::Unix,
                    "inet" => SocketFamily::Inet,
                    other => {
                        return Err(ParseProfileError::new(
                            nline,
                            format!("unknown network family `{other}`"),
                        ))
                    }
                };
                profile.networks.push(family);
            }
            "deny" => {
                let (pline, path) = self.expect_word("path")?;
                let (_, perms) = self.expect_word("permissions")?;
                let rule = Self::make_rule(pline, &path, &perms, true)?;
                profile.path_rules.push(rule);
            }
            path if path.starts_with('/') => {
                let (_, perms) = self.expect_word("permissions")?;
                let rule = Self::make_rule(line, path, &perms, false)?;
                profile.path_rules.push(rule);
            }
            other => {
                return Err(ParseProfileError::new(
                    line,
                    format!("unexpected rule keyword `{other}`"),
                ))
            }
        }
        self.expect(Tok::Comma, "`,` after rule")?;
        Ok(())
    }

    fn make_rule(
        line: usize,
        path: &str,
        perms: &str,
        deny: bool,
    ) -> Result<PathRule, ParseProfileError> {
        let perms = FilePerms::parse(perms).map_err(|c| {
            ParseProfileError::new(line, format!("unknown permission letter `{c}`"))
        })?;
        let rule = if deny {
            PathRule::deny(path, perms)
        } else {
            PathRule::allow(path, perms)
        };
        rule.map_err(|e| ParseProfileError::new(line, e.to_string()))
    }
}

/// Parses one or more profiles from profile-language text.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
///
/// # Examples
///
/// ```
/// use sack_apparmor::parser::parse_profiles;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profiles = parse_profiles(r#"
/// profile media /usr/bin/media {
///   /dev/audio rwi,
///   deny /dev/car/** rwi,
/// }
/// "#)?;
/// assert_eq!(profiles[0].name, "media");
/// # Ok(())
/// # }
/// ```
pub fn parse_profiles(text: &str) -> Result<Vec<Profile>, ParseProfileError> {
    let mut parser = Parser {
        tokens: tokenize(text),
        pos: 0,
    };
    let mut profiles = Vec::new();
    while parser.peek().is_some() {
        profiles.push(parser.parse_profile()?);
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_profile() {
        let text = r#"
            # comment line
            profile media_app /usr/bin/media_app flags=(enforce) {
              capability net_bind_service,
              network inet,
              /usr/lib/** rm,      # inline comment
              /dev/audio rwi,
              deny /dev/car/** rwi,
            }
        "#;
        let profiles = parse_profiles(text).unwrap();
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.name, "media_app");
        assert!(p.attaches_to("/usr/bin/media_app"));
        assert_eq!(p.mode, ProfileMode::Enforce);
        assert_eq!(p.capabilities, vec![Capability::NetBindService]);
        assert_eq!(p.networks, vec![SocketFamily::Inet]);
        assert_eq!(p.path_rules.len(), 3);
        assert!(p.path_rules[2].deny);
    }

    #[test]
    fn parses_multiple_profiles() {
        let text = r#"
            profile a { /x r, }
            profile b flags=(complain) { /y w, }
        "#;
        let profiles = parse_profiles(text).unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[1].mode, ProfileMode::Complain);
        assert!(profiles[0].attachment.is_none());
    }

    #[test]
    fn error_reports_line() {
        let text = "profile a {\n  /x rz,\n}";
        let err = parse_profiles(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("permission letter"));
    }

    #[test]
    fn missing_comma_is_error() {
        let err = parse_profiles("profile a { /x r }").unwrap_err();
        assert!(err.to_string().contains("`,`"), "{err}");
    }

    #[test]
    fn unknown_capability_is_error() {
        let err = parse_profiles("profile a { capability flying, }").unwrap_err();
        assert!(err.to_string().contains("unknown capability"));
    }

    #[test]
    fn unterminated_body_is_error() {
        let err = parse_profiles("profile a { /x r,").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn empty_input_yields_no_profiles() {
        assert!(parse_profiles("").unwrap().is_empty());
        assert!(parse_profiles("  # only comments\n").unwrap().is_empty());
    }

    #[test]
    fn bad_glob_surfaces_as_parse_error() {
        let err = parse_profiles("profile a { /x[ r, }").unwrap_err();
        assert!(err.to_string().contains("invalid glob"));
    }
}
