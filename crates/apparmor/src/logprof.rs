//! Profile generation from complain-mode audit logs (the `aa-logprof`
//! workflow): run a workload under a `complain` profile, collect the
//! would-have-been denials, and turn them into rule suggestions.
//!
//! This is how the baseline profiles for a new IVI application are
//! authored in practice, and it gives the reproduction a realistic way to
//! produce the "default policies" the paper benchmarks against.

use std::collections::BTreeMap;

use sack_kernel::cred::Capability;
use sack_kernel::lsm::SocketFamily;

use crate::module::AuditEvent;
use crate::policy::{PolicyDb, UnknownProfileError};
use crate::profile::{FilePerms, PathRule};

/// Suggested profile amendments derived from an audit log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Suggestions {
    /// Per profile: path → union of permissions that were exercised.
    pub file_rules: BTreeMap<String, BTreeMap<String, FilePerms>>,
    /// Per profile: capabilities that were exercised.
    pub capabilities: BTreeMap<String, Vec<Capability>>,
    /// Per profile: socket families that were exercised.
    pub networks: BTreeMap<String, Vec<SocketFamily>>,
}

impl Suggestions {
    /// True if nothing was learned.
    pub fn is_empty(&self) -> bool {
        self.file_rules.is_empty() && self.capabilities.is_empty() && self.networks.is_empty()
    }

    /// Total number of suggested items.
    pub fn len(&self) -> usize {
        self.file_rules.values().map(BTreeMap::len).sum::<usize>()
            + self.capabilities.values().map(Vec::len).sum::<usize>()
            + self.networks.values().map(Vec::len).sum::<usize>()
    }

    /// Renders the suggestions as profile-language fragments.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut profiles: Vec<&String> = self
            .file_rules
            .keys()
            .chain(self.capabilities.keys())
            .chain(self.networks.keys())
            .collect();
        profiles.sort();
        profiles.dedup();
        for profile in profiles {
            out.push_str(&format!("# additions for profile {profile}\n"));
            for cap in self.capabilities.get(profile).into_iter().flatten() {
                let name = cap.name().strip_prefix("CAP_").unwrap_or(cap.name());
                out.push_str(&format!("    capability {},\n", name.to_ascii_lowercase()));
            }
            for family in self.networks.get(profile).into_iter().flatten() {
                let name = match family {
                    SocketFamily::Unix => "unix",
                    SocketFamily::Inet => "inet",
                };
                out.push_str(&format!("    network {name},\n"));
            }
            for (path, perms) in self.file_rules.get(profile).into_iter().flatten() {
                out.push_str(&format!("    {path} {perms},\n"));
            }
        }
        out
    }
}

fn perm_from_op(op: &str, requested: &str) -> FilePerms {
    match op {
        "ioctl" => FilePerms::IOCTL,
        "mmap" => FilePerms::MMAP,
        "exec" => FilePerms::EXEC,
        _ => FilePerms::parse(requested).unwrap_or(FilePerms::READ),
    }
}

/// Distills an audit log into suggestions. Only complain-mode records
/// (`complain == true`) are considered: enforce-mode denials are policy
/// working as intended, not material for new rules.
pub fn suggest(events: &[AuditEvent]) -> Suggestions {
    let mut s = Suggestions::default();
    for event in events.iter().filter(|e| e.complain) {
        match event.op {
            "capable" => {
                if let Some(cap) = Capability::parse(&event.target) {
                    let caps = s.capabilities.entry(event.profile.clone()).or_default();
                    if !caps.contains(&cap) {
                        caps.push(cap);
                    }
                }
            }
            "socket" => {
                let family = match event.target.as_str() {
                    "AF_UNIX" => Some(SocketFamily::Unix),
                    "AF_INET" => Some(SocketFamily::Inet),
                    _ => None,
                };
                if let Some(family) = family {
                    let nets = s.networks.entry(event.profile.clone()).or_default();
                    if !nets.contains(&family) {
                        nets.push(family);
                    }
                }
            }
            op => {
                let perms = perm_from_op(op, &event.requested);
                let entry = s
                    .file_rules
                    .entry(event.profile.clone())
                    .or_default()
                    .entry(event.target.clone())
                    .or_insert(FilePerms::empty());
                *entry = entry.union(perms);
            }
        }
    }
    s
}

/// Applies suggestions to the loaded profiles (and switches nothing else:
/// the administrator flips `complain` to `enforce` separately).
///
/// # Errors
///
/// [`UnknownProfileError`] if a suggestion references an unloaded profile.
pub fn apply(db: &PolicyDb, suggestions: &Suggestions) -> Result<usize, UnknownProfileError> {
    let mut applied = 0;
    for (profile, rules) in &suggestions.file_rules {
        db.patch(profile, |p| {
            for (path, perms) in rules {
                if let Ok(rule) = PathRule::allow(path, *perms) {
                    p.path_rules.push(rule);
                    applied += 1;
                }
            }
        })?;
    }
    for (profile, caps) in &suggestions.capabilities {
        db.patch(profile, |p| {
            for cap in caps {
                if !p.capabilities.contains(cap) {
                    p.capabilities.push(*cap);
                    applied += 1;
                }
            }
        })?;
    }
    for (profile, nets) in &suggestions.networks {
        db.patch(profile, |p| {
            for family in nets {
                if !p.networks.contains(family) {
                    p.networks.push(*family);
                    applied += 1;
                }
            }
        })?;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::AppArmor;
    use crate::profile::{Profile, ProfileMode};
    use sack_kernel::cred::Credentials;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::lsm::SecurityModule;
    use std::sync::Arc;

    /// End-to-end learning loop: run in complain mode, learn, enforce.
    #[test]
    fn learn_from_complain_run_then_enforce() {
        let db = Arc::new(PolicyDb::new());
        db.load(Profile::new("newapp").complain());
        let apparmor = AppArmor::new(Arc::clone(&db));
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
            .boot();

        // Exercise the app's real behaviour under complain mode.
        let app = kernel.spawn(Credentials::user(1000, 1000));
        apparmor.set_profile(app.pid(), "newapp").unwrap();
        app.write_file("/tmp/newapp.state", b"s").unwrap();
        app.read_to_vec("/tmp/newapp.state").unwrap();

        // Learn.
        let log = apparmor.take_audit_log();
        assert!(!log.is_empty());
        let suggestions = suggest(&log);
        assert!(!suggestions.is_empty());
        let rendered = suggestions.render();
        assert!(rendered.contains("/tmp/newapp.state"), "{rendered}");
        let applied = apply(&db, &suggestions).unwrap();
        assert!(applied >= 1);

        // Enforce: the learned workload now passes, anything else fails.
        db.patch("newapp", |p| p.mode = ProfileMode::Enforce)
            .unwrap();
        apparmor.refresh_confinement();
        assert!(app.read_to_vec("/tmp/newapp.state").is_ok());
        assert!(app.write_file("/etc/other", b"x").is_err());
        assert!(
            apparmor.take_audit_log().iter().all(|e| !e.complain),
            "post-learning denials are enforce-mode"
        );
    }

    #[test]
    fn suggest_unions_permissions_per_path() {
        let events = vec![
            AuditEvent {
                pid: sack_kernel::Pid(1),
                profile: "p".into(),
                op: "open",
                target: "/data/file".into(),
                requested: "r".into(),
                allowed: true,
                complain: true,
            },
            AuditEvent {
                pid: sack_kernel::Pid(1),
                profile: "p".into(),
                op: "file_perm",
                target: "/data/file".into(),
                requested: "w".into(),
                allowed: true,
                complain: true,
            },
            AuditEvent {
                pid: sack_kernel::Pid(1),
                profile: "p".into(),
                op: "ioctl",
                target: "/dev/car/door0".into(),
                requested: "i".into(),
                allowed: true,
                complain: true,
            },
        ];
        let s = suggest(&events);
        assert_eq!(
            s.file_rules["p"]["/data/file"],
            FilePerms::READ | FilePerms::WRITE
        );
        assert_eq!(s.file_rules["p"]["/dev/car/door0"], FilePerms::IOCTL);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn enforce_mode_denials_are_ignored() {
        let events = vec![AuditEvent {
            pid: sack_kernel::Pid(1),
            profile: "p".into(),
            op: "open",
            target: "/secret".into(),
            requested: "r".into(),
            allowed: false,
            complain: false,
        }];
        assert!(suggest(&events).is_empty());
    }

    #[test]
    fn capability_and_network_suggestions() {
        let mk = |op: &'static str, target: &str| AuditEvent {
            pid: sack_kernel::Pid(1),
            profile: "p".into(),
            op,
            target: target.into(),
            requested: String::new(),
            allowed: true,
            complain: true,
        };
        let events = vec![
            mk("capable", "CAP_KILL"),
            mk("capable", "CAP_KILL"), // duplicate collapses
            mk("socket", "AF_UNIX"),
        ];
        let s = suggest(&events);
        assert_eq!(s.capabilities["p"], vec![Capability::Kill]);
        assert_eq!(s.networks["p"], vec![SocketFamily::Unix]);
        let rendered = s.render();
        assert!(rendered.contains("capability kill,"));
        assert!(rendered.contains("network unix,"));
    }

    /// Regression: logprof promotions used to bypass the `PolicyDb`
    /// compile diagnostics. `apply` now funnels through the same compile
    /// path as `load`, so re-promoting an already-learned rule trips the
    /// duplicate-rule lint instead of silently growing the profile.
    #[test]
    fn reapplied_suggestions_trip_load_diagnostics() {
        use crate::policy::CHECK_DUPLICATE_PATH_RULE;

        let db = PolicyDb::new();
        db.load(Profile::new("app"));
        let mut s = Suggestions::default();
        s.file_rules
            .entry("app".into())
            .or_default()
            .insert("/data/file".into(), FilePerms::READ);

        assert_eq!(apply(&db, &s).unwrap(), 1);
        assert!(
            db.take_load_diagnostics().is_empty(),
            "first promotion is clean"
        );

        // An operator re-running logprof on a stale log re-applies the
        // same suggestion; the compile-path lint must flag it.
        assert_eq!(apply(&db, &s).unwrap(), 1);
        let diags = db.take_load_diagnostics();
        assert!(
            diags
                .iter()
                .any(|d| d.check == CHECK_DUPLICATE_PATH_RULE && d.profile == "app"),
            "duplicate-rule lint did not fire: {diags:?}"
        );
    }

    #[test]
    fn apply_to_unknown_profile_errors() {
        let db = PolicyDb::new();
        let mut s = Suggestions::default();
        s.file_rules
            .entry("ghost".into())
            .or_default()
            .insert("/x".into(), FilePerms::READ);
        assert!(apply(&db, &s).is_err());
    }
}
