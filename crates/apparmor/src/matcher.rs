//! Compiled rule matching.
//!
//! Profiles are compiled into a [`CompiledRules`] index before enforcement:
//! rules whose glob has a literal first path component are bucketed by that
//! component, so a `file_permission` check only scans the bucket for the
//! accessed path plus the (usually tiny) list of fully-wildcarded rules.
//! [`CompiledRules::evaluate_scan`] keeps the naive scan-everything path for
//! the ablation benchmark (`ablation_path_matcher`).
//!
//! Both the bucketed index and the scan are O(rules); the build also
//! compiles every rule into one unified [`crate::dfa::Dfa`] whose accepting
//! states carry the pre-folded [`RuleDecision`], so
//! [`CompiledRules::evaluate_dfa`] answers in O(|path|) regardless of rule
//! count. The index and scan are kept as differential-testing oracles.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::dfa::{Alphabet, Dfa, DfaBuilder, DfaStats};
use crate::profile::{FilePerms, PathRule};

/// One compiled rule.
#[derive(Debug, Clone)]
struct CompiledRule {
    glob: crate::glob::Glob,
    perms: FilePerms,
    deny: bool,
}

/// Outcome of evaluating rules for a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RuleDecision {
    /// Union of permissions from matching allow rules.
    pub allowed: FilePerms,
    /// Union of permissions from matching deny rules.
    pub denied: FilePerms,
}

impl RuleDecision {
    /// True if `requested` is fully granted: every requested permission is
    /// allowed by some rule and none is explicitly denied.
    pub fn permits(&self, requested: FilePerms) -> bool {
        self.allowed.difference(self.denied).contains(requested)
            && !self.denied.intersects(requested)
    }
}

impl fmt::Display for RuleDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow={} deny={}", self.allowed, self.denied)
    }
}

/// An indexed, immutable rule set.
pub struct CompiledRules {
    /// Rules bucketed by literal first path component.
    buckets: HashMap<String, Vec<CompiledRule>>,
    /// Rules whose pattern has no literal first component (`/**`, `/*`…).
    global: Vec<CompiledRule>,
    /// All rules merged into one minimized DFA; accepting states carry the
    /// union `RuleDecision` resolved at build time.
    dfa: Dfa<RuleDecision>,
    len: usize,
}

/// Extracts the first path component if it is fully literal in `prefix`.
///
/// `prefix` is the glob's literal prefix; the first component is literal
/// only if the prefix contains a second `/` (so the component is closed).
fn literal_first_component(prefix: &str) -> Option<&str> {
    let rest = prefix.strip_prefix('/')?;
    let idx = rest.find('/')?;
    Some(&rest[..idx])
}

impl CompiledRules {
    /// Compiles a rule list into the index, deriving a private alphabet
    /// from the rules alone.
    pub fn build(rules: &[PathRule]) -> CompiledRules {
        let mut builder = DfaBuilder::new();
        for (tag, rule) in rules.iter().enumerate() {
            builder.add_glob(&rule.glob, tag as u32);
        }
        Self::build_inner(rules, &Arc::new(builder.alphabet()))
    }

    /// Compiles a rule list against a shared byte-class alphabet (one table
    /// for every profile of a namespace). The alphabet must refine what the
    /// rules require — the `PolicyDb` guarantees this by rebuilding the
    /// shared table whenever [`Alphabet::would_split`] says a new rule
    /// separates bytes it currently merges.
    pub fn build_with_alphabet(rules: &[PathRule], alphabet: &Arc<Alphabet>) -> CompiledRules {
        Self::build_inner(rules, alphabet)
    }

    fn build_inner(rules: &[PathRule], alphabet: &Arc<Alphabet>) -> CompiledRules {
        let mut buckets: HashMap<String, Vec<CompiledRule>> = HashMap::new();
        let mut global = Vec::new();
        let mut builder = DfaBuilder::new();
        for (tag, rule) in rules.iter().enumerate() {
            builder.add_glob(&rule.glob, tag as u32);
            let compiled = CompiledRule {
                glob: rule.glob.clone(),
                perms: rule.perms,
                deny: rule.deny,
            };
            match literal_first_component(rule.glob.literal_prefix()) {
                Some(comp) => buckets.entry(comp.to_string()).or_default().push(compiled),
                None => global.push(compiled),
            }
        }
        let dfa = builder.build_with_alphabet(alphabet, |tags| {
            let mut decision = RuleDecision::default();
            for &tag in tags {
                let rule = &rules[tag as usize];
                if rule.deny {
                    decision.denied = decision.denied.union(rule.perms);
                } else {
                    decision.allowed = decision.allowed.union(rule.perms);
                }
            }
            decision
        });
        CompiledRules {
            buckets,
            global,
            dfa,
            len: rules.len(),
        }
    }

    /// The byte-class alphabet the unified DFA was compiled against.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        self.dfa.alphabet()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn accumulate(decision: &mut RuleDecision, rules: &[CompiledRule], path: &str) {
        for rule in rules {
            if rule.glob.matches(path) {
                if rule.deny {
                    decision.denied = decision.denied.union(rule.perms);
                } else {
                    decision.allowed = decision.allowed.union(rule.perms);
                }
            }
        }
    }

    /// Evaluates `path` through the index.
    pub fn evaluate(&self, path: &str) -> RuleDecision {
        let mut decision = RuleDecision::default();
        if !self.buckets.is_empty() {
            if let Some(comp) = path
                .strip_prefix('/')
                .and_then(|rest| rest.split('/').next())
            {
                if let Some(bucket) = self.buckets.get(comp) {
                    Self::accumulate(&mut decision, bucket, path);
                }
            }
        }
        Self::accumulate(&mut decision, &self.global, path);
        decision
    }

    /// Evaluates `path` by scanning every rule (no index) — the ablation
    /// baseline. Produces the same decision as [`CompiledRules::evaluate`].
    pub fn evaluate_scan(&self, path: &str) -> RuleDecision {
        let mut decision = RuleDecision::default();
        for bucket in self.buckets.values() {
            Self::accumulate(&mut decision, bucket, path);
        }
        Self::accumulate(&mut decision, &self.global, path);
        decision
    }

    /// Evaluates `path` with a single walk of the unified DFA — O(|path|)
    /// independent of rule count. Produces the same decision as
    /// [`CompiledRules::evaluate`] and [`CompiledRules::evaluate_scan`].
    pub fn evaluate_dfa(&self, path: &str) -> RuleDecision {
        *self.dfa.eval(path)
    }

    /// Size statistics of the compiled DFA, for diagnostics.
    pub fn dfa_stats(&self) -> DfaStats {
        self.dfa.stats()
    }
}

impl fmt::Debug for CompiledRules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledRules")
            .field("rules", &self.len)
            .field("buckets", &self.buckets.len())
            .field("global", &self.global.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(specs: &[(&str, &str, bool)]) -> Vec<PathRule> {
        specs
            .iter()
            .map(|(pat, perms, deny)| {
                let perms = FilePerms::parse(perms).unwrap();
                if *deny {
                    PathRule::deny(pat, perms).unwrap()
                } else {
                    PathRule::allow(pat, perms).unwrap()
                }
            })
            .collect()
    }

    #[test]
    fn allow_union_across_rules() {
        let c = CompiledRules::build(&rules(&[
            ("/etc/*", "r", false),
            ("/etc/app.conf", "w", false),
        ]));
        let d = c.evaluate("/etc/app.conf");
        assert!(d.permits(FilePerms::READ | FilePerms::WRITE));
        assert!(!c.evaluate("/etc/other").permits(FilePerms::WRITE));
    }

    #[test]
    fn deny_overrides_allow() {
        let c = CompiledRules::build(&rules(&[
            ("/dev/**", "rwi", false),
            ("/dev/car/door*", "wi", true),
        ]));
        assert!(c.evaluate("/dev/audio").permits(FilePerms::WRITE));
        let d = c.evaluate("/dev/car/door0");
        assert!(!d.permits(FilePerms::WRITE));
        assert!(!d.permits(FilePerms::IOCTL));
        assert!(d.permits(FilePerms::READ), "read was not denied");
    }

    #[test]
    fn unmatched_path_permits_nothing() {
        let c = CompiledRules::build(&rules(&[("/a/*", "r", false)]));
        assert!(!c.evaluate("/b/x").permits(FilePerms::READ));
        assert!(c.evaluate("/b/x").permits(FilePerms::empty()));
    }

    #[test]
    fn index_and_scan_agree() {
        let c = CompiledRules::build(&rules(&[
            ("/etc/*", "r", false),
            ("/dev/car/**", "rwi", false),
            ("/**", "r", false),
            ("/dev/car/door[0-3]", "i", true),
            ("/*", "w", false),
        ]));
        for path in [
            "/etc/passwd",
            "/dev/car/door1",
            "/dev/car/window0",
            "/toplevel",
            "/a/b/c",
        ] {
            assert_eq!(c.evaluate(path), c.evaluate_scan(path), "path {path}");
            assert_eq!(c.evaluate(path), c.evaluate_dfa(path), "dfa path {path}");
        }
    }

    #[test]
    fn dfa_resolves_deny_at_build_time() {
        let c = CompiledRules::build(&rules(&[
            ("/dev/**", "rwi", false),
            ("/dev/car/door*", "wi", true),
        ]));
        let d = c.evaluate_dfa("/dev/car/door0");
        assert_eq!(d, c.evaluate("/dev/car/door0"));
        assert!(!d.permits(FilePerms::WRITE));
        assert!(d.permits(FilePerms::READ));
        assert!(c.evaluate_dfa("/dev/audio").permits(FilePerms::WRITE));
        assert!(!c.evaluate_dfa("/sys/x").permits(FilePerms::READ));
        assert!(c.dfa_stats().states > 0);
    }

    #[test]
    fn wildcard_first_component_goes_global() {
        let c = CompiledRules::build(&rules(&[("/**", "r", false)]));
        assert_eq!(c.len(), 1);
        assert!(c.evaluate("/any/where").permits(FilePerms::READ));
        // Bucketed rule with wildcard *inside* first component stays global.
        let c = CompiledRules::build(&rules(&[("/de*/audio", "r", false)]));
        assert!(c.evaluate("/dev/audio").permits(FilePerms::READ));
    }

    #[test]
    fn literal_first_component_extraction() {
        assert_eq!(literal_first_component("/dev/car/door"), Some("dev"));
        assert_eq!(
            literal_first_component("/dev"),
            None,
            "component not closed"
        );
        assert_eq!(literal_first_component("/"), None);
        assert_eq!(literal_first_component(""), None);
    }

    #[test]
    fn empty_rule_set() {
        let c = CompiledRules::build(&[]);
        assert!(c.is_empty());
        assert!(!c.evaluate("/x").permits(FilePerms::READ));
    }
}
