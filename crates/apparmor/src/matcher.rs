//! Compiled rule matching.
//!
//! Profiles are compiled into a [`CompiledRules`] index before enforcement:
//! rules whose glob has a literal first path component are bucketed by that
//! component, so a `file_permission` check only scans the bucket for the
//! accessed path plus the (usually tiny) list of fully-wildcarded rules.
//! [`CompiledRules::evaluate_scan`] keeps the naive scan-everything path for
//! the ablation benchmark (`ablation_path_matcher`).
//!
//! Both the bucketed index and the scan are O(rules); the build also
//! compiles every rule into one unified [`crate::dfa::Dfa`] whose accepting
//! states carry the pre-folded [`RuleDecision`], so
//! [`CompiledRules::evaluate_dfa`] answers in O(|path|) regardless of rule
//! count. The index and scan are kept as differential-testing oracles.
//!
//! The DFA itself lives behind a [`SharedDfa`] handle: one `Arc<SharedDfa>`
//! per *distinct rule body*, shared by every profile whose rules are
//! identical (cross-profile dedup), and optionally deferred — an
//! uncompiled handle builds its DFA on the first hook touch via
//! [`sack_kernel::sync::LazySlot`], with [`CompiledRules::evaluate_dfa`]
//! falling back to the retained bucketed index while a racing compile is
//! in flight (never blocking, never wrong).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use sack_kernel::sync::LazySlot;

use crate::dfa::{Alphabet, Dfa, DfaBuilder, DfaStats};
use crate::profile::{FilePerms, PathRule};

/// One compiled rule.
#[derive(Debug, Clone)]
struct CompiledRule {
    glob: crate::glob::Glob,
    perms: FilePerms,
    deny: bool,
}

/// Outcome of evaluating rules for a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RuleDecision {
    /// Union of permissions from matching allow rules.
    pub allowed: FilePerms,
    /// Union of permissions from matching deny rules.
    pub denied: FilePerms,
}

impl RuleDecision {
    /// True if `requested` is fully granted: every requested permission is
    /// allowed by some rule and none is explicitly denied.
    pub fn permits(&self, requested: FilePerms) -> bool {
        self.allowed.difference(self.denied).contains(requested)
            && !self.denied.intersects(requested)
    }
}

impl fmt::Display for RuleDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allow={} deny={}", self.allowed, self.denied)
    }
}

/// Winner-only hook invoked exactly once, when a deferred [`SharedDfa`]
/// actually compiles — compile counters, `profile_recompile` tracepoints
/// and DFA-size lints all hang off it.
pub type OnCompile = Box<dyn Fn(&Dfa<RuleDecision>) + Send + Sync>;

/// Deferred-build input for a [`SharedDfa`] created lazily.
struct LazyBuild {
    rules: Vec<PathRule>,
    on_compile: OnCompile,
}

/// A unified profile DFA that may not be compiled yet.
///
/// One `Arc<SharedDfa>` is the unit of cross-profile deduplication: the
/// `PolicyDb` hands every profile with an identical rule body the same
/// handle, so each distinct body compiles (and is resident) at most once.
/// A handle is either *ready* (eager compile already ran) or *deferred*:
/// the DFA is built by the first caller of [`SharedDfa::force`] — the
/// first hook to touch any sharing profile — under the at-most-once
/// [`LazySlot`] protocol.
pub struct SharedDfa {
    slot: LazySlot<Dfa<RuleDecision>>,
    /// The byte-class alphabet any build of this handle compiles against
    /// (also the answer to [`SharedDfa::alphabet`] before the DFA exists).
    alphabet: Arc<Alphabet>,
    /// Build input for deferred handles; `None` when constructed ready.
    lazy: Option<LazyBuild>,
}

impl SharedDfa {
    /// Wraps an eagerly-built DFA.
    fn ready(dfa: Dfa<RuleDecision>) -> SharedDfa {
        SharedDfa {
            alphabet: Arc::clone(dfa.alphabet()),
            slot: LazySlot::ready(dfa),
            lazy: None,
        }
    }

    /// Creates a deferred handle that compiles `rules` against `alphabet`
    /// on first touch, invoking `on_compile` exactly once from the winner.
    pub(crate) fn deferred(
        rules: Vec<PathRule>,
        alphabet: Arc<Alphabet>,
        on_compile: OnCompile,
    ) -> SharedDfa {
        SharedDfa {
            slot: LazySlot::empty(),
            alphabet,
            lazy: Some(LazyBuild { rules, on_compile }),
        }
    }

    /// The compiled DFA, if the build has completed.
    pub fn get(&self) -> Option<&Dfa<RuleDecision>> {
        self.slot.get()
    }

    /// Compile-or-reuse: returns the DFA, building it if this caller wins
    /// the first-touch claim. Returns `None` only while another thread's
    /// build is in flight — the caller falls back to its scan matcher
    /// rather than blocking.
    pub fn force(&self) -> Option<&Dfa<RuleDecision>> {
        if let Some(dfa) = self.slot.get() {
            return Some(dfa);
        }
        // A ready handle is always published, so reaching here means the
        // handle is deferred.
        let lazy = self.lazy.as_ref()?;
        self.slot.get_or_build(|| {
            let dfa = build_dfa(&lazy.rules, &self.alphabet);
            (lazy.on_compile)(&dfa);
            dfa
        })
    }

    /// True once the DFA has been built (eagerly or by a first touch).
    pub fn is_compiled(&self) -> bool {
        self.slot.is_built()
    }

    /// The alphabet this handle compiles (or compiled) against.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Size statistics of the compiled DFA; `None` while uncompiled.
    pub fn stats(&self) -> Option<DfaStats> {
        self.slot.get().map(Dfa::stats)
    }
}

impl fmt::Debug for SharedDfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedDfa")
            .field("compiled", &self.is_compiled())
            .field("deferred", &self.lazy.is_some())
            .finish()
    }
}

/// Compiles `rules` into one unified, minimized DFA against a shared
/// alphabet — the expensive half of a profile compile, shared by the
/// eager, deferred, and first-touch paths.
fn build_dfa(rules: &[PathRule], alphabet: &Arc<Alphabet>) -> Dfa<RuleDecision> {
    let mut builder = DfaBuilder::new();
    for (tag, rule) in rules.iter().enumerate() {
        builder.add_glob(&rule.glob, tag as u32);
    }
    builder.build_with_alphabet(alphabet, |tags| {
        let mut decision = RuleDecision::default();
        for &tag in tags {
            let rule = &rules[tag as usize];
            if rule.deny {
                decision.denied = decision.denied.union(rule.perms);
            } else {
                decision.allowed = decision.allowed.union(rule.perms);
            }
        }
        decision
    })
}

/// An indexed, immutable rule set.
pub struct CompiledRules {
    /// Rules bucketed by literal first path component.
    buckets: HashMap<String, Vec<CompiledRule>>,
    /// Rules whose pattern has no literal first component (`/**`, `/*`…).
    global: Vec<CompiledRule>,
    /// All rules merged into one minimized DFA; accepting states carry the
    /// union `RuleDecision` resolved at build time. Shared across profiles
    /// with identical rule bodies, and possibly still uncompiled.
    dfa: Arc<SharedDfa>,
    len: usize,
}

/// Extracts the first path component if it is fully literal in `prefix`.
///
/// `prefix` is the glob's literal prefix; the first component is literal
/// only if the prefix contains a second `/` (so the component is closed).
fn literal_first_component(prefix: &str) -> Option<&str> {
    let rest = prefix.strip_prefix('/')?;
    let idx = rest.find('/')?;
    Some(&rest[..idx])
}

impl CompiledRules {
    /// Compiles a rule list into the index, deriving a private alphabet
    /// from the rules alone.
    pub fn build(rules: &[PathRule]) -> CompiledRules {
        let mut builder = DfaBuilder::new();
        for (tag, rule) in rules.iter().enumerate() {
            builder.add_glob(&rule.glob, tag as u32);
        }
        Self::build_inner(rules, &Arc::new(builder.alphabet()))
    }

    /// Compiles a rule list against a shared byte-class alphabet (one table
    /// for every profile of a namespace). The alphabet must refine what the
    /// rules require — the `PolicyDb` guarantees this by rebuilding the
    /// shared table whenever [`Alphabet::would_split`] says a new rule
    /// separates bytes it currently merges.
    pub fn build_with_alphabet(rules: &[PathRule], alphabet: &Arc<Alphabet>) -> CompiledRules {
        Self::build_inner(rules, alphabet)
    }

    fn build_inner(rules: &[PathRule], alphabet: &Arc<Alphabet>) -> CompiledRules {
        Self::build_sharing(
            rules,
            Arc::new(SharedDfa::ready(build_dfa(rules, alphabet))),
        )
    }

    /// Builds the cheap index (buckets + global scan lists) around an
    /// existing [`SharedDfa`] handle — the dedup path (`dfa` came from
    /// another profile with the identical rule body) and the lazy path
    /// (`dfa` is a deferred handle for this body). The caller guarantees
    /// `dfa` was created for exactly this rule body.
    pub(crate) fn build_sharing(rules: &[PathRule], dfa: Arc<SharedDfa>) -> CompiledRules {
        let mut buckets: HashMap<String, Vec<CompiledRule>> = HashMap::new();
        let mut global = Vec::new();
        for rule in rules {
            let compiled = CompiledRule {
                glob: rule.glob.clone(),
                perms: rule.perms,
                deny: rule.deny,
            };
            match literal_first_component(rule.glob.literal_prefix()) {
                Some(comp) => buckets.entry(comp.to_string()).or_default().push(compiled),
                None => global.push(compiled),
            }
        }
        CompiledRules {
            buckets,
            global,
            dfa,
            len: rules.len(),
        }
    }

    /// The byte-class alphabet the unified DFA is (or will be) compiled
    /// against.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        self.dfa.alphabet()
    }

    /// The shared DFA handle — one per distinct rule body. Profiles with
    /// identical bodies return `Arc::ptr_eq` handles (the dedup pin), and
    /// the handle reports whether the DFA has compiled yet.
    pub fn dfa_handle(&self) -> &Arc<SharedDfa> {
        &self.dfa
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn accumulate(decision: &mut RuleDecision, rules: &[CompiledRule], path: &str) {
        for rule in rules {
            if rule.glob.matches(path) {
                if rule.deny {
                    decision.denied = decision.denied.union(rule.perms);
                } else {
                    decision.allowed = decision.allowed.union(rule.perms);
                }
            }
        }
    }

    /// Evaluates `path` through the index.
    pub fn evaluate(&self, path: &str) -> RuleDecision {
        let mut decision = RuleDecision::default();
        if !self.buckets.is_empty() {
            if let Some(comp) = path
                .strip_prefix('/')
                .and_then(|rest| rest.split('/').next())
            {
                if let Some(bucket) = self.buckets.get(comp) {
                    Self::accumulate(&mut decision, bucket, path);
                }
            }
        }
        Self::accumulate(&mut decision, &self.global, path);
        decision
    }

    /// Evaluates `path` by scanning every rule (no index) — the ablation
    /// baseline. Produces the same decision as [`CompiledRules::evaluate`].
    pub fn evaluate_scan(&self, path: &str) -> RuleDecision {
        let mut decision = RuleDecision::default();
        for bucket in self.buckets.values() {
            Self::accumulate(&mut decision, bucket, path);
        }
        Self::accumulate(&mut decision, &self.global, path);
        decision
    }

    /// Evaluates `path` with a single walk of the unified DFA — O(|path|)
    /// independent of rule count. Produces the same decision as
    /// [`CompiledRules::evaluate`] and [`CompiledRules::evaluate_scan`].
    ///
    /// On an uncompiled (lazily-loaded) body this is the first-touch
    /// compile point: the winning caller builds the DFA once for every
    /// sharing profile; a caller racing that in-flight build answers from
    /// the retained bucketed index instead — it never blocks and its
    /// decision is identical by the differential oracles.
    pub fn evaluate_dfa(&self, path: &str) -> RuleDecision {
        match self.dfa.force() {
            Some(dfa) => *dfa.eval(path),
            None => self.evaluate(path),
        }
    }

    /// Size statistics of the compiled DFA, for diagnostics; `None` while
    /// a lazily-loaded body is still uncompiled.
    pub fn dfa_stats(&self) -> Option<DfaStats> {
        self.dfa.stats()
    }
}

impl fmt::Debug for CompiledRules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledRules")
            .field("rules", &self.len)
            .field("buckets", &self.buckets.len())
            .field("global", &self.global.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(specs: &[(&str, &str, bool)]) -> Vec<PathRule> {
        specs
            .iter()
            .map(|(pat, perms, deny)| {
                let perms = FilePerms::parse(perms).unwrap();
                if *deny {
                    PathRule::deny(pat, perms).unwrap()
                } else {
                    PathRule::allow(pat, perms).unwrap()
                }
            })
            .collect()
    }

    #[test]
    fn allow_union_across_rules() {
        let c = CompiledRules::build(&rules(&[
            ("/etc/*", "r", false),
            ("/etc/app.conf", "w", false),
        ]));
        let d = c.evaluate("/etc/app.conf");
        assert!(d.permits(FilePerms::READ | FilePerms::WRITE));
        assert!(!c.evaluate("/etc/other").permits(FilePerms::WRITE));
    }

    #[test]
    fn deny_overrides_allow() {
        let c = CompiledRules::build(&rules(&[
            ("/dev/**", "rwi", false),
            ("/dev/car/door*", "wi", true),
        ]));
        assert!(c.evaluate("/dev/audio").permits(FilePerms::WRITE));
        let d = c.evaluate("/dev/car/door0");
        assert!(!d.permits(FilePerms::WRITE));
        assert!(!d.permits(FilePerms::IOCTL));
        assert!(d.permits(FilePerms::READ), "read was not denied");
    }

    #[test]
    fn unmatched_path_permits_nothing() {
        let c = CompiledRules::build(&rules(&[("/a/*", "r", false)]));
        assert!(!c.evaluate("/b/x").permits(FilePerms::READ));
        assert!(c.evaluate("/b/x").permits(FilePerms::empty()));
    }

    #[test]
    fn index_and_scan_agree() {
        let c = CompiledRules::build(&rules(&[
            ("/etc/*", "r", false),
            ("/dev/car/**", "rwi", false),
            ("/**", "r", false),
            ("/dev/car/door[0-3]", "i", true),
            ("/*", "w", false),
        ]));
        for path in [
            "/etc/passwd",
            "/dev/car/door1",
            "/dev/car/window0",
            "/toplevel",
            "/a/b/c",
        ] {
            assert_eq!(c.evaluate(path), c.evaluate_scan(path), "path {path}");
            assert_eq!(c.evaluate(path), c.evaluate_dfa(path), "dfa path {path}");
        }
    }

    #[test]
    fn dfa_resolves_deny_at_build_time() {
        let c = CompiledRules::build(&rules(&[
            ("/dev/**", "rwi", false),
            ("/dev/car/door*", "wi", true),
        ]));
        let d = c.evaluate_dfa("/dev/car/door0");
        assert_eq!(d, c.evaluate("/dev/car/door0"));
        assert!(!d.permits(FilePerms::WRITE));
        assert!(d.permits(FilePerms::READ));
        assert!(c.evaluate_dfa("/dev/audio").permits(FilePerms::WRITE));
        assert!(!c.evaluate_dfa("/sys/x").permits(FilePerms::READ));
        assert!(c.dfa_stats().expect("eager build compiles").states > 0);
    }

    #[test]
    fn wildcard_first_component_goes_global() {
        let c = CompiledRules::build(&rules(&[("/**", "r", false)]));
        assert_eq!(c.len(), 1);
        assert!(c.evaluate("/any/where").permits(FilePerms::READ));
        // Bucketed rule with wildcard *inside* first component stays global.
        let c = CompiledRules::build(&rules(&[("/de*/audio", "r", false)]));
        assert!(c.evaluate("/dev/audio").permits(FilePerms::READ));
    }

    #[test]
    fn literal_first_component_extraction() {
        assert_eq!(literal_first_component("/dev/car/door"), Some("dev"));
        assert_eq!(
            literal_first_component("/dev"),
            None,
            "component not closed"
        );
        assert_eq!(literal_first_component("/"), None);
        assert_eq!(literal_first_component(""), None);
    }

    #[test]
    fn empty_rule_set() {
        let c = CompiledRules::build(&[]);
        assert!(c.is_empty());
        assert!(!c.evaluate("/x").permits(FilePerms::READ));
    }

    #[test]
    fn deferred_body_compiles_on_first_touch_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let body = rules(&[("/dev/car/**", "rw", false), ("/dev/car/door*", "w", true)]);
        let alphabet = Arc::new(Alphabet::for_globs(body.iter().map(|r| &r.glob)));
        let compiles = Arc::new(AtomicUsize::new(0));
        let hook = Arc::clone(&compiles);
        let shared = Arc::new(SharedDfa::deferred(
            body.clone(),
            Arc::clone(&alphabet),
            Box::new(move |_| {
                hook.fetch_add(1, Ordering::SeqCst);
            }),
        ));
        let c = CompiledRules::build_sharing(&body, Arc::clone(&shared));
        assert!(!c.dfa_handle().is_compiled());
        assert_eq!(c.dfa_stats(), None, "uncompiled body reports no stats");
        // First touch compiles; the decision matches the scan oracle.
        let d = c.evaluate_dfa("/dev/car/door0");
        assert_eq!(d, c.evaluate("/dev/car/door0"));
        assert!(c.dfa_handle().is_compiled());
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        // Further touches reuse the published table.
        c.evaluate_dfa("/dev/car/window");
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        assert!(Arc::ptr_eq(c.alphabet(), &alphabet));
    }

    #[test]
    fn shared_handle_dedups_across_rule_sets() {
        let body = rules(&[("/etc/*", "r", false)]);
        let alphabet = Arc::new(Alphabet::for_globs(body.iter().map(|r| &r.glob)));
        let shared = Arc::new(SharedDfa::deferred(
            body.clone(),
            alphabet,
            Box::new(|_| {}),
        ));
        let a = CompiledRules::build_sharing(&body, Arc::clone(&shared));
        let b = CompiledRules::build_sharing(&body, Arc::clone(&shared));
        assert!(Arc::ptr_eq(a.dfa_handle(), b.dfa_handle()));
        // Touching one profile compiles the body for every sharer.
        a.evaluate_dfa("/etc/passwd");
        assert!(b.dfa_handle().is_compiled());
        assert_eq!(b.evaluate_dfa("/etc/passwd"), b.evaluate("/etc/passwd"));
    }
}
