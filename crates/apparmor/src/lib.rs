//! # sack-apparmor — AppArmor-like baseline MAC module
//!
//! A path-based mandatory-access-control security module for the simulated
//! kernel in `sack-kernel`, modelled on AppArmor: named profiles with glob
//! file rules, capability and network rules, enforce/complain modes,
//! executable attachment, fork inheritance, and live profile replacement.
//!
//! This is the baseline the SACK paper compares against (Table II) and the
//! enforcement backend that SACK-enhanced AppArmor patches at situation
//! transitions (`sack-core::enhance`).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use sack_apparmor::{AppArmor, PolicyDb};
//! use sack_kernel::{KernelBuilder, Credentials, SecurityModule};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let policy = Arc::new(PolicyDb::new());
//! policy.load_text("profile app { /tmp/** rw, }")?;
//! let apparmor = AppArmor::new(Arc::clone(&policy));
//! let kernel = KernelBuilder::new()
//!     .security_module(apparmor.clone() as Arc<dyn SecurityModule>)
//!     .boot();
//! let proc = kernel.spawn(Credentials::root());
//! apparmor.set_profile(proc.pid(), "app")?;
//! proc.write_file("/tmp/ok", b"fine")?;          // allowed
//! assert!(proc.write_file("/etc/x", b"no").is_err()); // denied
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dfa;
pub mod glob;
pub mod logprof;
pub mod matcher;
pub mod module;
pub mod parser;
pub mod pipeline;
pub mod policy;
pub mod profile;

pub use dfa::{Alphabet, Dfa, DfaBuilder, DfaStats};
pub use glob::Glob;
pub use logprof::Suggestions;
pub use matcher::{CompiledRules, RuleDecision, SharedDfa};
pub use module::{AppArmor, AuditEvent};
pub use parser::{parse_profiles, ParseProfileError};
pub use policy::{CompileMode, CompiledProfile, LoadDiagnostic, PolicyDb, UnknownProfileError};
pub use profile::{FilePerms, PathRule, Profile, ProfileMode};
