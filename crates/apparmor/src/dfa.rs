//! Unified multi-glob DFA matcher.
//!
//! Real AppArmor compiles every path rule in a profile into one DFA so a
//! single pass over the path answers "which rules match" regardless of how
//! many rules the profile holds. This module does the same for our glob
//! dialect: [`DfaBuilder`] collects rule globs (each tagged with a caller
//! chosen `u32`), builds a combined position NFA re-using the token
//! semantics of [`crate::glob`], determinizes it by subset construction
//! over a compressed byte alphabet, and minimizes the result with Moore's
//! partition refinement. Accepting states are annotated at *build time* by
//! folding the set of matching rule tags into a caller-defined annotation
//! (e.g. a [`crate::matcher::RuleDecision`] union, or a first-match type
//! label for TE), so evaluation is a single O(|path|) table walk with the
//! rule resolution already baked in.
//!
//! The annotation fold runs during construction only; [`Dfa::eval`] never
//! allocates and touches one `u32` table cell per input byte.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use crate::glob::{token_matches, Glob, Token};

/// Sentinel transition target: no live NFA position remains.
const DEAD: u32 = u32::MAX;

/// A byte-equivalence partition of the 256-byte alphabet.
///
/// Two bytes are interchangeable when every distinct consuming token (and
/// the `/` test the wildcards use) treats them identically; transition
/// tables then need one column per class instead of 256. An alphabet built
/// from a *superset* of a machine's tokens is merely finer than necessary —
/// refinement preserves the transition relation — so one table can be
/// shared across every profile of a namespace and across every
/// [`crate::dfa::Dfa`] built from it (real AppArmor shares `equiv` tables
/// the same way). Sharing via `Arc` also makes the shared-alphabet
/// invariant checkable with `Arc::ptr_eq`.
#[derive(Debug, Clone)]
pub struct Alphabet {
    /// Distinct discriminating tokens the partition was derived from
    /// (`**` excluded — it matches every byte and never discriminates).
    discr: Vec<Token>,
    /// byte → equivalence class.
    classes: Box<[u16; 256]>,
    class_count: usize,
}

impl Alphabet {
    /// Builds the partition for a set of discriminating tokens.
    fn from_tokens(discr: Vec<Token>) -> Alphabet {
        let mut sig_to_class: HashMap<Vec<bool>, u16> = HashMap::new();
        let mut classes = Box::new([0u16; 256]);
        for b in 0..=255u8 {
            let mut sig = Vec::with_capacity(discr.len() + 1);
            sig.push(b == b'/');
            for tok in &discr {
                sig.push(match tok {
                    Token::Star => b != b'/',
                    other => token_matches(other, b),
                });
            }
            let next = sig_to_class.len() as u16;
            classes[b as usize] = *sig_to_class.entry(sig).or_insert(next);
        }
        let class_count = sig_to_class.len();
        Alphabet {
            discr,
            classes,
            class_count,
        }
    }

    /// Collects the distinct discriminating tokens of `globs` into `out`.
    fn collect_tokens<'a>(globs: impl IntoIterator<Item = &'a Glob>, out: &mut Vec<Token>) {
        for glob in globs {
            for pat in glob.alternates() {
                for tok in &pat.tokens {
                    if !matches!(tok, Token::DoubleStar) && !out.contains(tok) {
                        out.push(tok.clone());
                    }
                }
            }
        }
    }

    /// Builds the shared alphabet for a set of globs (e.g. every path rule
    /// of every profile in a namespace).
    pub fn for_globs<'a>(globs: impl IntoIterator<Item = &'a Glob>) -> Alphabet {
        let mut discr = Vec::new();
        Self::collect_tokens(globs, &mut discr);
        Alphabet::from_tokens(discr)
    }

    /// The empty-token alphabet: `/` vs everything else.
    pub fn minimal() -> Alphabet {
        Alphabet::from_tokens(Vec::new())
    }

    /// Number of equivalence classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The equivalence class of `byte`.
    pub fn class_of(&self, byte: u8) -> u16 {
        self.classes[byte as usize]
    }

    /// True if compiling `globs` against this alphabet would need a finer
    /// partition — i.e. some new token distinguishes two bytes currently in
    /// the same class. When this returns `false` the existing table can be
    /// reused as-is (the common case for rule edits that only recombine
    /// bytes the table already separates).
    pub fn would_split<'a>(&self, globs: impl IntoIterator<Item = &'a Glob>) -> bool {
        let mut candidates = Vec::new();
        Self::collect_tokens(globs, &mut candidates);
        self.tokens_would_split(&candidates)
    }

    /// Core of [`Alphabet::would_split`]: do any of `candidates` separate
    /// two bytes the partition currently merges?
    fn tokens_would_split(&self, candidates: &[Token]) -> bool {
        let candidates: Vec<&Token> = candidates
            .iter()
            .filter(|tok| !self.discr.contains(tok))
            .collect();
        if candidates.is_empty() {
            return false;
        }
        // A representative byte per class, then check every byte agrees
        // with its representative under every candidate token.
        let mut rep: Vec<Option<u8>> = vec![None; self.class_count];
        for b in 0..=255u8 {
            let class = self.classes[b as usize] as usize;
            match rep[class] {
                None => rep[class] = Some(b),
                Some(r) => {
                    for tok in &candidates {
                        let matches = |b| match tok {
                            Token::Star => b != b'/',
                            other => token_matches(other, b),
                        };
                        if matches(b) != matches(r) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

/// Size statistics for a compiled [`Dfa`], surfaced by `sack-analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfaStats {
    /// Number of (minimized) DFA states.
    pub states: usize,
    /// Number of live (non-dead) transitions in the table.
    pub transitions: usize,
    /// Number of byte-equivalence classes the alphabet compressed to.
    pub classes: usize,
}

/// Accumulates tagged globs and compiles them into a single [`Dfa`].
#[derive(Debug, Default)]
pub struct DfaBuilder {
    /// Flattened NFA positions; `Some(tok)` consumes input, `None` accepts.
    positions: Vec<Option<Token>>,
    /// The tag of the glob that owns each position.
    tag_of: Vec<u32>,
    /// First position of every brace-alternate.
    starts: Vec<u32>,
}

impl DfaBuilder {
    /// Creates an empty builder.
    pub fn new() -> DfaBuilder {
        DfaBuilder::default()
    }

    /// Adds one glob under `tag`. Tags need not be unique; every accepting
    /// position remembers its tag so the build-time fold can resolve
    /// overlapping rules.
    pub fn add_glob(&mut self, glob: &Glob, tag: u32) {
        for pat in glob.alternates() {
            self.starts.push(self.positions.len() as u32);
            for tok in &pat.tokens {
                self.positions.push(Some(tok.clone()));
                self.tag_of.push(tag);
            }
            self.positions.push(None);
            self.tag_of.push(tag);
        }
    }

    /// True if no globs have been added.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Epsilon closure: a wildcard position may be skipped, so position `i`
    /// implies `i + 1`. Keeps the set sorted and deduplicated (the set is
    /// the subset-construction hash key).
    fn close(&self, set: &mut Vec<u32>) {
        let mut i = 0;
        while i < set.len() {
            let p = set[i] as usize;
            if matches!(
                self.positions[p],
                Some(Token::Star) | Some(Token::DoubleStar)
            ) {
                let next = set[i] + 1;
                if !set.contains(&next) {
                    set.push(next);
                }
            }
            i += 1;
        }
        set.sort_unstable();
        set.dedup();
    }

    /// One NFA step on `byte`: wildcards self-loop (a `*` only off `/`),
    /// consuming tokens advance — exactly the transition relation of
    /// `glob::Nfa::step`.
    fn step(&self, set: &[u32], byte: u8) -> Vec<u32> {
        let mut out = Vec::with_capacity(set.len());
        for &p in set {
            match &self.positions[p as usize] {
                None => {}
                Some(Token::Star) if byte != b'/' => out.push(p),
                Some(Token::Star) => {}
                Some(Token::DoubleStar) => out.push(p),
                Some(tok) if token_matches(tok, byte) => out.push(p + 1),
                Some(_) => {}
            }
        }
        self.close(&mut out);
        out
    }

    /// Sorted, deduplicated tags of the accepting positions in `set`.
    fn accepting_tags(&self, set: &[u32]) -> Vec<u32> {
        let mut tags: Vec<u32> = set
            .iter()
            .filter(|&&p| self.positions[p as usize].is_none())
            .map(|&p| self.tag_of[p as usize])
            .collect();
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// The distinct discriminating tokens of the accumulated globs.
    fn discriminating_tokens(&self) -> Vec<Token> {
        let mut discr: Vec<Token> = Vec::new();
        for tok in self.positions.iter().flatten() {
            // `**` matches every byte; it never discriminates.
            if !matches!(tok, Token::DoubleStar) && !discr.contains(tok) {
                discr.push(tok.clone());
            }
        }
        discr
    }

    /// The byte-equivalence alphabet induced by the accumulated globs
    /// alone. [`DfaBuilder::build`] uses this; multi-machine callers build
    /// a shared [`Alphabet`] over all their globs instead.
    pub fn alphabet(&self) -> Alphabet {
        Alphabet::from_tokens(self.discriminating_tokens())
    }

    /// Determinizes and minimizes the accumulated globs. `fold` maps the
    /// set of rule tags accepting in a state to that state's annotation;
    /// `fold(&[])` is the annotation of non-accepting (and dead) states.
    pub fn build<A, F>(&self, fold: F) -> Dfa<A>
    where
        A: Clone + Eq + Hash,
        F: Fn(&[u32]) -> A,
    {
        self.build_with_alphabet(&Arc::new(self.alphabet()), fold)
    }

    /// [`DfaBuilder::build`] against a caller-supplied shared alphabet.
    ///
    /// The alphabet must refine this machine's own partition — i.e. built
    /// from a superset of its globs, or from a partition that
    /// [`Alphabet::would_split`] reports as not split by them. A finer
    /// partition only adds redundant columns; it never changes the language
    /// or the annotations.
    pub fn build_with_alphabet<A, F>(&self, alphabet: &Arc<Alphabet>, fold: F) -> Dfa<A>
    where
        A: Clone + Eq + Hash,
        F: Fn(&[u32]) -> A,
    {
        debug_assert!(
            !alphabet.tokens_would_split(&self.discriminating_tokens()),
            "shared alphabet is coarser than this machine's tokens require"
        );
        let class_count = alphabet.class_count;
        // One representative byte per class, for stepping the NFA.
        let mut rep = vec![0u8; class_count];
        for b in (0..=255u8).rev() {
            rep[alphabet.classes[b as usize] as usize] = b;
        }

        let mut start_set: Vec<u32> = self.starts.clone();
        self.close(&mut start_set);

        let mut index: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut sets: Vec<Vec<u32>> = Vec::new();
        index.insert(start_set.clone(), 0);
        sets.push(start_set);

        let mut table: Vec<u32> = Vec::new();
        let mut accepts: Vec<A> = Vec::new();

        let mut next = 0usize;
        while next < sets.len() {
            let set = sets[next].clone();
            accepts.push(fold(&self.accepting_tags(&set)));
            for &rep_byte in &rep {
                let out = self.step(&set, rep_byte);
                if out.is_empty() {
                    table.push(DEAD);
                    continue;
                }
                let id = match index.get(&out) {
                    Some(&id) => id,
                    None => {
                        let id = sets.len() as u32;
                        index.insert(out.clone(), id);
                        sets.push(out);
                        id
                    }
                };
                table.push(id);
            }
            next += 1;
        }

        let empty = fold(&[]);
        let dfa = Dfa {
            alphabet: Arc::clone(alphabet),
            table,
            accepts,
            start: 0,
            empty,
        };
        minimize(dfa)
    }
}

/// Moore partition refinement: start from blocks of annotation-equal
/// states, split until transition structure agrees, then rebuild the table
/// over blocks. Language and annotations are preserved exactly.
fn minimize<A: Clone + Eq + Hash>(dfa: Dfa<A>) -> Dfa<A> {
    let n = dfa.accepts.len();
    let c = dfa.alphabet.class_count;

    let mut block: Vec<u32> = Vec::with_capacity(n);
    let mut annot_ids: HashMap<&A, u32> = HashMap::new();
    for a in &dfa.accepts {
        let next = annot_ids.len() as u32;
        block.push(*annot_ids.entry(a).or_insert(next));
    }
    let mut block_count = annot_ids.len();

    loop {
        let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut next_block = Vec::with_capacity(n);
        for s in 0..n {
            let sig: Vec<u32> = (0..c)
                .map(|cl| {
                    let t = dfa.table[s * c + cl];
                    if t == DEAD {
                        DEAD
                    } else {
                        block[t as usize]
                    }
                })
                .collect();
            let next = sig_ids.len() as u32;
            next_block.push(*sig_ids.entry((block[s], sig)).or_insert(next));
        }
        let next_count = sig_ids.len();
        block = next_block;
        if next_count == block_count {
            break;
        }
        block_count = next_count;
    }

    let mut table = vec![DEAD; block_count * c];
    let mut accepts: Vec<Option<A>> = vec![None; block_count];
    for s in 0..n {
        let b = block[s] as usize;
        if accepts[b].is_none() {
            accepts[b] = Some(dfa.accepts[s].clone());
            for cl in 0..c {
                let t = dfa.table[s * c + cl];
                table[b * c + cl] = if t == DEAD { DEAD } else { block[t as usize] };
            }
        }
    }

    Dfa {
        alphabet: dfa.alphabet,
        table,
        accepts: accepts
            .into_iter()
            .map(|a| a.expect("block member"))
            .collect(),
        start: block[dfa.start as usize],
        empty: dfa.empty,
    }
}

/// A compiled, minimized DFA with per-state annotations of type `A`.
///
/// Evaluation walks one table cell per input byte; the annotation of the
/// final state is the pre-resolved answer for every path reaching it.
#[derive(Debug, Clone)]
pub struct Dfa<A> {
    /// The (possibly shared) byte-equivalence partition.
    alphabet: Arc<Alphabet>,
    /// `table[state * class_count + class]` → next state or [`DEAD`].
    table: Vec<u32>,
    /// Per-state annotation (`fold` of the accepting rule tags).
    accepts: Vec<A>,
    start: u32,
    /// Annotation of the dead state — `fold(&[])`.
    empty: A,
}

impl<A> Dfa<A> {
    /// Walks the table over `path` and returns the reached state's
    /// annotation; falling off the table yields the no-match annotation.
    pub fn eval(&self, path: &str) -> &A {
        let mut state = self.start as usize;
        let class_count = self.alphabet.class_count;
        for &b in path.as_bytes() {
            let class = self.alphabet.classes[b as usize] as usize;
            let next = self.table[state * class_count + class];
            if next == DEAD {
                return &self.empty;
            }
            state = next as usize;
        }
        &self.accepts[state]
    }

    /// The byte-class alphabet this machine was compiled against.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// The no-match annotation (`fold(&[])`).
    pub fn empty_annotation(&self) -> &A {
        &self.empty
    }

    /// Iterates over every reachable state's annotation. With a fold that
    /// preserves the tag sets this turns language questions into set
    /// questions: glob `b` is *covered* by glob `a` iff every annotation
    /// containing `b`'s tag also contains `a`'s, and two globs *overlap*
    /// iff some annotation contains both tags.
    pub fn annotations(&self) -> impl Iterator<Item = &A> {
        self.accepts.iter()
    }

    /// Number of minimized states.
    pub fn state_count(&self) -> usize {
        self.accepts.len()
    }

    /// Number of live transitions in the table.
    pub fn transition_count(&self) -> usize {
        self.table.iter().filter(|&&t| t != DEAD).count()
    }

    /// Size statistics for diagnostics.
    pub fn stats(&self) -> DfaStats {
        DfaStats {
            states: self.state_count(),
            transitions: self.transition_count(),
            classes: self.alphabet.class_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(pat: &str) -> Dfa<bool> {
        let mut b = DfaBuilder::new();
        b.add_glob(&Glob::compile(pat).unwrap(), 0);
        b.build(|tags| !tags.is_empty())
    }

    #[test]
    fn literal_paths() {
        let dfa = single("/dev/car/door0");
        assert!(dfa.eval("/dev/car/door0"));
        assert!(!dfa.eval("/dev/car/door1"));
        assert!(!dfa.eval("/dev/car/door0/x"));
        assert!(!dfa.eval("/dev/car/door"));
    }

    #[test]
    fn star_does_not_cross_slash() {
        let dfa = single("/dev/car/*");
        assert!(dfa.eval("/dev/car/door0"));
        assert!(!dfa.eval("/dev/car/sub/door0"));
        assert!(dfa.eval("/dev/car/"));
    }

    #[test]
    fn double_star_crosses_slash() {
        let dfa = single("/dev/**");
        assert!(dfa.eval("/dev/car/sub/door0"));
        assert!(dfa.eval("/dev/"));
        assert!(!dfa.eval("/sys/dev/"));
    }

    #[test]
    fn classes_and_braces() {
        let dfa = single("/dev/{door,window}[0-3]");
        assert!(dfa.eval("/dev/door2"));
        assert!(dfa.eval("/dev/window0"));
        assert!(!dfa.eval("/dev/door4"));
        assert!(!dfa.eval("/dev/hatch1"));
    }

    #[test]
    fn agrees_with_glob_matches_on_a_corpus() {
        let pats = [
            "/a/*", "/a/**", "/a/?", "/a/[bc]d", "/a/[^b]*", "/{a,b}/c", "/a/b\\*", "/***",
            "/a*b/c", "/**/",
        ];
        let texts = [
            "", "/", "/a", "/a/", "/a/b", "/a/bd", "/a/cd", "/a/dd", "/a/b/c", "/b/c", "/a/b*",
            "/a/xb/c", "/axb/c", "/a/a", "/ab", "/a/b/", "/a//",
        ];
        for pat in pats {
            let glob = Glob::compile(pat).unwrap();
            let mut b = DfaBuilder::new();
            b.add_glob(&glob, 7);
            let dfa = b.build(|t| !t.is_empty());
            for text in texts {
                assert_eq!(
                    *dfa.eval(text),
                    glob.matches(text),
                    "pattern `{pat}` text `{text}`"
                );
            }
        }
    }

    #[test]
    fn tags_fold_over_all_matching_rules() {
        let mut b = DfaBuilder::new();
        b.add_glob(&Glob::compile("/dev/**").unwrap(), 1);
        b.add_glob(&Glob::compile("/dev/door*").unwrap(), 2);
        b.add_glob(&Glob::compile("/sys/*").unwrap(), 4);
        let dfa = b.build(|tags| tags.iter().sum::<u32>());
        assert_eq!(*dfa.eval("/dev/door0"), 3);
        assert_eq!(*dfa.eval("/dev/audio"), 1);
        assert_eq!(*dfa.eval("/sys/kernel"), 4);
        assert_eq!(*dfa.eval("/proc/1"), 0);
        assert_eq!(*dfa.empty_annotation(), 0);
    }

    #[test]
    fn empty_builder_matches_nothing() {
        let b = DfaBuilder::new();
        let dfa = b.build(|t| !t.is_empty());
        assert!(!dfa.eval("/anything"));
        assert!(!dfa.eval(""));
        assert_eq!(dfa.state_count(), 1);
    }

    #[test]
    fn shared_alphabet_preserves_language() {
        // One union alphabet over both machines' globs; each machine built
        // against it must decide exactly as its privately-compiled twin.
        let a = Glob::compile("/dev/car/door[0-3]").unwrap();
        let b = Glob::compile("/sys/{kernel,fs}/**").unwrap();
        let shared = Arc::new(Alphabet::for_globs([&a, &b]));
        for glob in [&a, &b] {
            let mut builder = DfaBuilder::new();
            builder.add_glob(glob, 0);
            let shared_dfa = builder.build_with_alphabet(&shared, |t| !t.is_empty());
            let solo_dfa = builder.build(|t| !t.is_empty());
            assert!(Arc::ptr_eq(shared_dfa.alphabet(), &shared));
            for text in [
                "/dev/car/door0",
                "/dev/car/door4",
                "/sys/kernel/x/y",
                "/sys/fs/",
                "/sys/other",
                "",
            ] {
                assert_eq!(shared_dfa.eval(text), solo_dfa.eval(text), "text `{text}`");
            }
        }
    }

    #[test]
    fn would_split_detects_new_discriminating_bytes() {
        let base = Glob::compile("/dev/car/*").unwrap();
        let alphabet = Alphabet::for_globs([&base]);
        // Same byte vocabulary: no split needed.
        let same = Glob::compile("/dev/rac/*").unwrap();
        assert!(!alphabet.would_split([&same]));
        // `**` never discriminates.
        let doublestar = Glob::compile("/dev/**").unwrap();
        assert!(!alphabet.would_split([&doublestar]));
        // A byte the base never mentions lives in the catch-all class and
        // must split it.
        let novel = Glob::compile("/dev/ca%").unwrap();
        assert!(alphabet.would_split([&novel]));
        // And after rebuilding with it, no further split is needed.
        let rebuilt = Alphabet::for_globs([&base, &novel]);
        assert!(!rebuilt.would_split([&novel]));
        assert!(rebuilt.class_count() > alphabet.class_count());
    }

    #[test]
    fn minimal_alphabet_splits_slash_only() {
        let minimal = Alphabet::minimal();
        assert_eq!(minimal.class_count(), 2);
        assert_ne!(minimal.class_of(b'/'), minimal.class_of(b'a'));
        assert_eq!(minimal.class_of(b'a'), minimal.class_of(b'z'));
    }

    #[test]
    fn minimization_merges_equivalent_suffixes() {
        // Both arms end in the same `/s/**` tail; the minimized DFA must
        // share it rather than duplicating per rule.
        let mut merged = DfaBuilder::new();
        merged.add_glob(&Glob::compile("/a/s/**").unwrap(), 0);
        merged.add_glob(&Glob::compile("/b/s/**").unwrap(), 0);
        let merged = merged.build(|t| !t.is_empty());

        let mut solo = DfaBuilder::new();
        solo.add_glob(&Glob::compile("/a/s/**").unwrap(), 0);
        let solo = solo.build(|t| !t.is_empty());

        // The merged machine only pays one extra branch state, not a
        // duplicated suffix chain.
        assert!(merged.state_count() <= solo.state_count() + 1);
        assert!(merged.eval("/a/s/x/y"));
        assert!(merged.eval("/b/s/x"));
        assert!(!merged.eval("/c/s/x"));
    }
}
