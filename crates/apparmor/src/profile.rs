//! Profile model: file permissions, rules, and profiles.

use std::fmt;

use sack_kernel::cred::Capability;
use sack_kernel::lsm::SocketFamily;

use crate::glob::{Glob, ParseGlobError};

/// AppArmor file-access permission set.
///
/// Letters follow AppArmor profile syntax: `r` read, `w` write, `a` append,
/// `x` execute, `m` mmap, `i` ioctl (modelled as a permission letter so
/// SACK's `Per_Rules` can reference ioctl rights uniformly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FilePerms(u8);

impl FilePerms {
    /// Read.
    pub const READ: FilePerms = FilePerms(0b000001);
    /// Write.
    pub const WRITE: FilePerms = FilePerms(0b000010);
    /// Append.
    pub const APPEND: FilePerms = FilePerms(0b000100);
    /// Execute.
    pub const EXEC: FilePerms = FilePerms(0b001000);
    /// Memory-map.
    pub const MMAP: FilePerms = FilePerms(0b010000);
    /// Ioctl.
    pub const IOCTL: FilePerms = FilePerms(0b100000);

    /// The empty set.
    pub fn empty() -> Self {
        FilePerms(0)
    }

    /// The raw bit representation (stable across a process; used as a
    /// compact hash-key component by SACK's decision cache).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Every permission.
    pub fn all() -> Self {
        FilePerms(0b111111)
    }

    /// True if no permission is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if all bits of `other` are present.
    pub fn contains(self, other: FilePerms) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is present.
    pub fn intersects(self, other: FilePerms) -> bool {
        self.0 & other.0 != 0
    }

    /// Set union.
    pub fn union(self, other: FilePerms) -> FilePerms {
        FilePerms(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: FilePerms) -> FilePerms {
        FilePerms(self.0 & other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(self, other: FilePerms) -> FilePerms {
        FilePerms(self.0 & !other.0)
    }

    /// Parses an AppArmor permission string such as `"rw"` or `"rwxi"`.
    ///
    /// # Errors
    ///
    /// Returns the offending character for anything outside `rwaxmi`.
    pub fn parse(text: &str) -> Result<FilePerms, char> {
        let mut perms = FilePerms::empty();
        for ch in text.chars() {
            perms = perms.union(match ch {
                'r' => FilePerms::READ,
                'w' => FilePerms::WRITE,
                'a' => FilePerms::APPEND,
                'x' => FilePerms::EXEC,
                'm' => FilePerms::MMAP,
                'i' => FilePerms::IOCTL,
                other => return Err(other),
            });
        }
        Ok(perms)
    }

    /// Converts a kernel [`sack_kernel::AccessMask`] to file permissions.
    pub fn from_access_mask(mask: sack_kernel::AccessMask) -> FilePerms {
        let mut p = FilePerms::empty();
        if mask.intersects(sack_kernel::AccessMask::READ) {
            p = p.union(FilePerms::READ);
        }
        if mask.intersects(sack_kernel::AccessMask::WRITE) {
            p = p.union(FilePerms::WRITE);
        }
        if mask.intersects(sack_kernel::AccessMask::APPEND) {
            p = p.union(FilePerms::APPEND);
        }
        if mask.intersects(sack_kernel::AccessMask::EXEC) {
            p = p.union(FilePerms::EXEC);
        }
        p
    }
}

impl std::ops::BitOr for FilePerms {
    type Output = FilePerms;
    fn bitor(self, rhs: FilePerms) -> FilePerms {
        self.union(rhs)
    }
}

impl fmt::Display for FilePerms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, ch) in [
            (FilePerms::READ, 'r'),
            (FilePerms::WRITE, 'w'),
            (FilePerms::APPEND, 'a'),
            (FilePerms::EXEC, 'x'),
            (FilePerms::MMAP, 'm'),
            (FilePerms::IOCTL, 'i'),
        ] {
            if self.contains(bit) {
                write!(f, "{ch}")?;
                any = true;
            }
        }
        if !any {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A file rule: a glob plus granted (or denied) permissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathRule {
    /// Path pattern.
    pub glob: Glob,
    /// Permissions this rule grants (or, with `deny`, forbids).
    pub perms: FilePerms,
    /// Explicit-deny rule (`deny /path rw,`): overrides any allow.
    pub deny: bool,
    /// Provenance tag. Rules injected by SACK's adaptive policy enforcer
    /// carry an origin so they can be removed when the situation changes.
    pub origin: Option<String>,
}

impl PathRule {
    /// An allow rule.
    ///
    /// # Errors
    ///
    /// Glob compilation errors.
    pub fn allow(pattern: &str, perms: FilePerms) -> Result<PathRule, ParseGlobError> {
        Ok(PathRule {
            glob: Glob::compile(pattern)?,
            perms,
            deny: false,
            origin: None,
        })
    }

    /// A deny rule.
    ///
    /// # Errors
    ///
    /// Glob compilation errors.
    pub fn deny(pattern: &str, perms: FilePerms) -> Result<PathRule, ParseGlobError> {
        Ok(PathRule {
            glob: Glob::compile(pattern)?,
            perms,
            deny: true,
            origin: None,
        })
    }

    /// Tags the rule with a provenance origin (builder-style).
    pub fn with_origin(mut self, origin: impl Into<String>) -> PathRule {
        self.origin = Some(origin.into());
        self
    }
}

impl fmt::Display for PathRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.deny {
            write!(f, "deny {} {},", self.glob, self.perms)
        } else {
            write!(f, "{} {},", self.glob, self.perms)
        }
    }
}

/// Profile enforcement mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProfileMode {
    /// Violations are denied.
    #[default]
    Enforce,
    /// Violations are logged but allowed (AppArmor complain mode).
    Complain,
}

impl fmt::Display for ProfileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileMode::Enforce => f.write_str("enforce"),
            ProfileMode::Complain => f.write_str("complain"),
        }
    }
}

/// A security profile: a named domain with its rules.
///
/// `PartialEq` compares the full source form (rules including origin tags,
/// capabilities, networks, mode, attachment); the `PolicyDb` uses it to
/// turn patches that change nothing into no-ops.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Profile name.
    pub name: String,
    /// Executable attachment pattern (tasks exec'ing a matching path are
    /// confined by this profile).
    pub attachment: Option<Glob>,
    /// Enforcement mode.
    pub mode: ProfileMode,
    /// File rules, in declaration order.
    pub path_rules: Vec<PathRule>,
    /// Capabilities the domain may use.
    pub capabilities: Vec<Capability>,
    /// Socket families the domain may create.
    pub networks: Vec<SocketFamily>,
}

impl Profile {
    /// Creates an empty enforcing profile.
    pub fn new(name: impl Into<String>) -> Profile {
        Profile {
            name: name.into(),
            attachment: None,
            mode: ProfileMode::Enforce,
            path_rules: Vec::new(),
            capabilities: Vec::new(),
            networks: Vec::new(),
        }
    }

    /// Sets the executable attachment pattern (builder-style).
    ///
    /// # Errors
    ///
    /// Glob compilation errors.
    pub fn with_attachment(mut self, pattern: &str) -> Result<Profile, ParseGlobError> {
        self.attachment = Some(Glob::compile(pattern)?);
        Ok(self)
    }

    /// Adds a rule (builder-style).
    pub fn with_rule(mut self, rule: PathRule) -> Profile {
        self.path_rules.push(rule);
        self
    }

    /// Adds a capability (builder-style).
    pub fn with_capability(mut self, cap: Capability) -> Profile {
        self.capabilities.push(cap);
        self
    }

    /// Adds a permitted socket family (builder-style).
    pub fn with_network(mut self, family: SocketFamily) -> Profile {
        self.networks.push(family);
        self
    }

    /// Sets complain mode (builder-style).
    pub fn complain(mut self) -> Profile {
        self.mode = ProfileMode::Complain;
        self
    }

    /// True if the profile attaches to executables at `exe_path`.
    pub fn attaches_to(&self, exe_path: &str) -> bool {
        self.attachment
            .as_ref()
            .is_some_and(|g| g.matches(exe_path))
    }

    /// The globs of every path rule, in declaration order — the byte
    /// vocabulary a shared DFA alphabet must cover for this profile.
    pub fn globs(&self) -> impl Iterator<Item = &Glob> {
        self.path_rules.iter().map(|r| &r.glob)
    }

    /// Removes every rule tagged with `origin`; returns how many were
    /// removed. This is the primitive SACK-enhanced AppArmor uses to retract
    /// situation-specific rules.
    pub fn remove_rules_with_origin(&mut self, origin: &str) -> usize {
        let before = self.path_rules.len();
        self.path_rules
            .retain(|r| r.origin.as_deref() != Some(origin));
        before - self.path_rules.len()
    }
}

impl fmt::Display for Profile {
    /// Renders the profile in the profile language; the output re-parses
    /// to an equivalent profile (origin tags are not part of the syntax
    /// and are rendered as comments).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile {}", self.name)?;
        if let Some(attachment) = &self.attachment {
            write!(f, " {attachment}")?;
        }
        if self.mode == ProfileMode::Complain {
            write!(f, " flags=(complain)")?;
        }
        writeln!(f, " {{")?;
        for cap in &self.capabilities {
            let name = cap.name().strip_prefix("CAP_").unwrap_or(cap.name());
            writeln!(f, "    capability {},", name.to_ascii_lowercase())?;
        }
        for family in &self.networks {
            let name = match family {
                sack_kernel::lsm::SocketFamily::Unix => "unix",
                sack_kernel::lsm::SocketFamily::Inet => "inet",
            };
            writeln!(f, "    network {name},")?;
        }
        for rule in &self.path_rules {
            match &rule.origin {
                Some(origin) => writeln!(f, "    {rule}  # origin: {origin}")?,
                None => writeln!(f, "    {rule}")?,
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_parse_and_display() {
        let p = FilePerms::parse("rwi").unwrap();
        assert!(p.contains(FilePerms::READ | FilePerms::WRITE | FilePerms::IOCTL));
        assert!(!p.contains(FilePerms::EXEC));
        assert_eq!(p.to_string(), "rwi");
        assert_eq!(FilePerms::parse("rz"), Err('z'));
        assert_eq!(FilePerms::empty().to_string(), "-");
    }

    #[test]
    fn perms_set_algebra() {
        let rw = FilePerms::READ | FilePerms::WRITE;
        assert_eq!(rw.difference(FilePerms::WRITE), FilePerms::READ);
        assert!(rw.intersects(FilePerms::WRITE));
        assert!(!rw.intersects(FilePerms::IOCTL));
        assert!(FilePerms::all().contains(rw));
    }

    #[test]
    fn from_access_mask_maps_bits() {
        use sack_kernel::AccessMask;
        let m = AccessMask::READ | AccessMask::WRITE;
        assert_eq!(
            FilePerms::from_access_mask(m),
            FilePerms::READ | FilePerms::WRITE
        );
        assert_eq!(
            FilePerms::from_access_mask(AccessMask::EXEC),
            FilePerms::EXEC
        );
    }

    #[test]
    fn profile_attachment() {
        let p = Profile::new("media")
            .with_attachment("/usr/bin/media*")
            .unwrap();
        assert!(p.attaches_to("/usr/bin/media_app"));
        assert!(!p.attaches_to("/usr/bin/other"));
        assert!(!Profile::new("x").attaches_to("/usr/bin/media_app"));
    }

    #[test]
    fn remove_rules_by_origin() {
        let mut p = Profile::new("d")
            .with_rule(PathRule::allow("/a", FilePerms::READ).unwrap())
            .with_rule(
                PathRule::allow("/b", FilePerms::WRITE)
                    .unwrap()
                    .with_origin("sack:emergency"),
            )
            .with_rule(
                PathRule::allow("/c", FilePerms::WRITE)
                    .unwrap()
                    .with_origin("sack:emergency"),
            );
        assert_eq!(p.remove_rules_with_origin("sack:emergency"), 2);
        assert_eq!(p.path_rules.len(), 1);
        assert_eq!(p.remove_rules_with_origin("sack:emergency"), 0);
    }

    #[test]
    fn rule_display() {
        let r = PathRule::allow("/dev/*", FilePerms::READ).unwrap();
        assert_eq!(r.to_string(), "/dev/* r,");
        let d = PathRule::deny("/dev/car/**", FilePerms::WRITE | FilePerms::IOCTL).unwrap();
        assert_eq!(d.to_string(), "deny /dev/car/** wi,");
    }
}
