//! The profile database: loaded profiles, compiled for enforcement, with
//! live replacement.
//!
//! Live replacement (`apparmor_parser -r` on a real system) is the primitive
//! SACK-enhanced AppArmor builds on: when the situation state transitions,
//! the adaptive policy enforcer patches the affected profiles and the new
//! compiled form is swapped in atomically.
//!
//! The whole profile table is published as one [`Rcu`] snapshot
//! ([`ProfileTable`]): hook-side lookups are wait-free `Arc` reads, while
//! load/replace/remove serialize on the `Rcu` writer lock and swap in a new
//! table. All profiles of the table share a single byte-class
//! [`Alphabet`]; a rule edit recompiles only the touched profile, and the
//! shared alphabet is rebuilt (with a world recompile) only when the new
//! rules actually split a byte class — both events are counted so tests can
//! pin the incremental behaviour.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use sack_kernel::trace::{TraceEvent, TraceHub};
use sack_kernel::Rcu;

use crate::dfa::{Alphabet, Dfa};
use crate::matcher::{CompiledRules, RuleDecision, SharedDfa};
use crate::parser::{parse_profiles, ParseProfileError};
use crate::pipeline;
use crate::profile::{PathRule, Profile};

/// Diagnostic check name: a profile's unified DFA exceeded the state
/// budget (pathological rule sets; enforcement still works but the table
/// is large).
pub const CHECK_PROFILE_DFA_BLOWUP: &str = "profile-dfa-state-blowup";

/// Diagnostic check name: the same glob/perms/deny rule appears twice in
/// one profile (harmless but usually a sign of a bad merge or a logprof
/// promotion that re-added an existing rule).
pub const CHECK_DUPLICATE_PATH_RULE: &str = "duplicate-path-rule";

/// State budget for [`CHECK_PROFILE_DFA_BLOWUP`].
pub const PROFILE_DFA_STATE_BUDGET: usize = 64 * 1024;

/// A lint produced while compiling a profile into the database.
///
/// Every path that compiles a profile — `load`, `load_text`, `patch`, and
/// therefore also `logprof` promotion — funnels through the same compile
/// routine, so the diagnostics fire uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadDiagnostic {
    /// Name of the profile the diagnostic is about.
    pub profile: String,
    /// Stable check identifier (e.g. [`CHECK_DUPLICATE_PATH_RULE`]).
    pub check: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LoadDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.profile, self.check, self.message)
    }
}

/// How [`PolicyDb`] compiles the unified DFA of freshly-installed rule
/// bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompileMode {
    /// Every distinct body's DFA is built before the table publishes
    /// (across the bounded worker pool — see
    /// [`PolicyDb::set_compile_workers`]).
    #[default]
    Eager,
    /// Profiles install as uncompiled stubs; each distinct body's DFA is
    /// built by the first hook that touches a sharing profile. Hooks
    /// racing an in-flight build answer from the bucketed index.
    Lazy,
}

/// A profile together with its compiled rule index.
pub struct CompiledProfile {
    profile: Profile,
    rules: CompiledRules,
}

impl CompiledProfile {
    /// Compiles a profile against a private alphabet derived from its own
    /// rules.
    pub fn compile(profile: Profile) -> CompiledProfile {
        let rules = CompiledRules::build(&profile.path_rules);
        CompiledProfile { profile, rules }
    }

    /// Compiles a profile against a shared byte-class alphabet (the
    /// namespace-wide table maintained by [`PolicyDb`]).
    pub fn compile_with_alphabet(profile: Profile, alphabet: &Arc<Alphabet>) -> CompiledProfile {
        let rules = CompiledRules::build_with_alphabet(&profile.path_rules, alphabet);
        CompiledProfile { profile, rules }
    }

    /// Assembles a profile around an already-built rule index (the dedup
    /// and lazy install paths).
    fn from_parts(profile: Profile, rules: CompiledRules) -> CompiledProfile {
        CompiledProfile { profile, rules }
    }

    /// The source profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The compiled rule index.
    pub fn rules(&self) -> &CompiledRules {
        &self.rules
    }
}

impl fmt::Debug for CompiledProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledProfile")
            .field("name", &self.profile.name)
            .field("rules", &self.rules.len())
            .finish()
    }
}

/// Error returned when an operation references an unknown profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProfileError {
    /// The profile name that was not found.
    pub name: String,
}

impl fmt::Display for UnknownProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown profile `{}`", self.name)
    }
}

impl std::error::Error for UnknownProfileError {}

/// Content hash of a profile's rule body: the full rule list with origin
/// metadata stripped. Profiles whose bodies map to the same key share one
/// [`SharedDfa`] slot — `HashMap` hashing is the content hash, and the
/// full-key equality check makes collisions impossible rather than rare.
type DedupKey = Vec<(String, u8, bool)>;

fn body_key(rules: &[PathRule]) -> DedupKey {
    rules
        .iter()
        .map(|r| (r.glob.to_string(), r.perms.bits(), r.deny))
        .collect()
}

/// One immutable snapshot of the loaded-profile table.
///
/// Cloning is shallow (`Arc` handles), so the copy-on-write updates in
/// [`PolicyDb`] cost O(profiles) pointer clones, not recompiles.
#[derive(Clone)]
pub struct ProfileTable {
    profiles: HashMap<String, Arc<CompiledProfile>>,
    alphabet: Arc<Alphabet>,
    /// Rule body → shared DFA slot, all compiled against `alphabet`.
    /// Rebuilt from scratch on an alphabet split (old slots encode stale
    /// byte classes); entries for since-removed bodies may linger — a
    /// finer partition stays correct, reuse only requires an identical
    /// body against the same alphabet.
    dedup: HashMap<DedupKey, Arc<SharedDfa>>,
}

impl ProfileTable {
    fn empty() -> ProfileTable {
        ProfileTable {
            profiles: HashMap::new(),
            alphabet: Arc::new(Alphabet::minimal()),
            dedup: HashMap::new(),
        }
    }
}

impl fmt::Debug for ProfileTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfileTable")
            .field("profiles", &self.profiles.len())
            .field("classes", &self.alphabet.class_count())
            .field("bodies", &self.dedup.len())
            .finish()
    }
}

/// State a deferred compile closure must reach after the owning
/// [`PolicyDb`] borrow ends: a first-touch build can fire from any hook
/// thread at any later time, so the compile counter, diagnostics sink,
/// and tracepoint hub live behind one `Arc` the closures clone.
struct DbShared {
    /// Number of DFA builds actually performed (incremental-recompile
    /// pin). Dedup reuse and lazy stubs do not count until a body is
    /// really compiled.
    profile_compiles: AtomicU64,
    diagnostics: Mutex<Vec<LoadDiagnostic>>,
    /// Tracepoint hub for `profile_recompile` events. Set once when tracing
    /// is installed on the owning [`Sack`](../../sack_core/struct.Sack.html);
    /// a `OnceLock` keeps the untraced cost to one load + branch.
    trace: OnceLock<Arc<TraceHub>>,
}

impl DbShared {
    #[inline]
    fn trace_emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(hub) = self.trace.get() {
            if hub.enabled() {
                hub.emit(&build());
            }
        }
    }

    /// The winner-only hook a [`SharedDfa`] slot runs when its body is
    /// actually compiled: bump the build counter, emit the
    /// `profile_recompile` tracepoint, and lint for state blowup. `name`
    /// is the profile that introduced the body; body-sharing profiles
    /// ride on its one event.
    fn on_compile(
        self: &Arc<Self>,
        name: String,
        full_rebuild: bool,
    ) -> impl Fn(&Dfa<RuleDecision>) + Send + Sync + 'static {
        let shared = Arc::clone(self);
        move |dfa| {
            shared.profile_compiles.fetch_add(1, Ordering::Relaxed);
            shared.trace_emit(|| TraceEvent::ProfileRecompile {
                profile: name.clone(),
                full_rebuild,
            });
            let states = dfa.stats().states;
            if states > PROFILE_DFA_STATE_BUDGET {
                shared.diagnostics.lock().push(LoadDiagnostic {
                    profile: name.clone(),
                    check: CHECK_PROFILE_DFA_BLOWUP,
                    message: format!(
                        "compiled DFA has {states} states (budget {PROFILE_DFA_STATE_BUDGET})"
                    ),
                });
            }
        }
    }
}

/// The loaded-policy database.
pub struct PolicyDb {
    table: Rcu<ProfileTable>,
    revision: AtomicU64,
    /// Routes hook evaluation through the unified per-profile DFA; off, the
    /// bucketed index scan serves as the differential-testing oracle.
    dfa_enabled: AtomicBool,
    /// Lazy vs eager DFA compilation for newly-installed bodies.
    lazy: AtomicBool,
    /// Worker cap for the eager bulk-compile pool; 0 means
    /// [`pipeline::default_workers`].
    workers: AtomicUsize,
    /// Number of shared-alphabet rebuilds (world recompiles).
    alphabet_rebuilds: AtomicU64,
    shared: Arc<DbShared>,
}

impl Default for PolicyDb {
    fn default() -> Self {
        PolicyDb {
            table: Rcu::new(ProfileTable::empty()),
            revision: AtomicU64::new(0),
            dfa_enabled: AtomicBool::new(true),
            lazy: AtomicBool::new(false),
            workers: AtomicUsize::new(0),
            alphabet_rebuilds: AtomicU64::new(0),
            shared: Arc::new(DbShared {
                profile_compiles: AtomicU64::new(0),
                diagnostics: Mutex::new(Vec::new()),
                trace: OnceLock::new(),
            }),
        }
    }
}

impl PolicyDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        PolicyDb::default()
    }

    /// Connects the database to a tracepoint hub so every profile compile
    /// emits a `profile_recompile` event. Idempotent: the first hub wins
    /// (matching the attach-once lifecycle of SACK tracing); later calls
    /// with a different hub are ignored.
    pub fn set_trace_hub(&self, hub: Arc<TraceHub>) {
        let _ = self.shared.trace.set(hub);
    }

    /// Selects eager (default) or lazy DFA compilation for profiles
    /// installed after the call. Already-installed profiles keep their
    /// slots; switching modes never recompiles anything.
    pub fn set_compile_mode(&self, mode: CompileMode) {
        self.lazy.store(mode == CompileMode::Lazy, Ordering::SeqCst);
    }

    /// The compile mode applied to newly-installed profiles.
    pub fn compile_mode(&self) -> CompileMode {
        if self.lazy.load(Ordering::SeqCst) {
            CompileMode::Lazy
        } else {
            CompileMode::Eager
        }
    }

    /// Caps the eager bulk-compile worker pool; `0` (the default) sizes it
    /// to the machine's available parallelism.
    pub fn set_compile_workers(&self, workers: usize) {
        self.workers.store(workers, Ordering::SeqCst);
    }

    /// The configured worker cap after resolving `0` to the machine
    /// default.
    pub fn compile_workers(&self) -> usize {
        match self.workers.load(Ordering::SeqCst) {
            0 => pipeline::default_workers(),
            n => n,
        }
    }

    /// Looks up (or creates) the shared DFA slot for `rules` in `dedup`
    /// and assembles the profile around it. Freshly-created slots are
    /// pushed to `fresh` so an eager install can force them in parallel
    /// after the whole bundle is deduplicated.
    fn install_one(
        &self,
        dedup: &mut HashMap<DedupKey, Arc<SharedDfa>>,
        fresh: &mut Vec<Arc<SharedDfa>>,
        profile: Profile,
        alphabet: &Arc<Alphabet>,
        full_rebuild: bool,
    ) -> Arc<CompiledProfile> {
        let key = body_key(&profile.path_rules);
        let slot = match dedup.get(&key) {
            Some(slot) => Arc::clone(slot),
            None => {
                let slot = Arc::new(SharedDfa::deferred(
                    profile.path_rules.clone(),
                    Arc::clone(alphabet),
                    Box::new(self.shared.on_compile(profile.name.clone(), full_rebuild)),
                ));
                dedup.insert(key, Arc::clone(&slot));
                fresh.push(Arc::clone(&slot));
                slot
            }
        };
        let rules = CompiledRules::build_sharing(&profile.path_rules, slot);
        Arc::new(CompiledProfile::from_parts(profile, rules))
    }

    /// Installs `incoming` into `table`: one alphabet pre-pass for the
    /// whole bundle (rebuilt — with a world recompile — only when a new
    /// rule splits a byte class), identical rule bodies deduplicated onto
    /// one shared DFA slot, and the distinct fresh bodies compiled across
    /// the worker pool (eager mode) or left for first hook touch (lazy
    /// mode). Returns the next table and the new compiled handles.
    fn install_many(
        &self,
        table: &ProfileTable,
        incoming: Vec<Profile>,
    ) -> (ProfileTable, Vec<Arc<CompiledProfile>>) {
        let splits = table
            .alphabet
            .would_split(incoming.iter().flat_map(Profile::globs));
        let mut fresh: Vec<Arc<SharedDfa>> = Vec::new();
        let (alphabet, mut profiles, mut dedup) = if splits {
            // Some new rule separates bytes the current table merges:
            // rebuild the namespace alphabet over everything and recompile
            // the world against it. Old dedup slots encode the stale byte
            // classes, so the map restarts empty. Profiles about to be
            // replaced by `incoming` are skipped — their fresh form
            // installs below.
            let replaced: HashSet<&str> = incoming.iter().map(|p| p.name.as_str()).collect();
            let alphabet = Arc::new(Alphabet::for_globs(
                table
                    .profiles
                    .values()
                    .filter(|p| !replaced.contains(p.profile().name.as_str()))
                    .flat_map(|p| p.profile().globs())
                    .chain(incoming.iter().flat_map(Profile::globs)),
            ));
            self.alphabet_rebuilds.fetch_add(1, Ordering::Relaxed);
            let mut dedup = HashMap::new();
            let mut retained: Vec<&Arc<CompiledProfile>> = table
                .profiles
                .values()
                .filter(|p| !replaced.contains(p.profile().name.as_str()))
                .collect();
            retained.sort_by(|a, b| a.profile().name.cmp(&b.profile().name));
            let profiles = retained
                .into_iter()
                .map(|p| {
                    let compiled = self.install_one(
                        &mut dedup,
                        &mut fresh,
                        p.profile().clone(),
                        &alphabet,
                        true,
                    );
                    (compiled.profile().name.clone(), compiled)
                })
                .collect();
            (alphabet, profiles, dedup)
        } else {
            (
                Arc::clone(&table.alphabet),
                table.profiles.clone(),
                table.dedup.clone(),
            )
        };
        let mut handles = Vec::with_capacity(incoming.len());
        for profile in incoming {
            self.lint(&profile);
            let compiled = self.install_one(&mut dedup, &mut fresh, profile, &alphabet, splits);
            profiles.insert(compiled.profile().name.clone(), Arc::clone(&compiled));
            handles.push(compiled);
        }
        if self.compile_mode() == CompileMode::Eager && !fresh.is_empty() {
            // The alphabet pre-pass above means the builds share no
            // mutable state; force every fresh body across the pool before
            // the table publishes.
            pipeline::for_each_parallel(&fresh, self.compile_workers(), |slot| {
                slot.force();
            });
        }
        (
            ProfileTable {
                profiles,
                alphabet,
                dedup,
            },
            handles,
        )
    }

    /// Source-level lints that do not need the compiled form.
    fn lint(&self, profile: &Profile) {
        let mut seen: HashSet<(String, u8, bool)> = HashSet::new();
        for rule in &profile.path_rules {
            let key = (rule.glob.to_string(), rule.perms.bits(), rule.deny);
            if !seen.insert(key) {
                self.shared.diagnostics.lock().push(LoadDiagnostic {
                    profile: profile.name.clone(),
                    check: CHECK_DUPLICATE_PATH_RULE,
                    message: format!("rule `{}` appears more than once", rule.glob),
                });
            }
        }
    }

    /// Loads (or replaces) a profile.
    pub fn load(&self, profile: Profile) -> Arc<CompiledProfile> {
        let handle = self.table.update(|table| {
            let (next, mut handles) = self.install_many(table, vec![profile]);
            (next, handles.pop().expect("one profile installed"))
        });
        self.revision.fetch_add(1, Ordering::Release);
        handle
    }

    /// Loads a whole bundle of already-parsed profiles as one atomic
    /// table swap (one alphabet check, one parallel compile pass).
    pub fn load_many(&self, profiles: Vec<Profile>) -> usize {
        let n = profiles.len();
        if n > 0 {
            self.table
                .update(|table| (self.install_many(table, profiles).0, ()));
            self.revision.fetch_add(1, Ordering::Release);
        }
        n
    }

    /// Parses profile-language text and loads every profile in it as one
    /// atomic table swap (one alphabet check for the whole bundle).
    ///
    /// # Errors
    ///
    /// Syntax errors from the profile parser.
    pub fn load_text(&self, text: &str) -> Result<usize, ParseProfileError> {
        let profiles = parse_profiles(text)?;
        let n = profiles.len();
        if n > 0 {
            self.table
                .update(|table| (self.install_many(table, profiles).0, ()));
            self.revision.fetch_add(1, Ordering::Release);
        }
        Ok(n)
    }

    /// Removes a profile; returns whether it existed.
    ///
    /// The shared alphabet is *not* rebuilt on remove: a finer-than-needed
    /// partition stays correct for every remaining profile, so removal is
    /// always a cheap copy-on-write of the name map.
    pub fn remove(&self, name: &str) -> bool {
        let removed = self.table.update(|table| {
            if !table.profiles.contains_key(name) {
                return (table.clone(), false);
            }
            let mut next = table.clone();
            next.profiles.remove(name);
            (next, true)
        });
        if removed {
            self.revision.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Looks up a compiled profile by name (wait-free snapshot read).
    pub fn get(&self, name: &str) -> Option<Arc<CompiledProfile>> {
        self.table.read().profiles.get(name).cloned()
    }

    /// Finds the profile attached to executables at `exe_path`.
    pub fn find_by_attachment(&self, exe_path: &str) -> Option<Arc<CompiledProfile>> {
        self.table
            .read()
            .profiles
            .values()
            .find(|p| p.profile().attaches_to(exe_path))
            .cloned()
    }

    /// Applies `patch` to the named profile and atomically swaps in the
    /// recompiled result. This models `apparmor_parser -r`.
    ///
    /// Only the patched profile is recompiled (the shared alphabet is
    /// rebuilt only if the edit splits a byte class), and a patch that
    /// leaves the profile unchanged returns the existing handle without
    /// recompiling or bumping the revision — retract loops over unaffected
    /// profiles cost a comparison, not a compile.
    ///
    /// # Errors
    ///
    /// [`UnknownProfileError`] if the profile is not loaded.
    pub fn patch<F>(
        &self,
        name: &str,
        patch: F,
    ) -> Result<Arc<CompiledProfile>, UnknownProfileError>
    where
        F: FnOnce(&mut Profile),
    {
        enum Outcome {
            Installed(Arc<CompiledProfile>),
            Unchanged(Arc<CompiledProfile>),
            Missing,
        }
        let outcome = self.table.update(|table| {
            let Some(current) = table.profiles.get(name) else {
                return (table.clone(), Outcome::Missing);
            };
            let mut profile = current.profile().clone();
            patch(&mut profile);
            if profile == *current.profile() {
                return (table.clone(), Outcome::Unchanged(Arc::clone(current)));
            }
            let (next, mut handles) = self.install_many(table, vec![profile]);
            (
                next,
                Outcome::Installed(handles.pop().expect("one profile installed")),
            )
        });
        match outcome {
            Outcome::Installed(handle) => {
                self.revision.fetch_add(1, Ordering::Release);
                Ok(handle)
            }
            Outcome::Unchanged(handle) => Ok(handle),
            Outcome::Missing => Err(UnknownProfileError {
                name: name.to_string(),
            }),
        }
    }

    /// Monotonic policy revision; bumps on every effective load/remove/
    /// patch (a no-op patch does not count). The table is always published
    /// before the revision moves, mirroring the publish-before-bump
    /// ordering of SACK's `ActivePolicy` swap.
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }

    /// Names of loaded profiles (sorted).
    pub fn profile_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.table.read().profiles.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of loaded profiles.
    pub fn len(&self) -> usize {
        self.table.read().profiles.len()
    }

    /// True if no profiles are loaded.
    pub fn is_empty(&self) -> bool {
        self.table.read().profiles.is_empty()
    }

    /// The shared byte-class alphabet of the current table snapshot.
    pub fn alphabet(&self) -> Arc<Alphabet> {
        Arc::clone(&self.table.read().alphabet)
    }

    /// Routes hook evaluation through the per-profile DFA (`true`, the
    /// default) or the legacy bucketed scan (`false`) — the differential-
    /// testing oracle switch.
    pub fn set_dfa_matcher_enabled(&self, enabled: bool) {
        self.dfa_enabled.store(enabled, Ordering::SeqCst);
    }

    /// True if hooks evaluate through the per-profile DFA.
    pub fn dfa_matcher_enabled(&self) -> bool {
        self.dfa_enabled.load(Ordering::SeqCst)
    }

    /// Total DFA builds since creation. Incremental recompilation is
    /// pinned by this counter: a single-profile edit moves it by exactly
    /// one unless the shared alphabet had to be rebuilt; dedup reuse and
    /// still-uncompiled lazy stubs do not move it at all.
    pub fn compile_count(&self) -> u64 {
        self.shared.profile_compiles.load(Ordering::Relaxed)
    }

    /// Number of shared-alphabet rebuilds (each implies a world recompile).
    pub fn alphabet_rebuild_count(&self) -> u64 {
        self.alphabet_rebuilds.load(Ordering::Relaxed)
    }

    /// Drains the accumulated load diagnostics (lints fire on every
    /// compile path, including `logprof` promotions).
    pub fn take_load_diagnostics(&self) -> Vec<LoadDiagnostic> {
        std::mem::take(&mut *self.shared.diagnostics.lock())
    }
}

impl fmt::Debug for PolicyDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyDb")
            .field("profiles", &self.profile_names())
            .field("revision", &self.revision())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{FilePerms, PathRule};

    #[test]
    fn load_and_get() {
        let db = PolicyDb::new();
        db.load(Profile::new("a"));
        assert!(db.get("a").is_some());
        assert!(db.get("b").is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn load_text_parses_and_loads() {
        let db = PolicyDb::new();
        let n = db
            .load_text("profile x { /a r, }\nprofile y { /b w, }")
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.profile_names(), vec!["x", "y"]);
    }

    #[test]
    fn attachment_lookup() {
        let db = PolicyDb::new();
        db.load(
            Profile::new("media")
                .with_attachment("/usr/bin/media*")
                .unwrap(),
        );
        assert_eq!(
            db.find_by_attachment("/usr/bin/media_app")
                .unwrap()
                .profile()
                .name,
            "media"
        );
        assert!(db.find_by_attachment("/usr/bin/other").is_none());
    }

    #[test]
    fn patch_recompiles_and_bumps_revision() {
        let db = PolicyDb::new();
        db.load(Profile::new("d"));
        let r0 = db.revision();
        db.patch("d", |p| {
            p.path_rules
                .push(PathRule::allow("/new", FilePerms::READ).unwrap());
        })
        .unwrap();
        assert!(db.revision() > r0);
        let compiled = db.get("d").unwrap();
        assert!(compiled.rules().evaluate("/new").permits(FilePerms::READ));
    }

    #[test]
    fn patch_unknown_profile_errors() {
        let db = PolicyDb::new();
        let err = db.patch("nope", |_| {}).unwrap_err();
        assert_eq!(err.name, "nope");
    }

    #[test]
    fn remove_profile() {
        let db = PolicyDb::new();
        db.load(Profile::new("a"));
        assert!(db.remove("a"));
        assert!(!db.remove("a"));
        assert!(db.is_empty());
    }

    #[test]
    fn old_compiled_handles_stay_valid_after_patch() {
        // Enforcement paths hold an Arc snapshot; a live replacement must
        // not invalidate in-flight checks.
        let db = PolicyDb::new();
        db.load(Profile::new("d").with_rule(PathRule::allow("/old", FilePerms::READ).unwrap()));
        let old = db.get("d").unwrap();
        db.patch("d", |p| p.path_rules.clear()).unwrap();
        assert!(old.rules().evaluate("/old").permits(FilePerms::READ));
        assert!(!db
            .get("d")
            .unwrap()
            .rules()
            .evaluate("/old")
            .permits(FilePerms::READ));
    }

    #[test]
    fn profiles_share_one_alphabet() {
        let db = PolicyDb::new();
        db.load_text(
            "profile x { /dev/car/* rw, }\n\
             profile y { /sys/kernel/** r, }\n\
             profile z { /tmp/[a-z]* w, }",
        )
        .unwrap();
        let shared = db.alphabet();
        for name in db.profile_names() {
            let compiled = db.get(&name).unwrap();
            assert!(
                Arc::ptr_eq(compiled.rules().alphabet(), &shared),
                "profile {name} compiled against a private alphabet"
            );
        }
    }

    #[test]
    fn patch_without_class_split_recompiles_only_touched_profile() {
        let db = PolicyDb::new();
        db.load_text("profile x { /dev/car/* rw, }\nprofile y { /dev/can0 r, }")
            .unwrap();
        let untouched = db.get("y").unwrap();
        let compiles = db.compile_count();
        let rebuilds = db.alphabet_rebuild_count();
        // `/dev/racecar` reuses only bytes the alphabet already separates
        // (`r a c e` all occur in the loaded rules), so no class splits.
        db.patch("x", |p| {
            p.path_rules
                .push(PathRule::allow("/dev/racecar", FilePerms::READ).unwrap());
        })
        .unwrap();
        assert_eq!(db.alphabet_rebuild_count(), rebuilds, "no class split");
        assert_eq!(db.compile_count(), compiles + 1, "only `x` recompiled");
        assert!(
            Arc::ptr_eq(&db.get("y").unwrap(), &untouched),
            "untouched profile was rebuilt"
        );
    }

    #[test]
    fn class_splitting_patch_rebuilds_alphabet_and_world() {
        let db = PolicyDb::new();
        db.load_text("profile x { /dev/car/* rw, }\nprofile y { /dev/can0 r, }")
            .unwrap();
        let compiles = db.compile_count();
        let rebuilds = db.alphabet_rebuild_count();
        // `%` is not a byte any loaded rule discriminates; it must split
        // the catch-all class and trigger a world recompile.
        db.patch("x", |p| {
            p.path_rules
                .push(PathRule::allow("/dev/c%r", FilePerms::READ).unwrap());
        })
        .unwrap();
        assert_eq!(db.alphabet_rebuild_count(), rebuilds + 1);
        // The untouched profile recompiled once, plus the patched one.
        assert_eq!(db.compile_count(), compiles + 2);
        let shared = db.alphabet();
        for name in db.profile_names() {
            assert!(Arc::ptr_eq(
                db.get(&name).unwrap().rules().alphabet(),
                &shared
            ));
        }
    }

    #[test]
    fn noop_patch_skips_recompile_and_revision() {
        let db = PolicyDb::new();
        db.load(Profile::new("d").with_rule(PathRule::allow("/a", FilePerms::READ).unwrap()));
        let before = db.get("d").unwrap();
        let r0 = db.revision();
        let compiles = db.compile_count();
        let handle = db
            .patch("d", |p| {
                p.remove_rules_with_origin("sack");
            })
            .unwrap();
        assert!(Arc::ptr_eq(&handle, &before), "handle must be reused");
        assert_eq!(db.revision(), r0, "no-op patch must not bump revision");
        assert_eq!(db.compile_count(), compiles);
    }

    #[test]
    fn remove_keeps_finer_alphabet_without_rebuild() {
        let db = PolicyDb::new();
        db.load_text("profile x { /dev/car/* rw, }\nprofile y { /sys/** r, }")
            .unwrap();
        let rebuilds = db.alphabet_rebuild_count();
        let alphabet = db.alphabet();
        assert!(db.remove("x"));
        assert_eq!(db.alphabet_rebuild_count(), rebuilds);
        assert!(Arc::ptr_eq(&db.alphabet(), &alphabet));
        // The remaining profile still decides correctly on the finer table.
        assert!(db
            .get("y")
            .unwrap()
            .rules()
            .evaluate_dfa("/sys/kernel")
            .permits(FilePerms::READ));
    }

    #[test]
    fn dfa_matcher_toggle_defaults_on() {
        let db = PolicyDb::new();
        assert!(db.dfa_matcher_enabled());
        db.set_dfa_matcher_enabled(false);
        assert!(!db.dfa_matcher_enabled());
    }

    #[test]
    fn duplicate_rule_lint_fires_on_every_compile_path() {
        let db = PolicyDb::new();
        db.load(
            Profile::new("d")
                .with_rule(PathRule::allow("/a", FilePerms::READ).unwrap())
                .with_rule(PathRule::allow("/a", FilePerms::READ).unwrap()),
        );
        let diags = db.take_load_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].check, CHECK_DUPLICATE_PATH_RULE);
        assert_eq!(diags[0].profile, "d");
        assert!(db.take_load_diagnostics().is_empty(), "drained");
        // The same lint fires through patch (the logprof promotion path).
        db.patch("d", |p| {
            p.path_rules
                .push(PathRule::allow("/b", FilePerms::WRITE).unwrap());
        })
        .unwrap();
        let diags = db.take_load_diagnostics();
        assert_eq!(diags.len(), 1, "duplicate survived the patch: {diags:?}");
    }

    #[test]
    fn identical_bodies_share_one_dfa() {
        let db = PolicyDb::new();
        db.load_text(
            "profile a { /dev/car/** rw, }\n\
             profile b { /dev/car/** rw, }\n\
             profile c { /var/log/* r, }",
        )
        .unwrap();
        // Two distinct bodies → two builds, not three.
        assert_eq!(db.compile_count(), 2);
        let a = db.get("a").unwrap();
        let b = db.get("b").unwrap();
        let c = db.get("c").unwrap();
        assert!(
            Arc::ptr_eq(a.rules().dfa_handle(), b.rules().dfa_handle()),
            "identical bodies must share one DFA"
        );
        assert!(!Arc::ptr_eq(a.rules().dfa_handle(), c.rules().dfa_handle()));
        // Sharing is transparent to enforcement.
        assert!(a
            .rules()
            .evaluate_dfa("/dev/car/x")
            .permits(FilePerms::WRITE));
        assert!(b
            .rules()
            .evaluate_dfa("/dev/car/x")
            .permits(FilePerms::WRITE));
    }

    #[test]
    fn lazy_mode_defers_builds_to_first_touch() {
        let db = PolicyDb::new();
        db.set_compile_mode(CompileMode::Lazy);
        assert_eq!(db.compile_mode(), CompileMode::Lazy);
        db.load_text("profile x { /dev/car/* rw, }\nprofile y { /sys/** r, }")
            .unwrap();
        assert_eq!(db.compile_count(), 0, "lazy load must not build");
        let x = db.get("x").unwrap();
        let y = db.get("y").unwrap();
        assert!(!x.rules().dfa_handle().is_compiled());
        // Scan and index answer while uncompiled.
        assert!(x.rules().evaluate("/dev/car/a").permits(FilePerms::WRITE));
        assert_eq!(db.compile_count(), 0);
        // First DFA touch builds exactly the touched body.
        assert!(x
            .rules()
            .evaluate_dfa("/dev/car/a")
            .permits(FilePerms::WRITE));
        assert_eq!(db.compile_count(), 1);
        assert!(x.rules().dfa_handle().is_compiled());
        assert!(!y.rules().dfa_handle().is_compiled(), "y was never touched");
        assert!(y.rules().evaluate_dfa("/sys/a").permits(FilePerms::READ));
        assert_eq!(db.compile_count(), 2);
    }

    #[test]
    fn lazy_stubs_recompile_on_alphabet_split_without_touch() {
        let db = PolicyDb::new();
        db.set_compile_mode(CompileMode::Lazy);
        db.load_text("profile x { /dev/car/* rw, }\nprofile y { /dev/can0 r, }")
            .unwrap();
        let rebuilds = db.alphabet_rebuild_count();
        // Splitting patch rebuilds the alphabet; the untouched profiles
        // become fresh stubs against the new alphabet, still unbuilt.
        db.patch("x", |p| {
            p.path_rules
                .push(PathRule::allow("/dev/c%r", FilePerms::READ).unwrap());
        })
        .unwrap();
        assert_eq!(db.alphabet_rebuild_count(), rebuilds + 1);
        assert_eq!(db.compile_count(), 0, "split must not force lazy builds");
        let shared = db.alphabet();
        for name in db.profile_names() {
            let compiled = db.get(&name).unwrap();
            assert!(Arc::ptr_eq(compiled.rules().alphabet(), &shared));
            assert!(!compiled.rules().dfa_handle().is_compiled());
        }
        assert!(db
            .get("x")
            .unwrap()
            .rules()
            .evaluate_dfa("/dev/c%r")
            .permits(FilePerms::READ));
        assert_eq!(db.compile_count(), 1);
    }

    #[test]
    fn pinned_worker_count_compiles_eagerly() {
        let db = PolicyDb::new();
        db.set_compile_workers(2);
        assert_eq!(db.compile_workers(), 2);
        db.load_text(
            "profile a { /x/[0-9]* r, }\n\
             profile b { /y/{u,v}w w, }\n\
             profile c { /z/?q rw, }",
        )
        .unwrap();
        assert_eq!(db.compile_count(), 3);
        for name in db.profile_names() {
            assert!(db.get(&name).unwrap().rules().dfa_handle().is_compiled());
        }
    }

    #[test]
    fn bulk_load_checks_alphabet_once() {
        let db = PolicyDb::new();
        db.load_text(
            "profile a { /x/[0-9]* r, }\n\
             profile b { /y/{u,v}w w, }\n\
             profile c { /z/?q rw, }",
        )
        .unwrap();
        // The initial bundle needs at most one rebuild regardless of how
        // many profiles introduce new byte classes.
        assert!(db.alphabet_rebuild_count() <= 1);
        assert_eq!(db.compile_count(), 3);
    }
}
