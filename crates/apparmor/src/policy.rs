//! The profile database: loaded profiles, compiled for enforcement, with
//! live replacement.
//!
//! Live replacement (`apparmor_parser -r` on a real system) is the primitive
//! SACK-enhanced AppArmor builds on: when the situation state transitions,
//! the adaptive policy enforcer patches the affected profiles and the new
//! compiled form is swapped in atomically.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::matcher::CompiledRules;
use crate::parser::{parse_profiles, ParseProfileError};
use crate::profile::Profile;

/// A profile together with its compiled rule index.
pub struct CompiledProfile {
    profile: Profile,
    rules: CompiledRules,
}

impl CompiledProfile {
    /// Compiles a profile.
    pub fn compile(profile: Profile) -> CompiledProfile {
        let rules = CompiledRules::build(&profile.path_rules);
        CompiledProfile { profile, rules }
    }

    /// The source profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// The compiled rule index.
    pub fn rules(&self) -> &CompiledRules {
        &self.rules
    }
}

impl fmt::Debug for CompiledProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledProfile")
            .field("name", &self.profile.name)
            .field("rules", &self.rules.len())
            .finish()
    }
}

/// Error returned when an operation references an unknown profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProfileError {
    /// The profile name that was not found.
    pub name: String,
}

impl fmt::Display for UnknownProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown profile `{}`", self.name)
    }
}

impl std::error::Error for UnknownProfileError {}

/// The loaded-policy database.
#[derive(Default)]
pub struct PolicyDb {
    profiles: RwLock<HashMap<String, Arc<CompiledProfile>>>,
    revision: AtomicU64,
}

impl PolicyDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        PolicyDb::default()
    }

    /// Loads (or replaces) a profile.
    pub fn load(&self, profile: Profile) -> Arc<CompiledProfile> {
        let name = profile.name.clone();
        let compiled = Arc::new(CompiledProfile::compile(profile));
        self.profiles.write().insert(name, Arc::clone(&compiled));
        self.revision.fetch_add(1, Ordering::Release);
        compiled
    }

    /// Parses profile-language text and loads every profile in it.
    ///
    /// # Errors
    ///
    /// Syntax errors from the profile parser.
    pub fn load_text(&self, text: &str) -> Result<usize, ParseProfileError> {
        let profiles = parse_profiles(text)?;
        let n = profiles.len();
        for p in profiles {
            self.load(p);
        }
        Ok(n)
    }

    /// Removes a profile; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        let removed = self.profiles.write().remove(name).is_some();
        if removed {
            self.revision.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Looks up a compiled profile by name.
    pub fn get(&self, name: &str) -> Option<Arc<CompiledProfile>> {
        self.profiles.read().get(name).cloned()
    }

    /// Finds the profile attached to executables at `exe_path`.
    pub fn find_by_attachment(&self, exe_path: &str) -> Option<Arc<CompiledProfile>> {
        self.profiles
            .read()
            .values()
            .find(|p| p.profile().attaches_to(exe_path))
            .cloned()
    }

    /// Applies `patch` to the named profile and atomically swaps in the
    /// recompiled result. This models `apparmor_parser -r`.
    ///
    /// # Errors
    ///
    /// [`UnknownProfileError`] if the profile is not loaded.
    pub fn patch<F>(
        &self,
        name: &str,
        patch: F,
    ) -> Result<Arc<CompiledProfile>, UnknownProfileError>
    where
        F: FnOnce(&mut Profile),
    {
        let mut profiles = self.profiles.write();
        let current = profiles.get(name).ok_or_else(|| UnknownProfileError {
            name: name.to_string(),
        })?;
        let mut profile = current.profile().clone();
        patch(&mut profile);
        let compiled = Arc::new(CompiledProfile::compile(profile));
        profiles.insert(name.to_string(), Arc::clone(&compiled));
        self.revision.fetch_add(1, Ordering::Release);
        Ok(compiled)
    }

    /// Monotonic policy revision; bumps on every load/remove/patch.
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }

    /// Names of loaded profiles (sorted).
    pub fn profile_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.profiles.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of loaded profiles.
    pub fn len(&self) -> usize {
        self.profiles.read().len()
    }

    /// True if no profiles are loaded.
    pub fn is_empty(&self) -> bool {
        self.profiles.read().is_empty()
    }
}

impl fmt::Debug for PolicyDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyDb")
            .field("profiles", &self.profile_names())
            .field("revision", &self.revision())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{FilePerms, PathRule};

    #[test]
    fn load_and_get() {
        let db = PolicyDb::new();
        db.load(Profile::new("a"));
        assert!(db.get("a").is_some());
        assert!(db.get("b").is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn load_text_parses_and_loads() {
        let db = PolicyDb::new();
        let n = db
            .load_text("profile x { /a r, }\nprofile y { /b w, }")
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.profile_names(), vec!["x", "y"]);
    }

    #[test]
    fn attachment_lookup() {
        let db = PolicyDb::new();
        db.load(
            Profile::new("media")
                .with_attachment("/usr/bin/media*")
                .unwrap(),
        );
        assert_eq!(
            db.find_by_attachment("/usr/bin/media_app")
                .unwrap()
                .profile()
                .name,
            "media"
        );
        assert!(db.find_by_attachment("/usr/bin/other").is_none());
    }

    #[test]
    fn patch_recompiles_and_bumps_revision() {
        let db = PolicyDb::new();
        db.load(Profile::new("d"));
        let r0 = db.revision();
        db.patch("d", |p| {
            p.path_rules
                .push(PathRule::allow("/new", FilePerms::READ).unwrap());
        })
        .unwrap();
        assert!(db.revision() > r0);
        let compiled = db.get("d").unwrap();
        assert!(compiled.rules().evaluate("/new").permits(FilePerms::READ));
    }

    #[test]
    fn patch_unknown_profile_errors() {
        let db = PolicyDb::new();
        let err = db.patch("nope", |_| {}).unwrap_err();
        assert_eq!(err.name, "nope");
    }

    #[test]
    fn remove_profile() {
        let db = PolicyDb::new();
        db.load(Profile::new("a"));
        assert!(db.remove("a"));
        assert!(!db.remove("a"));
        assert!(db.is_empty());
    }

    #[test]
    fn old_compiled_handles_stay_valid_after_patch() {
        // Enforcement paths hold an Arc snapshot; a live replacement must
        // not invalidate in-flight checks.
        let db = PolicyDb::new();
        db.load(Profile::new("d").with_rule(PathRule::allow("/old", FilePerms::READ).unwrap()));
        let old = db.get("d").unwrap();
        db.patch("d", |p| p.path_rules.clear()).unwrap();
        assert!(old.rules().evaluate("/old").permits(FilePerms::READ));
        assert!(!db
            .get("d")
            .unwrap()
            .rules()
            .evaluate("/old")
            .permits(FilePerms::READ));
    }
}
