//! The AppArmor security module: LSM hook implementation.
//!
//! Confinement model (matching AppArmor's):
//!
//! * tasks start **unconfined** (everything allowed);
//! * on `exec`, a task whose executable matches a profile's attachment
//!   pattern enters that profile's domain;
//! * children inherit the parent's confinement across `fork`;
//! * confined tasks are mediated on file open/permission/ioctl/mmap,
//!   capability use and socket creation;
//! * `complain`-mode profiles log violations instead of denying them.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use sack_kernel::cred::Capability;
use sack_kernel::error::{Errno, KernelError, KernelResult};
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectKind, ObjectRef, SecurityModule, SocketFamily};
use sack_kernel::path::KPath;
use sack_kernel::sync::Rcu;
use sack_kernel::types::Pid;

use crate::policy::{CompiledProfile, PolicyDb};
use crate::profile::{FilePerms, ProfileMode};

/// One audit-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Acting task.
    pub pid: Pid,
    /// Confining profile.
    pub profile: String,
    /// Operation (`"open"`, `"file_perm"`, `"ioctl"`, `"capable"`, ...).
    pub op: &'static str,
    /// Target (path, capability name, socket family).
    pub target: String,
    /// Requested permissions, displayed in AppArmor letters.
    pub requested: String,
    /// `true` if the access was permitted (complain mode logs allowed=true
    /// for would-be denials together with `complain=true`).
    pub allowed: bool,
    /// `true` when a violation was let through by complain mode.
    pub complain: bool,
}

/// The AppArmor LSM.
pub struct AppArmor {
    policy: Arc<PolicyDb>,
    /// Pid → compiled-profile snapshot, RCU-published copy-on-write: hook
    /// reads are wait-free `Rcu::read` snapshots; the (rare) confinement
    /// mutations on fork/exec/exit swap in a whole rebuilt map.
    confinement: Rcu<HashMap<Pid, Arc<CompiledProfile>>>,
    audit: Mutex<Vec<AuditEvent>>,
}

impl AppArmor {
    /// Creates the module over a policy database.
    pub fn new(policy: Arc<PolicyDb>) -> Arc<AppArmor> {
        Arc::new(AppArmor {
            policy,
            confinement: Rcu::new(HashMap::new()),
            audit: Mutex::new(Vec::new()),
        })
    }

    /// The policy database.
    pub fn policy(&self) -> &Arc<PolicyDb> {
        &self.policy
    }

    /// Generation counter of the confinement map: bumps every time any
    /// task's confinement (or compiled-profile snapshot) changes. SACK's
    /// decision cache folds this into its key so cached profile-oracle
    /// answers self-invalidate.
    pub fn confinement_generation(&self) -> u64 {
        self.confinement.generation() as u64
    }

    /// Confines `pid` under the named profile immediately (the
    /// `aa-exec -p` administrative path).
    ///
    /// # Errors
    ///
    /// `EINVAL` if the profile is not loaded.
    pub fn set_profile(&self, pid: Pid, name: &str) -> KernelResult<()> {
        let profile = self
            .policy
            .get(name)
            .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "apparmor"))?;
        self.confinement.update(|map| {
            let mut next = map.clone();
            next.insert(pid, profile);
            (next, ())
        });
        Ok(())
    }

    /// Removes confinement from `pid`.
    pub fn unconfine(&self, pid: Pid) {
        self.confinement.update(|map| {
            let mut next = map.clone();
            next.remove(&pid);
            (next, ())
        });
    }

    /// The name of the profile confining `pid`, if any.
    pub fn current_profile(&self, pid: Pid) -> Option<String> {
        self.confinement
            .read()
            .get(&pid)
            .map(|p| p.profile().name.clone())
    }

    /// Number of confined tasks.
    pub fn confined_count(&self) -> usize {
        self.confinement.read().len()
    }

    /// Drains and returns the audit log.
    pub fn take_audit_log(&self) -> Vec<AuditEvent> {
        std::mem::take(&mut self.audit.lock())
    }

    /// Refreshes each task's compiled-profile snapshot from the policy
    /// database. Called by SACK's adaptive policy enforcer after patching
    /// profiles so confined tasks pick up the new rules.
    pub fn refresh_confinement(&self) {
        self.confinement.update(|map| {
            let next = map
                .iter()
                .map(|(pid, compiled)| {
                    let fresh = self
                        .policy
                        .get(&compiled.profile().name)
                        .unwrap_or_else(|| Arc::clone(compiled));
                    (*pid, fresh)
                })
                .collect();
            (next, ())
        });
    }

    fn confining(&self, pid: Pid) -> Option<Arc<CompiledProfile>> {
        self.confinement.read().get(&pid).cloned()
    }

    #[allow(clippy::too_many_arguments)] // mirrors the audit record's fields
    fn audit(
        &self,
        ctx: &HookCtx,
        profile: &CompiledProfile,
        op: &'static str,
        target: &str,
        requested: String,
        allowed: bool,
        complain: bool,
    ) {
        self.audit.lock().push(AuditEvent {
            pid: ctx.pid,
            profile: profile.profile().name.clone(),
            op,
            target: target.to_string(),
            requested,
            allowed,
            complain,
        });
    }

    fn check_file(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        requested: FilePerms,
        op: &'static str,
    ) -> KernelResult<()> {
        // Pipes and sockets are not path-mediated by AppArmor file rules.
        if matches!(obj.kind, ObjectKind::Pipe | ObjectKind::Socket) {
            return Ok(());
        }
        let Some(profile) = self.confining(ctx.pid) else {
            return Ok(());
        };
        let decision = if self.policy.dfa_matcher_enabled() {
            profile.rules().evaluate_dfa(obj.path.as_str())
        } else {
            profile.rules().evaluate(obj.path.as_str())
        };
        if decision.permits(requested) {
            return Ok(());
        }
        if profile.profile().mode == ProfileMode::Complain {
            self.audit(
                ctx,
                &profile,
                op,
                obj.path.as_str(),
                requested.to_string(),
                true,
                true,
            );
            return Ok(());
        }
        self.audit(
            ctx,
            &profile,
            op,
            obj.path.as_str(),
            requested.to_string(),
            false,
            false,
        );
        Err(KernelError::with_context(Errno::EACCES, "apparmor"))
    }
}

impl SecurityModule for AppArmor {
    fn name(&self) -> &'static str {
        "apparmor"
    }

    fn file_open(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, mask: AccessMask) -> KernelResult<()> {
        self.check_file(ctx, obj, FilePerms::from_access_mask(mask), "open")
    }

    fn file_permission(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        mask: AccessMask,
    ) -> KernelResult<()> {
        self.check_file(ctx, obj, FilePerms::from_access_mask(mask), "file_perm")
    }

    fn file_ioctl(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, _cmd: u32) -> KernelResult<()> {
        self.check_file(ctx, obj, FilePerms::IOCTL, "ioctl")
    }

    fn file_mmap(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, _mask: AccessMask) -> KernelResult<()> {
        self.check_file(ctx, obj, FilePerms::MMAP, "mmap")
    }

    fn inode_unlink(&self, ctx: &HookCtx, obj: &ObjectRef<'_>) -> KernelResult<()> {
        self.check_file(ctx, obj, FilePerms::WRITE, "unlink")
    }

    fn inode_rename(&self, ctx: &HookCtx, old: &ObjectRef<'_>, new: &KPath) -> KernelResult<()> {
        // AppArmor requires write on both the source and the destination.
        self.check_file(ctx, old, FilePerms::WRITE, "rename")?;
        let new_obj = ObjectRef {
            path: new,
            kind: old.kind,
            dev: None,
        };
        self.check_file(ctx, &new_obj, FilePerms::WRITE, "rename")
    }

    fn bprm_check(&self, ctx: &HookCtx, exe: &KPath) -> KernelResult<()> {
        // If the task is confined, it may only exec what its profile allows.
        let Some(profile) = self.confining(ctx.pid) else {
            return Ok(());
        };
        let decision = if self.policy.dfa_matcher_enabled() {
            profile.rules().evaluate_dfa(exe.as_str())
        } else {
            profile.rules().evaluate(exe.as_str())
        };
        if decision.permits(FilePerms::EXEC) || profile.profile().mode == ProfileMode::Complain {
            Ok(())
        } else {
            self.audit(
                ctx,
                &profile,
                "exec",
                exe.as_str(),
                "x".to_string(),
                false,
                false,
            );
            Err(KernelError::with_context(Errno::EACCES, "apparmor"))
        }
    }

    fn bprm_committed(&self, ctx: &HookCtx, exe: &KPath) {
        // Domain transition: attach the profile matching the new image.
        if let Some(profile) = self.policy.find_by_attachment(exe.as_str()) {
            self.confinement.update(|map| {
                let mut next = map.clone();
                next.insert(ctx.pid, profile);
                (next, ())
            });
        }
    }

    fn task_alloc(&self, ctx: &HookCtx, child: Pid) -> KernelResult<()> {
        if let Some(profile) = self.confining(ctx.pid) {
            self.confinement.update(|map| {
                let mut next = map.clone();
                next.insert(child, profile);
                (next, ())
            });
        }
        Ok(())
    }

    fn task_free(&self, pid: Pid) {
        // Skip the copy-and-swap when the task was never confined: exit of
        // unconfined tasks must not invalidate SACK's cached oracle answers.
        if self.confinement.read().contains_key(&pid) {
            self.confinement.update(|map| {
                let mut next = map.clone();
                next.remove(&pid);
                (next, ())
            });
        }
    }

    fn capable(&self, ctx: &HookCtx, cap: Capability) -> KernelResult<()> {
        let Some(profile) = self.confining(ctx.pid) else {
            return Ok(());
        };
        if profile.profile().capabilities.contains(&cap) {
            return Ok(());
        }
        if profile.profile().mode == ProfileMode::Complain {
            self.audit(
                ctx,
                &profile,
                "capable",
                cap.name(),
                String::new(),
                true,
                true,
            );
            return Ok(());
        }
        self.audit(
            ctx,
            &profile,
            "capable",
            cap.name(),
            String::new(),
            false,
            false,
        );
        Err(KernelError::with_context(Errno::EPERM, "apparmor"))
    }

    fn socket_create(&self, ctx: &HookCtx, family: SocketFamily) -> KernelResult<()> {
        let Some(profile) = self.confining(ctx.pid) else {
            return Ok(());
        };
        if profile.profile().networks.contains(&family) {
            return Ok(());
        }
        if profile.profile().mode == ProfileMode::Complain {
            self.audit(
                ctx,
                &profile,
                "socket",
                &family.to_string(),
                String::new(),
                true,
                true,
            );
            return Ok(());
        }
        self.audit(
            ctx,
            &profile,
            "socket",
            &family.to_string(),
            String::new(),
            false,
            false,
        );
        Err(KernelError::with_context(Errno::EACCES, "apparmor"))
    }
}

impl fmt::Debug for AppArmor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppArmor")
            .field("profiles", &self.policy.len())
            .field("confined", &self.confined_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_kernel::cred::Credentials;
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::types::Mode;

    fn boot_with_profiles(text: &str) -> (Arc<sack_kernel::Kernel>, Arc<AppArmor>) {
        let policy = Arc::new(PolicyDb::new());
        policy.load_text(text).unwrap();
        let apparmor = AppArmor::new(policy);
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&apparmor) as Arc<dyn SecurityModule>)
            .boot();
        (kernel, apparmor)
    }

    #[test]
    fn unconfined_tasks_are_unrestricted() {
        let (kernel, _aa) = boot_with_profiles("profile locked { /nothing r, }");
        let p = kernel.spawn(Credentials::root());
        assert!(p.write_file("/tmp/x", b"1").is_ok());
    }

    #[test]
    fn confined_task_is_mediated() {
        let (kernel, aa) = boot_with_profiles("profile app { /tmp/allowed rw, /tmp/* r, }");
        let p = kernel.spawn(Credentials::root());
        // Pre-create files while unconfined.
        p.write_file("/tmp/allowed", b"a").unwrap();
        p.write_file("/tmp/readonly", b"r").unwrap();
        aa.set_profile(p.pid(), "app").unwrap();

        assert!(p.open("/tmp/allowed", OpenFlags::read_write()).is_ok());
        assert!(p.open("/tmp/readonly", OpenFlags::read_only()).is_ok());
        let err = p
            .open("/tmp/readonly", OpenFlags::write_only())
            .unwrap_err();
        assert_eq!(err.context(), Some("apparmor"));
        let log = aa.take_audit_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op, "open");
        assert!(!log[0].allowed);
    }

    #[test]
    fn exec_attaches_profile_and_fork_inherits() {
        let (kernel, aa) =
            boot_with_profiles("profile app /usr/bin/app { /usr/bin/app rx, /tmp/* rw, }");
        let p = kernel.spawn(Credentials::user(1000, 1000));
        kernel
            .vfs()
            .create_file(
                &KPath::new("/usr/bin/app").unwrap(),
                Mode::EXEC,
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        p.exec("/usr/bin/app").unwrap();
        assert_eq!(aa.current_profile(p.pid()).as_deref(), Some("app"));
        let child = p.fork().unwrap();
        assert_eq!(aa.current_profile(child.pid()).as_deref(), Some("app"));
        // Confinement applies in the child.
        assert!(child.write_file("/tmp/ok", b"1").is_ok());
        assert!(child.write_file("/etc/motd2", b"1").is_err());
        let child_pid = child.pid();
        child.exit();
        assert_eq!(aa.current_profile(child_pid), None, "task_free cleans up");
    }

    #[test]
    fn confined_exec_requires_x_permission() {
        let (kernel, aa) =
            boot_with_profiles("profile app { /usr/bin/tool rx, }\nprofile other { /x r, }");
        let p = kernel.spawn(Credentials::root());
        for exe in ["/usr/bin/tool", "/usr/bin/forbidden"] {
            kernel
                .vfs()
                .create_file(
                    &KPath::new(exe).unwrap(),
                    Mode::EXEC,
                    sack_kernel::Uid::ROOT,
                    sack_kernel::Gid(0),
                )
                .unwrap();
        }
        aa.set_profile(p.pid(), "app").unwrap();
        assert!(p.exec("/usr/bin/tool").is_ok());
        assert!(p.exec("/usr/bin/forbidden").is_err());
    }

    #[test]
    fn complain_mode_logs_but_allows() {
        let (kernel, aa) = boot_with_profiles("profile app flags=(complain) { /tmp/allowed r, }");
        let p = kernel.spawn(Credentials::root());
        p.write_file("/tmp/other", b"x").unwrap();
        aa.set_profile(p.pid(), "app").unwrap();
        assert!(p.read_to_vec("/tmp/other").is_ok());
        let log = aa.take_audit_log();
        assert!(!log.is_empty());
        assert!(log.iter().all(|e| e.complain && e.allowed));
    }

    #[test]
    fn capability_mediation() {
        let (kernel, aa) =
            boot_with_profiles("profile priv { capability kill, }\nprofile unpriv { /x r, }");
        let p = kernel.spawn(Credentials::root());
        aa.set_profile(p.pid(), "priv").unwrap();
        let task = kernel.tasks().get(p.pid()).unwrap();
        assert!(kernel.capable(&task.hook_ctx(), Capability::Kill).is_ok());
        aa.set_profile(p.pid(), "unpriv").unwrap();
        let err = kernel
            .capable(&task.hook_ctx(), Capability::Kill)
            .unwrap_err();
        assert_eq!(err.context(), Some("apparmor"));
    }

    #[test]
    fn socket_family_mediation() {
        let (kernel, aa) =
            boot_with_profiles("profile net { network unix, }\nprofile nonet { /x r, }");
        let server = kernel.spawn(Credentials::root());
        server.listen(SocketFamily::Unix, "/run/s").unwrap();
        let p = kernel.spawn(Credentials::root());
        aa.set_profile(p.pid(), "net").unwrap();
        assert!(p.connect(SocketFamily::Unix, "/run/s").is_ok());
        assert!(p.connect(SocketFamily::Inet, "tcp:80").is_err());
        aa.set_profile(p.pid(), "nonet").unwrap();
        assert!(p.connect(SocketFamily::Unix, "/run/s").is_err());
    }

    #[test]
    fn pipes_are_not_path_mediated() {
        let (kernel, aa) = boot_with_profiles("profile app { /tmp/* rw, }");
        let p = kernel.spawn(Credentials::root());
        aa.set_profile(p.pid(), "app").unwrap();
        let (r, w) = p.pipe().unwrap();
        p.write(w, b"t").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(p.read(r, &mut buf).unwrap(), 1);
    }

    #[test]
    fn refresh_confinement_picks_up_patches() {
        let (kernel, aa) = boot_with_profiles("profile app { /tmp/a r, }");
        let p = kernel.spawn(Credentials::root());
        p.write_file("/tmp/b", b"x").unwrap();
        aa.set_profile(p.pid(), "app").unwrap();
        assert!(p.read_to_vec("/tmp/b").is_err());
        aa.policy()
            .patch("app", |prof| {
                prof.path_rules
                    .push(crate::profile::PathRule::allow("/tmp/b", FilePerms::READ).unwrap());
            })
            .unwrap();
        // Without refresh the task still holds the old snapshot.
        assert!(p.read_to_vec("/tmp/b").is_err());
        aa.refresh_confinement();
        assert!(p.read_to_vec("/tmp/b").is_ok());
    }

    #[test]
    fn deny_rule_beats_broad_allow() {
        let (kernel, aa) = boot_with_profiles("profile app { /dev/** rwi, deny /dev/car/** wi, }");
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/dev/car").unwrap())
            .unwrap();
        let p = kernel.spawn(Credentials::root());
        p.write_file("/dev/car/door0", b"d").unwrap(); // unconfined pre-setup
        aa.set_profile(p.pid(), "app").unwrap();
        assert!(p.open("/dev/car/door0", OpenFlags::read_only()).is_ok());
        assert!(p.open("/dev/car/door0", OpenFlags::write_only()).is_err());
    }
}
