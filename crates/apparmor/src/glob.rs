//! AppArmor-style path globs.
//!
//! Supported syntax (a faithful subset of AppArmor's file-rule globbing):
//!
//! * `*` — any sequence of characters **within one path component** (no `/`)
//! * `**` — any sequence of characters, crossing `/`
//! * `?` — any single character except `/`
//! * `[abc]`, `[a-z]`, `[^abc]` — character classes
//! * `{alt1,alt2}` — alternation (expanded at compile time)
//!
//! Patterns are compiled once ([`Glob::compile`]) and matched many times on
//! the hot `file_permission` path, so matching is allocation-free.

use std::fmt;

/// Error raised for malformed glob patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGlobError {
    message: String,
}

impl ParseGlobError {
    fn new(message: impl Into<String>) -> Self {
        ParseGlobError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseGlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid glob: {}", self.message)
    }
}

impl std::error::Error for ParseGlobError {}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    Lit(u8),
    /// `*`: any run not containing `/`.
    Star,
    /// `**`: any run, `/` included.
    DoubleStar,
    /// `?`: one char, not `/`.
    AnyChar,
    /// Character class; `negated` inverts membership.
    Class {
        set: Vec<(u8, u8)>,
        negated: bool,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Pattern {
    pub(crate) tokens: Vec<Token>,
}

impl Pattern {
    fn matches(&self, text: &[u8]) -> bool {
        matches_at(&self.tokens, text)
    }
}

pub(crate) fn token_matches(tok: &Token, b: u8) -> bool {
    match tok {
        Token::Lit(c) => *c == b,
        Token::AnyChar => b != b'/',
        Token::Class { set, negated } => {
            let inside = set.iter().any(|(lo, hi)| b >= *lo && b <= *hi);
            inside != *negated && b != b'/'
        }
        Token::Star | Token::DoubleStar => unreachable!("wildcards handled in matcher"),
    }
}

/// Glob matcher: recursive with failure memoization.
///
/// A single-backtrack-slot matcher (the classic trick for shell `*`) is
/// *incorrect* here because the pattern mixes two wildcard kinds with
/// different alphabets — e.g. `/***` (= `**` then `*`) must match `/a/a`,
/// which requires re-extending the *earlier* `**` after the later `*`
/// fails. Full backtracking with an O(|pattern|·|text|) memo of failed
/// states keeps worst-case time polynomial.
fn matches_at(tokens: &[Token], text: &[u8]) -> bool {
    let width = text.len() + 1;
    let mut failed = vec![false; (tokens.len() + 1) * width];
    matches_rec(tokens, text, 0, 0, &mut failed, width)
}

fn matches_rec(
    tokens: &[Token],
    text: &[u8],
    ti: usize,
    si: usize,
    failed: &mut [bool],
    width: usize,
) -> bool {
    if failed[ti * width + si] {
        return false;
    }
    let result = match tokens.get(ti) {
        None => si == text.len(),
        Some(Token::DoubleStar) => {
            // Try consuming 0..=rest characters.
            (si..=text.len()).any(|next| matches_rec(tokens, text, ti + 1, next, failed, width))
        }
        Some(Token::Star) => {
            // Consume 0..n characters, stopping at `/`.
            let mut next = si;
            loop {
                if matches_rec(tokens, text, ti + 1, next, failed, width) {
                    break true;
                }
                if next >= text.len() || text[next] == b'/' {
                    break false;
                }
                next += 1;
            }
        }
        Some(tok) => {
            si < text.len()
                && token_matches(tok, text[si])
                && matches_rec(tokens, text, ti + 1, si + 1, failed, width)
        }
    };
    if !result {
        failed[ti * width + si] = true;
    }
    result
}

fn parse_pattern(pat: &str) -> Result<Pattern, ParseGlobError> {
    let bytes = pat.as_bytes();
    let mut tokens = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'*' => {
                if bytes.get(i + 1) == Some(&b'*') {
                    tokens.push(Token::DoubleStar);
                    i += 2;
                } else {
                    tokens.push(Token::Star);
                    i += 1;
                }
            }
            b'?' => {
                tokens.push(Token::AnyChar);
                i += 1;
            }
            b'[' => {
                let mut j = i + 1;
                let negated = bytes.get(j) == Some(&b'^');
                if negated {
                    j += 1;
                }
                let mut set = Vec::new();
                let mut closed = false;
                while j < bytes.len() {
                    if bytes[j] == b']' && !set.is_empty() {
                        closed = true;
                        break;
                    }
                    if j + 2 < bytes.len() && bytes[j + 1] == b'-' && bytes[j + 2] != b']' {
                        if bytes[j] > bytes[j + 2] {
                            return Err(ParseGlobError::new(format!(
                                "descending range in class of `{pat}`"
                            )));
                        }
                        set.push((bytes[j], bytes[j + 2]));
                        j += 3;
                    } else {
                        set.push((bytes[j], bytes[j]));
                        j += 1;
                    }
                }
                if !closed {
                    return Err(ParseGlobError::new(format!(
                        "unterminated character class in `{pat}`"
                    )));
                }
                tokens.push(Token::Class { set, negated });
                i = j + 1;
            }
            b'\\' => {
                let next = bytes
                    .get(i + 1)
                    .ok_or_else(|| ParseGlobError::new(format!("trailing escape in `{pat}`")))?;
                tokens.push(Token::Lit(*next));
                i += 2;
            }
            c => {
                tokens.push(Token::Lit(c));
                i += 1;
            }
        }
    }
    Ok(Pattern { tokens })
}

/// Expands `{a,b,...}` alternations into plain patterns (recursively for
/// nested alternations).
fn expand_braces(pat: &str) -> Result<Vec<String>, ParseGlobError> {
    let bytes = pat.as_bytes();
    let mut depth = 0usize;
    let mut open = None;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'{' => {
                if depth == 0 {
                    open = Some(i);
                }
                depth += 1;
            }
            b'}' => {
                if depth == 0 {
                    return Err(ParseGlobError::new(format!("unbalanced `}}` in `{pat}`")));
                }
                depth -= 1;
                if depth == 0 {
                    let start = open.expect("open recorded when depth became 1");
                    let inner = &pat[start + 1..i];
                    let mut alts = Vec::new();
                    let (mut alt_start, mut d) = (0usize, 0usize);
                    for (j, c) in inner.bytes().enumerate() {
                        match c {
                            b'{' => d += 1,
                            b'}' => d -= 1,
                            b',' if d == 0 => {
                                alts.push(&inner[alt_start..j]);
                                alt_start = j + 1;
                            }
                            _ => {}
                        }
                    }
                    alts.push(&inner[alt_start..]);
                    let mut out = Vec::new();
                    for alt in alts {
                        let candidate = format!("{}{}{}", &pat[..start], alt, &pat[i + 1..]);
                        out.extend(expand_braces(&candidate)?);
                    }
                    return Ok(out);
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(ParseGlobError::new(format!("unbalanced `{{` in `{pat}`")));
    }
    Ok(vec![pat.to_string()])
}

/// A compiled glob pattern.
///
/// # Examples
///
/// ```
/// use sack_apparmor::glob::Glob;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Glob::compile("/dev/car/door*")?;
/// assert!(g.matches("/dev/car/door0"));
/// assert!(!g.matches("/dev/car/doors/0")); // `*` stops at `/`
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Glob {
    source: String,
    patterns: Vec<Pattern>,
    /// Longest literal prefix shared by all alternates — a cheap reject
    /// filter on the hot path.
    literal_prefix: String,
}

impl Glob {
    /// Compiles a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ParseGlobError`] for unbalanced braces, unterminated
    /// character classes, descending ranges, or trailing escapes.
    pub fn compile(pattern: &str) -> Result<Glob, ParseGlobError> {
        let expanded = expand_braces(pattern)?;
        let patterns = expanded
            .iter()
            .map(|p| parse_pattern(p))
            .collect::<Result<Vec<_>, _>>()?;
        let literal_prefix = common_literal_prefix(&patterns);
        Ok(Glob {
            source: pattern.to_string(),
            patterns,
            literal_prefix,
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The longest literal prefix (used for bucketing in rule indexes).
    pub fn literal_prefix(&self) -> &str {
        &self.literal_prefix
    }

    /// The compiled brace-alternates, for the crate-internal DFA builder.
    pub(crate) fn alternates(&self) -> &[Pattern] {
        &self.patterns
    }

    /// True if the pattern contains no wildcards at all (exact match).
    pub fn is_literal(&self) -> bool {
        self.patterns.len() == 1 && self.patterns[0].tokens.len() == self.literal_prefix.len()
    }

    /// Tests `text` against the pattern.
    pub fn matches(&self, text: &str) -> bool {
        let bytes = text.as_bytes();
        if !bytes.starts_with(self.literal_prefix.as_bytes()) {
            return false;
        }
        self.patterns.iter().any(|p| p.matches(bytes))
    }

    /// True if some path is matched by **both** globs (language
    /// intersection is non-empty).
    ///
    /// Decided exactly by a breadth-first search over pairs of NFA state
    /// sets — no sampling, no heuristics. Used by the policy analyzer to
    /// find allow/deny conflicts and cross-layer stacking holes.
    ///
    /// # Examples
    ///
    /// ```
    /// use sack_apparmor::glob::Glob;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let wide = Glob::compile("/dev/car/**")?;
    /// let door = Glob::compile("/dev/car/door*")?;
    /// assert!(wide.overlaps(&door));
    /// assert!(!door.overlaps(&Glob::compile("/tmp/*")?));
    /// # Ok(())
    /// # }
    /// ```
    pub fn overlaps(&self, other: &Glob) -> bool {
        let a = Nfa::from_glob(self);
        let b = Nfa::from_glob(other);
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(a.start_set(), b.start_set())];
        while let Some((sa, sb)) = stack.pop() {
            if !seen.insert((sa.clone(), sb.clone())) {
                continue;
            }
            if a.accepting(&sa) && b.accepting(&sb) {
                return true;
            }
            for byte in 0..=255u8 {
                let na = a.step(&sa, byte);
                if no_bits(&na) {
                    continue;
                }
                let nb = b.step(&sb, byte);
                if no_bits(&nb) {
                    continue;
                }
                if !seen.contains(&(na.clone(), nb.clone())) {
                    stack.push((na, nb));
                }
            }
        }
        false
    }

    /// True if every path matched by `other` is also matched by `self`
    /// (language containment: `other ⊆ self`).
    ///
    /// Decided exactly by determinising both NFAs on the fly and searching
    /// for a path accepted by `other` but not by `self`. Used by the
    /// policy analyzer to detect rules shadowed by an earlier, broader
    /// rule.
    ///
    /// # Examples
    ///
    /// ```
    /// use sack_apparmor::glob::Glob;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let wide = Glob::compile("/dev/car/**")?;
    /// let door = Glob::compile("/dev/car/door*")?;
    /// assert!(wide.covers(&door));
    /// assert!(!door.covers(&wide));
    /// # Ok(())
    /// # }
    /// ```
    pub fn covers(&self, other: &Glob) -> bool {
        let sup = Nfa::from_glob(self);
        let sub = Nfa::from_glob(other);
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![(sub.start_set(), sup.start_set())];
        while let Some((ss, sp)) = stack.pop() {
            if !seen.insert((ss.clone(), sp.clone())) {
                continue;
            }
            // A witness: `other` accepts here but `self` does not.
            if sub.accepting(&ss) && !sup.accepting(&sp) {
                return false;
            }
            for byte in 0..=255u8 {
                let ns = sub.step(&ss, byte);
                if no_bits(&ns) {
                    // `other` rejects every extension along this byte.
                    continue;
                }
                // `self`'s set may go empty — keep exploring: any word
                // `other` still accepts from here is a counterexample.
                let np = sup.step(&sp, byte);
                if !seen.contains(&(ns.clone(), np.clone())) {
                    stack.push((ns, np));
                }
            }
        }
        true
    }
}

/// A set of NFA positions, packed as a bitmask.
type PosSet = Vec<u64>;

fn set_bit(set: &mut PosSet, i: usize) {
    set[i / 64] |= 1 << (i % 64);
}

fn get_bit(set: &PosSet, i: usize) -> bool {
    set[i / 64] & (1 << (i % 64)) != 0
}

fn no_bits(set: &PosSet) -> bool {
    set.iter().all(|word| *word == 0)
}

/// Position-based NFA over the union of a glob's brace alternates.
///
/// Each alternate's token list contributes `len + 1` positions: one per
/// token plus an accepting end marker (`None`). Wildcard tokens add an
/// epsilon edge to the next position (match empty) and a self-loop that
/// consumes a byte (`*` refuses `/`, `**` does not).
struct Nfa<'a> {
    /// `Some(tok)` consumes input at this position; `None` is an
    /// alternate's accepting end.
    positions: Vec<Option<&'a Token>>,
    starts: Vec<usize>,
}

impl<'a> Nfa<'a> {
    fn from_glob(glob: &'a Glob) -> Nfa<'a> {
        let mut positions = Vec::new();
        let mut starts = Vec::new();
        for pattern in &glob.patterns {
            starts.push(positions.len());
            positions.extend(pattern.tokens.iter().map(Some));
            positions.push(None);
        }
        Nfa { positions, starts }
    }

    fn empty_set(&self) -> PosSet {
        vec![0u64; self.positions.len().div_ceil(64)]
    }

    fn start_set(&self) -> PosSet {
        let mut set = self.empty_set();
        for &s in &self.starts {
            set_bit(&mut set, s);
        }
        self.close(&mut set);
        set
    }

    /// Epsilon closure: wildcards may match the empty string, so a set
    /// containing a wildcard position also contains the position after it.
    fn close(&self, set: &mut PosSet) {
        loop {
            let mut changed = false;
            for i in 0..self.positions.len() {
                if get_bit(set, i)
                    && matches!(self.positions[i], Some(Token::Star | Token::DoubleStar))
                    && !get_bit(set, i + 1)
                {
                    set_bit(set, i + 1);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// All positions reachable by consuming `byte`, epsilon-closed.
    fn step(&self, set: &PosSet, byte: u8) -> PosSet {
        let mut out = self.empty_set();
        for i in 0..self.positions.len() {
            if !get_bit(set, i) {
                continue;
            }
            match self.positions[i] {
                None => {}
                Some(Token::Star) if byte != b'/' => set_bit(&mut out, i),
                Some(Token::Star) => {}
                Some(Token::DoubleStar) => set_bit(&mut out, i),
                Some(tok) if token_matches(tok, byte) => set_bit(&mut out, i + 1),
                Some(_) => {}
            }
        }
        self.close(&mut out);
        out
    }

    fn accepting(&self, set: &PosSet) -> bool {
        (0..self.positions.len()).any(|i| get_bit(set, i) && self.positions[i].is_none())
    }
}

impl fmt::Display for Glob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl std::str::FromStr for Glob {
    type Err = ParseGlobError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Glob::compile(s)
    }
}

fn common_literal_prefix(patterns: &[Pattern]) -> String {
    let mut prefix: Option<Vec<u8>> = None;
    for p in patterns {
        let mut lit = Vec::new();
        for tok in &p.tokens {
            match tok {
                Token::Lit(c) => lit.push(*c),
                _ => break,
            }
        }
        prefix = Some(match prefix {
            None => lit,
            Some(prev) => {
                let n = prev
                    .iter()
                    .zip(lit.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                prev[..n].to_vec()
            }
        });
    }
    String::from_utf8(prefix.unwrap_or_default()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Glob::compile(pat).unwrap().matches(text)
    }

    #[test]
    fn literal_match() {
        assert!(m("/etc/passwd", "/etc/passwd"));
        assert!(!m("/etc/passwd", "/etc/passw"));
        assert!(!m("/etc/passwd", "/etc/passwd2"));
    }

    #[test]
    fn star_stops_at_slash() {
        assert!(m("/dev/car/door*", "/dev/car/door0"));
        assert!(m("/dev/car/door*", "/dev/car/door"));
        assert!(!m("/dev/car/door*", "/dev/car/doors/0"));
        assert!(m("/tmp/*.txt", "/tmp/a.txt"));
        assert!(!m("/tmp/*.txt", "/tmp/sub/a.txt"));
    }

    #[test]
    fn double_star_crosses_slash() {
        assert!(m("/usr/lib/**", "/usr/lib/x/y/z.so"));
        assert!(m("/usr/lib/**", "/usr/lib/a"));
        assert!(!m("/usr/lib/**", "/usr/libx/a"));
        assert!(m("/**", "/anything/at/all"));
        assert!(m("/**/door0", "/dev/car/door0"));
    }

    #[test]
    fn question_mark_single_char() {
        assert!(m("/dev/tty?", "/dev/tty1"));
        assert!(!m("/dev/tty?", "/dev/tty10"));
        assert!(!m("/dev/tty?", "/dev/tty/"));
    }

    #[test]
    fn character_classes() {
        assert!(m("/dev/door[0-3]", "/dev/door2"));
        assert!(!m("/dev/door[0-3]", "/dev/door5"));
        assert!(m("/dev/door[^0-3]", "/dev/door5"));
        assert!(!m("/dev/door[^0-3]", "/dev/door1"));
        assert!(m("/dev/[dw]oor", "/dev/door"));
        assert!(m("/dev/[dw]oor", "/dev/woor"));
    }

    #[test]
    fn brace_alternation() {
        let g = Glob::compile("/dev/car/{door,window}*").unwrap();
        assert!(g.matches("/dev/car/door0"));
        assert!(g.matches("/dev/car/window1"));
        assert!(!g.matches("/dev/car/audio"));
    }

    #[test]
    fn nested_braces() {
        let g = Glob::compile("/{a,b{c,d}}/f").unwrap();
        assert!(g.matches("/a/f"));
        assert!(g.matches("/bc/f"));
        assert!(g.matches("/bd/f"));
        assert!(!g.matches("/b/f"));
    }

    #[test]
    fn escape_literal_star() {
        assert!(m(r"/tmp/\*", "/tmp/*"));
        assert!(!m(r"/tmp/\*", "/tmp/x"));
    }

    #[test]
    fn parse_errors() {
        assert!(Glob::compile("/tmp/{a,b").is_err());
        assert!(Glob::compile("/tmp/a}").is_err());
        assert!(Glob::compile("/tmp/[abc").is_err());
        assert!(Glob::compile("/tmp/[z-a]").is_err());
        assert!(Glob::compile(r"/tmp/\").is_err());
    }

    #[test]
    fn literal_prefix_extraction() {
        assert_eq!(
            Glob::compile("/dev/car/door*").unwrap().literal_prefix(),
            "/dev/car/door"
        );
        assert_eq!(
            Glob::compile("/dev/{a,b}").unwrap().literal_prefix(),
            "/dev/"
        );
        assert_eq!(
            Glob::compile("/etc/passwd").unwrap().literal_prefix(),
            "/etc/passwd"
        );
        assert!(Glob::compile("/etc/passwd").unwrap().is_literal());
        assert!(!Glob::compile("/etc/*").unwrap().is_literal());
    }

    #[test]
    fn prefix_filter_does_not_cause_false_negatives() {
        // `**` can match empty, so the prefix is everything before it.
        assert!(m("/a/**", "/a/"));
        let g = Glob::compile("/a**").unwrap();
        assert!(g.matches("/a"));
        assert!(g.matches("/a/b/c"));
    }

    #[test]
    fn double_star_backtracks_across_components() {
        assert!(m("/**/secret", "/a/b/c/secret"));
        // `**` is character-wise (AppArmor semantics), not bash globstar:
        // `/a/**/z` needs a literal `/` on both sides of the match.
        assert!(!m("/a/**/z", "/a/z"));
        assert!(m("/a**/z", "/a/z"));
        assert!(m("/a/**/z", "/a/b/z"));
        assert!(!m("/a/**/z", "/a/b/zz"));
    }

    #[test]
    fn display_and_fromstr_roundtrip() {
        let g: Glob = "/dev/*".parse().unwrap();
        assert_eq!(g.to_string(), "/dev/*");
        assert_eq!(g.source(), "/dev/*");
    }

    fn g(pat: &str) -> Glob {
        Glob::compile(pat).unwrap()
    }

    #[test]
    fn overlaps_basic() {
        assert!(g("/dev/car/**").overlaps(&g("/dev/car/door*")));
        assert!(g("/dev/car/door*").overlaps(&g("/dev/car/**")));
        assert!(!g("/tmp/*").overlaps(&g("/dev/*")));
        assert!(g("/etc/passwd").overlaps(&g("/etc/passwd")));
        assert!(!g("/etc/passwd").overlaps(&g("/etc/shadow")));
    }

    #[test]
    fn overlaps_wildcard_interleavings() {
        // Common witness `/ayx`: matched by both.
        assert!(g("/a*x").overlaps(&g("/ay*")));
        // `*` cannot cross `/`, so the only candidates disagree.
        assert!(!g("/a/*").overlaps(&g("/a/b/*")));
        assert!(g("/a/**").overlaps(&g("/a/b/*")));
        assert!(g("/**").overlaps(&g("/dev/car/door0")));
    }

    #[test]
    fn overlaps_classes() {
        assert!(g("/door[0-3]").overlaps(&g("/door[3-9]")));
        assert!(!g("/door[0-3]").overlaps(&g("/door[4-9]")));
        assert!(!g("/door[^0-9]").overlaps(&g("/door[0-9]")));
        assert!(g("/door?").overlaps(&g("/door[0-9]")));
    }

    #[test]
    fn overlaps_braces() {
        assert!(g("/dev/car/{door,window}*").overlaps(&g("/dev/car/window1")));
        assert!(!g("/dev/car/{door,window}*").overlaps(&g("/dev/car/audio")));
    }

    #[test]
    fn covers_basic() {
        assert!(g("/dev/**").covers(&g("/dev/car/door*")));
        assert!(!g("/dev/car/door*").covers(&g("/dev/**")));
        assert!(g("/dev/car/door*").covers(&g("/dev/car/door*")));
        assert!(g("/dev/car/door*").covers(&g("/dev/car/door[0-3]")));
        assert!(!g("/dev/car/door[0-3]").covers(&g("/dev/car/door*")));
    }

    #[test]
    fn covers_respects_component_boundaries() {
        // `*` stays within one component, `**` crosses: `/dev/*` misses
        // `/dev/car/x`, so it cannot cover `/dev/**`.
        assert!(!g("/dev/*").covers(&g("/dev/**")));
        assert!(g("/dev/**").covers(&g("/dev/*")));
        assert!(!g("/dev/*").covers(&g("/dev/car/*")));
    }

    #[test]
    fn covers_braces_and_classes() {
        assert!(g("/{a,b}/*").covers(&g("/a/*")));
        assert!(!g("/a/*").covers(&g("/{a,b}/*")));
        assert!(g("/dev/tty?").covers(&g("/dev/tty[0-9]")));
        assert!(!g("/dev/tty[0-9]").covers(&g("/dev/tty?")));
    }

    #[test]
    fn overlap_and_containment_agree_with_matching() {
        // Spot-check the decision procedures against concrete matches.
        let cases = [
            ("/dev/car/**", "/dev/car/door0"),
            ("/a/**/z", "/a/b/z"),
            ("/tmp/*.txt", "/tmp/a.txt"),
        ];
        for (pat, path) in cases {
            let exact = g(path);
            assert!(g(pat).matches(path));
            assert!(g(pat).overlaps(&exact), "{pat} should overlap {path}");
            assert!(g(pat).covers(&exact), "{pat} should cover {path}");
        }
    }
}
