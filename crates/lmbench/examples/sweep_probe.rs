//! Scaling probe: parse/check/compile timings for the synthetic policy at a
//! given rule count, plus the resulting per-state DFA sizes.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let text = sack_lmbench::workload::synthetic_independent_policy(4, n);
    let t0 = std::time::Instant::now();
    let ast = sack_core::SackPolicy::parse(&text).unwrap();
    let parse_t = t0.elapsed();
    let t1 = std::time::Instant::now();
    let issues = sack_core::policy::check_policy(&ast);
    let check_t = t1.elapsed();
    let t2 = std::time::Instant::now();
    let compiled = ast.compile().unwrap();
    let compile_t = t2.elapsed();
    let stats = compiled.state_dfa(sack_core::StateId(0)).stats();
    println!(
        "{n} rules: parse {parse_t:?} check {check_t:?} ({} issues) compile {compile_t:?} dfa(s0)={{states:{}, transitions:{}, classes:{}}}",
        issues.len(), stats.states, stats.transitions, stats.classes
    );
}
