//! CI smoke for the profile-compilation pipeline (DESIGN.md §12).
//!
//! Run by `scripts/check.sh`: proves on every box — including
//! single-core CI where the benchmark gate's parallel floor is exempt —
//! that the parallel bulk-compile path and the lazy first-touch path
//! actually execute:
//!
//! * a 2-worker bulk load of 64 distinct-bodied profiles compiles every
//!   body exactly once through the scoped worker pool;
//! * a lazy load of the same bundle compiles nothing, and one forced
//!   first touch compiles exactly the touched profile while the rest
//!   stay stubs.
//!
//! Exits non-zero with a message on any violation.

use sack_apparmor::profile::{FilePerms, PathRule, Profile};
use sack_apparmor::{CompileMode, PolicyDb};

const PROFILES: usize = 64;

fn bundle() -> Vec<Profile> {
    (0..PROFILES)
        .map(|i| {
            let mut profile = Profile::new(&format!("smoke{i}"));
            for r in 0..3 {
                profile.path_rules.push(
                    PathRule::allow(
                        &format!("/smoke{i}/dir{r}/**"),
                        FilePerms::READ | FilePerms::WRITE,
                    )
                    .expect("generated pattern compiles"),
                );
            }
            profile
        })
        .collect()
}

fn main() {
    // Parallel eager bulk load on a pinned 2-worker pool.
    let eager = PolicyDb::new();
    eager.set_compile_workers(2);
    let n = eager.load_many(bundle());
    assert_eq!(n, PROFILES, "bulk load installed {n}/{PROFILES} profiles");
    assert_eq!(
        eager.compile_count(),
        PROFILES as u64,
        "2-worker bulk load must compile every distinct body exactly once"
    );
    for i in 0..PROFILES {
        let compiled = eager.get(&format!("smoke{i}")).expect("profile loaded");
        assert!(
            compiled.rules().dfa_handle().is_compiled(),
            "smoke{i}: eager bulk load left an uncompiled stub"
        );
    }
    println!("profile_compile_smoke: parallel bulk load compiled {PROFILES} profiles on 2 workers");

    // Lazy load + one forced first touch.
    let lazy = PolicyDb::new();
    lazy.set_compile_mode(CompileMode::Lazy);
    lazy.load_many(bundle());
    assert_eq!(lazy.compile_count(), 0, "lazy load must not compile");
    let touched = lazy.get("smoke7").expect("profile loaded");
    let decision = touched.rules().evaluate_dfa("/smoke7/dir0/x");
    assert!(
        decision.permits(FilePerms::READ),
        "first-touch decision must match the loaded rules"
    );
    assert_eq!(
        lazy.compile_count(),
        1,
        "first touch must compile exactly the touched profile"
    );
    assert!(touched.rules().dfa_handle().is_compiled());
    let untouched = lazy.get("smoke8").expect("profile loaded");
    assert!(
        !untouched.rules().dfa_handle().is_compiled(),
        "untouched profile must stay a stub"
    );
    println!("profile_compile_smoke: lazy load deferred all builds; first touch compiled 1");
}
