//! Fleet aggregation-cost sweep runner (DESIGN.md §13): fold latency per
//! fleet size, plus the warm-hook p50 impact of active scraping.
//!
//! Usage:
//!   cargo run --release -p sack-lmbench --example fleet_sweep -- \
//!       [--instances 64,256,1024] [--json PATH] [--smoke]
//!
//! Prints the human table, then machine-readable `fleet_meta` /
//! `fleet_point` / `fleet_warm_impact` lines for `scripts/bench_gate.sh`.
//! With `--json PATH`, also writes the `fleet` block spliced into
//! `BENCH_hook_latency.json`. With `--smoke`, runs the 64-instance
//! rollback end-to-end instead and exits non-zero on failure.

use sack_lmbench::{render_fleet_sweep, run_fleet_smoke, run_fleet_sweep, FleetSweep};

fn main() {
    let mut instances: Vec<usize> = vec![64, 256, 1024];
    let mut json_path: Option<String> = None;
    let mut smoke = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--instances" => {
                i += 1;
                instances = args[i]
                    .split(',')
                    .map(|n| n.parse().expect("--instances takes e.g. 64,256,1024"))
                    .collect();
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--smoke" => smoke = true,
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    if smoke {
        match run_fleet_smoke() {
            Ok(report) => print!("{report}"),
            Err(message) => {
                eprintln!("fleet_sweep: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    let sweep = run_fleet_sweep(&instances);
    print!("{}", render_fleet_sweep(&sweep));

    println!("fleet_meta points={}", sweep.points.len());
    for point in &sweep.points {
        println!(
            "fleet_point instances={} fold_ns={} fold_per_instance_ns={}",
            point.instances, point.fold_ns, point.fold_per_instance_ns
        );
    }
    println!("fleet_warm_impact value={:.3}", sweep.warm_impact());

    if let Some(path) = json_path {
        std::fs::write(&path, fleet_json(&sweep)).expect("write --json output");
    }
}

/// The `fleet` block of `BENCH_hook_latency.json`, hand-rendered (the
/// repo vendors no serde; the schema is validated by
/// `scripts/validate_bench_json.py`).
fn fleet_json(sweep: &FleetSweep) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let counts: Vec<String> = sweep
        .points
        .iter()
        .map(|p| p.instances.to_string())
        .collect();
    out.push_str(&format!(
        "    \"instance_counts\": [{}],\n",
        counts.join(", ")
    ));
    out.push_str("    \"points\": {\n");
    for (i, point) in sweep.points.iter().enumerate() {
        let comma = if i + 1 < sweep.points.len() { "," } else { "" };
        out.push_str(&format!(
            "      \"i{}\": {{ \"fold_ns\": {}, \"fold_per_instance_ns\": {} }}{comma}\n",
            point.instances, point.fold_ns, point.fold_per_instance_ns
        ));
    }
    out.push_str("    },\n");
    out.push_str(&format!(
        "    \"warm_base_p50_ns\": {},\n",
        sweep.warm_base_p50_ns
    ));
    out.push_str(&format!(
        "    \"warm_scraped_p50_ns\": {},\n",
        sweep.warm_scraped_p50_ns
    ));
    out.push_str(&format!(
        "    \"warm_impact\": {:.3}\n",
        sweep.warm_impact()
    ));
    out.push_str("  }");
    out
}
