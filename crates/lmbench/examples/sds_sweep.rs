//! SDS event-plane sweep runner (DESIGN.md §11): sync-vs-batched sensor
//! ingestion throughput per target rate, plus the warm-hook p50 impact of
//! an active plane.
//!
//! Usage:
//!   cargo run --release -p sack-lmbench --example sds_sweep -- \
//!       [--rates 10000,100000,1000000] [--events 20000] [--json PATH]
//!
//! Prints the human table, then machine-readable `sds_meta` / `sds_point` /
//! `sds_speedup_at_100k` / `sds_warm_impact` lines for
//! `scripts/bench_gate.sh`. With `--json PATH`, also writes the `sds`
//! block spliced into `BENCH_hook_latency.json`.

use sack_lmbench::{render_sds_sweep, run_sds_sweep, SdsSweep};

fn main() {
    let mut rates: Vec<u64> = vec![10_000, 100_000, 1_000_000];
    let mut events: usize = 20_000;
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rates" => {
                i += 1;
                rates = args[i]
                    .split(',')
                    .map(|r| r.parse().expect("--rates takes e.g. 10000,100000"))
                    .collect();
            }
            "--events" => {
                i += 1;
                events = args[i].parse().expect("--events takes a count");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    let sweep = run_sds_sweep(&rates, events);
    print!("{}", render_sds_sweep(&sweep));

    println!(
        "sds_meta events_per_point={} rates={}",
        sweep.events_per_point,
        sweep.points.len()
    );
    for point in &sweep.points {
        println!(
            "sds_point rate={} batch={} sync_eps={:.1} batched_eps={:.1} speedup={:.2}",
            point.rate, point.batch, point.sync_eps, point.batched_eps, point.speedup
        );
    }
    if let Some(speedup) = sweep.speedup_at(100_000) {
        println!("sds_speedup_at_100k value={speedup:.2}");
    }
    println!("sds_warm_impact value={:.3}", sweep.warm_impact());

    if let Some(path) = json_path {
        std::fs::write(&path, sds_json(&sweep)).expect("write --json output");
    }
}

/// The `sds` block of `BENCH_hook_latency.json`, hand-rendered (the repo
/// vendors no serde; the schema is validated by
/// `scripts/validate_bench_json.py`).
fn sds_json(sweep: &SdsSweep) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "    \"events_per_point\": {},\n",
        sweep.events_per_point
    ));
    let rates: Vec<String> = sweep.points.iter().map(|p| p.rate.to_string()).collect();
    out.push_str(&format!("    \"rates\": [{}],\n", rates.join(", ")));
    out.push_str("    \"points\": {\n");
    for (i, point) in sweep.points.iter().enumerate() {
        let comma = if i + 1 < sweep.points.len() { "," } else { "" };
        out.push_str(&format!(
            "      \"r{}\": {{ \"batch\": {}, \"sync_eps\": {:.1}, \"batched_eps\": {:.1}, \"speedup\": {:.2} }}{comma}\n",
            point.rate, point.batch, point.sync_eps, point.batched_eps, point.speedup
        ));
    }
    out.push_str("    },\n");
    out.push_str(&format!(
        "    \"speedup_at_100k\": {:.2},\n",
        sweep.speedup_at(100_000).unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "    \"warm_base_p50_ns\": {},\n",
        sweep.warm_base_p50_ns
    ));
    out.push_str(&format!(
        "    \"warm_plane_p50_ns\": {},\n",
        sweep.warm_plane_p50_ns
    ));
    out.push_str(&format!(
        "    \"warm_impact\": {:.3}\n",
        sweep.warm_impact()
    ));
    out.push_str("  }");
    out
}
