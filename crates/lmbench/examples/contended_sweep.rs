//! Contended SMP sweep runner (DESIGN.md §9): p50/p90/p99 hook latency and
//! aggregate throughput per thread count for warm-cache, DFA-cold, and
//! reload-racing hooks.
//!
//! Usage:
//!   cargo run --release -p sack-lmbench --example contended_sweep -- \
//!       [--threads 1,2,4,8] [--iters 20000] [--json PATH]
//!
//! Prints the human table, then machine-readable `smp_meta` / `smp_point` /
//! `smp_efficiency` lines for `scripts/bench_gate.sh`. With `--json PATH`,
//! also writes the `smp` block spliced into `BENCH_hook_latency.json`.

use sack_lmbench::{
    render_contended_sweep, run_contended_sweep, ContendedScenario, ContendedSweep,
};

fn main() {
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut iters: usize = 20_000;
    let mut json_path: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = args[i]
                    .split(',')
                    .map(|t| t.parse().expect("--threads takes e.g. 1,2,4,8"))
                    .collect();
            }
            "--iters" => {
                i += 1;
                iters = args[i].parse().expect("--iters takes a count");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    let sweep = run_contended_sweep(&threads, iters);
    print!("{}", render_contended_sweep(&sweep));

    println!(
        "smp_meta available_parallelism={} iters_per_thread={}",
        sweep.available_parallelism, sweep.iters_per_thread
    );
    for point in &sweep.points {
        println!(
            "smp_point scenario={} threads={} p50_ns={} p90_ns={} p99_ns={} ops_per_sec={:.1}",
            point.scenario.name(),
            point.threads,
            point.p50_ns,
            point.p90_ns,
            point.p99_ns,
            point.ops_per_sec
        );
    }
    let max_threads = threads.iter().copied().max().unwrap_or(1);
    for scenario in ContendedScenario::ALL {
        if let Some(e) = sweep.efficiency(scenario, max_threads) {
            println!(
                "smp_efficiency scenario={} threads={max_threads} value={e:.3}",
                scenario.name()
            );
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, smp_json(&sweep, max_threads)).expect("write --json output");
    }
}

/// The `smp` block of `BENCH_hook_latency.json`, hand-rendered (the repo
/// vendors no serde; the block is small and the schema is validated by
/// `scripts/validate_bench_json.py`).
fn smp_json(sweep: &ContendedSweep, max_threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "    \"available_parallelism\": {},\n",
        sweep.available_parallelism
    ));
    let counts: Vec<String> = sweep
        .points
        .iter()
        .filter(|p| p.scenario == ContendedScenario::WarmCache)
        .map(|p| p.threads.to_string())
        .collect();
    out.push_str(&format!(
        "    \"thread_counts\": [{}],\n",
        counts.join(", ")
    ));
    out.push_str(&format!(
        "    \"iters_per_thread\": {},\n",
        sweep.iters_per_thread
    ));
    out.push_str(&format!("    \"max_threads\": {max_threads},\n"));
    out.push_str("    \"scenarios\": {\n");
    for (si, scenario) in ContendedScenario::ALL.into_iter().enumerate() {
        out.push_str(&format!("      \"{}\": {{\n", scenario.json_key()));
        for point in sweep.points.iter().filter(|p| p.scenario == scenario) {
            out.push_str(&format!(
                "        \"t{}\": {{ \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"ops_per_sec\": {:.1} }},\n",
                point.threads, point.p50_ns, point.p90_ns, point.p99_ns, point.ops_per_sec
            ));
        }
        let efficiency = sweep.efficiency(scenario, max_threads).unwrap_or(0.0);
        out.push_str(&format!(
            "        \"scaling_efficiency\": {efficiency:.3}\n"
        ));
        let comma = if si + 1 < ContendedScenario::ALL.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!("      }}{comma}\n"));
    }
    out.push_str("    }\n");
    out.push_str("  }");
    out
}
