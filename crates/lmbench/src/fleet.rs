//! Fleet aggregation-cost sweep and rollout smoke test (DESIGN.md §13).
//!
//! Two questions the fleet telemetry plane must answer with numbers:
//!
//! * **What does a fold cost?** For each fleet size the sweep boots that
//!   many attached kernel instances, drives warm traffic through every
//!   one, and times [`FleetAggregator::tick`] — a full capture-and-merge
//!   of every instance's histograms, counters and flight totals.
//! * **What does scraping cost the data plane?** A fixed-size fleet runs
//!   a warm-hook p50 probe on one member twice: once idle, once while a
//!   background thread scrapes the Prometheus endpoint (each scrape is a
//!   fresh fold) as fast as it can. The bench gate holds the ratio to
//!   `MAX_FLEET_WARM_IMPACT`: observing the fleet must not slow it.
//!
//! [`run_fleet_smoke`] is the `check.sh` end-to-end: 64 instances in 4
//! cohorts, mixed traffic, a denial spike injected into the canary
//! mid-rollout — the rollout must roll back within one soak window and
//! the tree-folded fleet p99 must equal a flat serial fold's p99.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sack_core::{LatencyHistogram, Sack, TelemetrySnapshot};
use sack_fleet::{FleetAggregator, RolloutConfig, RolloutDriver, RolloutStatus};
use sack_kernel::cred::Credentials;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::trace::Tracepoint;
use sack_kernel::types::Pid;

/// The sweep's policy: read grants on the car tree in every situation.
const FLEET_POLICY: &str = r#"
    states { normal = 0; emergency = 1; }
    events { crash; rescue_done; }
    transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
    initial normal;
    permissions { CAR; }
    state_per { normal: CAR; emergency: CAR; }
    per_rules { CAR: allow subject=* /dev/car/** r; }
"#;

/// Warm hook dispatches per instance before a fold is timed.
const WARMUP_HOOKS: usize = 32;
/// Fold timings per point; the minimum is reported.
const FOLD_REPS: usize = 5;
/// Hook dispatches per warm-probe measurement.
const WARM_PROBE_ITERS: usize = 20_000;
/// Fleet size behind the warm-probe overhead measurement.
const WARM_PROBE_FLEET: usize = 64;

/// One measured fleet size.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Registered kernel instances.
    pub instances: usize,
    /// Best-of-[`FOLD_REPS`] wall time of one full aggregation tick (ns).
    pub fold_ns: u64,
    /// `fold_ns / instances` — the marginal cost of one more vehicle.
    pub fold_per_instance_ns: u64,
}

/// Results of [`run_fleet_sweep`].
#[derive(Debug, Clone)]
pub struct FleetSweep {
    /// One point per requested fleet size, in order.
    pub points: Vec<FleetPoint>,
    /// Warm-hook p50 on a member of an idle [`WARM_PROBE_FLEET`]-instance
    /// fleet (nanoseconds).
    pub warm_base_p50_ns: u64,
    /// The same probe while the endpoint is scraped continuously (ns).
    pub warm_scraped_p50_ns: u64,
}

impl FleetSweep {
    /// Warm-hook p50 ratio, scraped over idle. The bench gate requires
    /// this ≤ `MAX_FLEET_WARM_IMPACT`: the pull-fold must never stall
    /// the per-instance hook path.
    pub fn warm_impact(&self) -> f64 {
        self.warm_scraped_p50_ns as f64 / (self.warm_base_p50_ns.max(1)) as f64
    }

    /// The measured fold latency at `instances`, if swept.
    pub fn fold_ns_at(&self, instances: usize) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.instances == instances)
            .map(|p| p.fold_ns)
    }
}

fn boot() -> (Arc<Kernel>, Arc<Sack>) {
    let sack = Sack::independent(FLEET_POLICY).expect("fleet policy must compile");
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).expect("attach");
    kernel.trace().set_enabled(true);
    (kernel, sack)
}

/// Dispatches `n` reads (or denied writes) through `kernel`'s LSM stack.
fn drive(kernel: &Kernel, n: usize, mask: AccessMask) -> usize {
    let ctx = HookCtx::new(Pid(4242), Credentials::user(1000, 1000), None);
    let path = KPath::new("/dev/car/door0").expect("probe path");
    let obj = ObjectRef::regular(&path);
    (0..n)
        .filter(|_| kernel.lsm().file_open(&ctx, &obj, mask).is_ok())
        .count()
}

/// One booted member: the kernel and its attached SACK instance.
type Instance = (Arc<Kernel>, Arc<Sack>);

/// Boots `n` instances spread round-robin over `cohorts`, registered and
/// warmed so every fold has real histograms to merge.
fn boot_fleet(n: usize, cohorts: &[&str]) -> (Arc<FleetAggregator>, Vec<Instance>) {
    let agg = FleetAggregator::new();
    let mut instances = Vec::with_capacity(n);
    for i in 0..n {
        let (kernel, sack) = boot();
        agg.register(&kernel, &sack, cohorts[i % cohorts.len()]);
        drive(&kernel, WARMUP_HOOKS, AccessMask::READ);
        instances.push((kernel, sack));
    }
    (agg, instances)
}

fn time_fold(agg: &FleetAggregator) -> u64 {
    (0..FOLD_REPS)
        .map(|_| {
            let start = Instant::now();
            let tick = agg.tick();
            let elapsed = start.elapsed().as_nanos() as u64;
            assert!(!tick.cohorts.is_empty(), "fold saw no cohorts");
            elapsed
        })
        .min()
        .unwrap_or(0)
}

/// Runs the aggregation-cost sweep over the given fleet sizes, then the
/// warm-hook scrape-overhead probe on a [`WARM_PROBE_FLEET`]-instance
/// fleet.
pub fn run_fleet_sweep(instance_counts: &[usize]) -> FleetSweep {
    let points = instance_counts
        .iter()
        .map(|&instances| {
            let (agg, members) = boot_fleet(instances, &["canary", "wave-1", "wave-2", "wave-3"]);
            let fold_ns = time_fold(&agg);
            drop(members);
            FleetPoint {
                instances,
                fold_ns,
                fold_per_instance_ns: fold_ns / instances.max(1) as u64,
            }
        })
        .collect();

    let (agg, members) = boot_fleet(WARM_PROBE_FLEET, &["canary", "wave-1", "wave-2", "wave-3"]);
    let probe = &members[0].0;
    let warm_base_p50_ns = warm_p50(probe);
    let stop = AtomicBool::new(false);
    let mut warm_scraped_p50_ns = 0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut scrapes = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let text = agg.render_prometheus();
                assert!(!text.is_empty());
                scrapes += 1;
            }
            assert!(scrapes > 0, "scraper never ran");
        });
        warm_scraped_p50_ns = warm_p50(probe);
        stop.store(true, Ordering::Relaxed);
    });
    FleetSweep {
        points,
        warm_base_p50_ns,
        warm_scraped_p50_ns,
    }
}

/// Warm-hook p50 over [`WARM_PROBE_ITERS`] dispatches on one member.
fn warm_p50(kernel: &Kernel) -> u64 {
    let ctx = HookCtx::new(Pid(4242), Credentials::user(1000, 1000), None);
    let path = KPath::new("/dev/car/door0").expect("probe path");
    let obj = ObjectRef::regular(&path);
    let hist = LatencyHistogram::new();
    kernel
        .lsm()
        .file_open(&ctx, &obj, AccessMask::READ)
        .expect("probe access must be granted");
    for _ in 0..WARM_PROBE_ITERS {
        let op = Instant::now();
        kernel
            .lsm()
            .file_open(&ctx, &obj, AccessMask::READ)
            .expect("probe access must be granted");
        hist.record(op.elapsed().as_nanos() as u64);
    }
    hist.snapshot().percentile(0.50)
}

/// The `check.sh` fleet smoke: 64 instances in 4 cohorts under mixed
/// traffic, a staged rollout whose canary takes a denial spike mid-soak.
/// Proves the rollback fires within one soak window, that every rollout
/// decision hit the fleet trace hub, and that the tree-folded fleet p99
/// equals a flat serial fold's p99.
///
/// # Errors
///
/// A message naming the first failed assertion.
pub fn run_fleet_smoke() -> Result<String, String> {
    const COHORTS: [&str; 4] = ["canary", "wave-1", "wave-2", "wave-3"];
    const INSTANCES: usize = 64;
    let (agg, members) = boot_fleet(INSTANCES, &COHORTS);

    // Mixed warm traffic everywhere: reads that hit, plus a sprinkle of
    // denied writes so the baseline denial rate is nonzero.
    for (kernel, _) in &members {
        drive(kernel, 64, AccessMask::READ);
        drive(kernel, 2, AccessMask::WRITE);
    }

    let mut driver = RolloutDriver::new(
        Arc::clone(&agg),
        COHORTS.iter().map(|c| c.to_string()).collect(),
        FLEET_POLICY,
        FLEET_POLICY,
        RolloutConfig {
            soak_ticks: 3,
            ..RolloutConfig::default()
        },
    );
    driver.step(); // prime + push to canary
    for (kernel, _) in &members {
        drive(kernel, 8, AccessMask::READ);
    }
    driver.step(); // clean soak tick 1 of 3

    // Denial spike in the canary cohort, mid-soak.
    for (kernel, _) in members.iter().take(INSTANCES / COHORTS.len()) {
        drive(kernel, 64, AccessMask::WRITE);
    }
    driver.step();
    let status = driver.status();
    let RolloutStatus::RolledBack { cohort, reason } = status else {
        return Err(format!(
            "fleet smoke: expected rollback within one soak window, got {status}"
        ));
    };
    if cohort != "canary" {
        return Err(format!(
            "fleet smoke: rollback blamed `{cohort}`, not the canary"
        ));
    }
    let hub = agg.hub();
    for (point, want) in [
        (Tracepoint::FleetRolloutBegin, 1),
        (Tracepoint::FleetRolloutPush, 1),
        (Tracepoint::FleetRolloutRollback, 1),
        (Tracepoint::FleetRolloutComplete, 1),
    ] {
        let got = hub.fired(point);
        if got != want {
            return Err(format!(
                "fleet smoke: {} fired {got} time(s), expected {want}",
                point.name()
            ));
        }
    }

    // Differential fold oracle: the aggregator's tree fold must agree
    // with a flat serial fold of fresh captures — same p99, same totals.
    let tick = agg.tick();
    let mut serial = TelemetrySnapshot::default();
    for (_, sack) in &members {
        let tracing = sack.tracing().ok_or("fleet smoke: tracing missing")?;
        serial.merge(&TelemetrySnapshot::capture(tracing));
    }
    let tree_p99 = tick.fleet.hook_latency().percentile(0.99);
    let serial_p99 = serial.hook_latency().percentile(0.99);
    if tree_p99 != serial_p99 {
        return Err(format!(
            "fleet smoke: tree-fold p99 {tree_p99}ns != serial-fold p99 {serial_p99}ns"
        ));
    }
    if tick.fleet.denials() != serial.denials() {
        return Err(format!(
            "fleet smoke: tree-fold denials {} != serial-fold denials {}",
            tick.fleet.denials(),
            serial.denials()
        ));
    }

    Ok(format!(
        "fleet smoke passed: {INSTANCES} instances in {} cohorts, canary spike \
         rolled back within one soak window ({reason}), aggregate p99 {tree_p99}ns \
         matches the serial fold\n",
        COHORTS.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_nonzero_points() {
        let sweep = run_fleet_sweep(&[4, 8]);
        assert_eq!(sweep.points.len(), 2);
        for point in &sweep.points {
            assert!(point.fold_ns > 0, "{point:?}");
        }
        assert!(sweep.warm_base_p50_ns > 0);
        assert!(sweep.warm_scraped_p50_ns > 0);
        assert!(sweep.warm_impact() > 0.0);
    }

    #[test]
    fn smoke_passes() {
        let report = run_fleet_smoke().expect("fleet smoke");
        assert!(report.contains("fleet smoke passed"), "{report}");
    }
}
