//! # sack-lmbench — LMBench-style microbenchmarks for the simulated kernel
//!
//! Reproduces the measurement methodology of the paper's evaluation
//! (Tables II and III, Fig. 3): the classic LMBench operation set —
//! process, file-access, local-communication-bandwidth and context-switch
//! micro-benchmarks — run against the simulated syscall layer under each
//! LSM configuration the paper compares.
//!
//! * [`testbed`] boots a kernel per configuration (no-LSM, AppArmor,
//!   SACK-enhanced AppArmor, independent SACK) with synthetic policy-load
//!   sweeps (rule count, situation-state count);
//! * [`suite`] implements the operations and the runner;
//! * [`report`] renders paper-style comparison tables with ↑/↓ deltas.
//!
//! ## Example
//!
//! ```
//! use sack_lmbench::testbed::{TestBed, TestBedOptions, LsmConfig};
//! use sack_lmbench::suite::{run_suite, Scale, Op};
//!
//! let bed = TestBed::boot(&TestBedOptions::new(LsmConfig::AppArmor));
//! let result = run_suite(&bed, Scale::quick());
//! assert!(result.get(Op::Syscall).unwrap() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fleet;
pub mod report;
pub mod sds;
pub mod suite;
pub mod testbed;
pub mod workload;

pub use fleet::{run_fleet_smoke, run_fleet_sweep, FleetPoint, FleetSweep};
pub use report::{
    render_comparison, render_contended_sweep, render_fleet_sweep, render_sds_sweep, render_sweep,
};
pub use sds::{run_sds_sweep, SdsPoint, SdsSweep};
pub use suite::{
    run_contended_sweep, run_suite, ContendedPoint, ContendedScenario, ContendedSweep,
    LmbenchResult, Op, OpGroup, Scale,
};
pub use testbed::{LsmConfig, TestBed, TestBedOptions};
