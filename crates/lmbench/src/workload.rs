//! Workload constants and synthetic policy generators for the sweeps.

/// Path of the benchmark executable inside the simulated system.
pub const BENCH_EXE: &str = "/usr/bin/lmbench";

/// Source file for the file-reread bandwidth benchmark.
pub const REREAD_FILE: &str = "/tmp/bench/reread.dat";

/// Size of the reread file (512 KiB — big enough to dominate dispatch
/// costs, small enough to keep the suite fast).
pub const REREAD_SIZE: usize = 512 * 1024;

/// AppArmor profile confining the benchmark process: broad enough that the
/// workload runs, narrow enough that matching is non-trivial.
pub const BENCH_PROFILE: &str = r#"
profile bench /usr/bin/lmbench {
    /usr/bin/** rxm,
    /usr/lib/** rm,
    /tmp/** rwm,
    /etc/* r,
    /dev/car/** r,
    network unix,
    network inet,
}
"#;

/// Generates an independent-SACK policy with `states` situation states and
/// at least `rules` MAC rules, protecting `/protected/**` paths (which the
/// LMBench workload never touches — matching the paper's "default
/// policies" methodology where the benchmark exercises the hook dispatch
/// and protected-set lookup, not a denial path).
pub fn synthetic_independent_policy(states: usize, rules: usize) -> String {
    let states = states.max(2);
    let mut out = String::new();
    out.push_str("states {\n");
    for i in 0..states {
        out.push_str(&format!("  s{i} = {i};\n"));
    }
    out.push_str("}\nevents {\n");
    for i in 0..states {
        out.push_str(&format!("  goto_s{i};\n"));
    }
    out.push_str("}\ntransitions {\n");
    // Fully connected ring plus direct jumps from s0.
    for i in 0..states {
        let next = (i + 1) % states;
        out.push_str(&format!("  s{i} -goto_s{next}-> s{next};\n"));
    }
    out.push_str("}\ninitial s0;\npermissions {\n");
    for i in 0..states {
        out.push_str(&format!("  P{i};\n"));
    }
    out.push_str("}\nstate_per {\n");
    for i in 0..states {
        out.push_str(&format!("  s{i}: P{i};\n"));
    }
    out.push_str("}\nper_rules {\n");
    // Distribute the requested rule count across the permissions.
    let per_perm = rules.div_ceil(states).max(1);
    for i in 0..states {
        out.push_str(&format!("  P{i}:\n"));
        for j in 0..per_perm {
            out.push_str(&format!(
                "    allow subject=* /protected/area{j}/s{i}/** rw;\n"
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Generates the equivalent enhanced-mode policy: same state machine, but
/// rules target the `bench` profile (which must be loaded).
pub fn synthetic_enhanced_policy(states: usize, rules: usize) -> String {
    synthetic_independent_policy(states, rules).replace("subject=*", "subject=profile:bench")
}

/// Path prefix granted in *every* state by [`synthetic_racing_policy`].
pub const RACING_SHARED_PREFIX: &str = "/shared";

/// Like [`synthetic_independent_policy`], but every state's permission
/// additionally grants `/shared/**` — a decision whose *verdict* is
/// identical in all states. The contended reload-racing sweep hammers a
/// `/shared` path while situation transitions churn the policy epoch: the
/// measured cost is pure invalidation + recompute + reinsert, never a
/// verdict flip into the (allocating) audit path.
pub fn synthetic_racing_policy(states: usize, rules: usize) -> String {
    let mut out = String::new();
    let mut inside_per_rules = false;
    for line in synthetic_independent_policy(states, rules).lines() {
        out.push_str(line);
        out.push('\n');
        if line.starts_with("per_rules {") {
            inside_per_rules = true;
        } else if inside_per_rules && line.trim_end().ends_with(':') {
            // Head of a permission's rule block: prepend the shared grant.
            out.push_str(&format!(
                "    allow subject=* {RACING_SHARED_PREFIX}/** rw;\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use sack_core::SackPolicy;

    #[test]
    fn independent_policy_scales() {
        for (states, rules) in [(2, 0), (5, 10), (10, 100), (3, 1000)] {
            let text = super::synthetic_independent_policy(states, rules);
            let compiled = SackPolicy::parse(&text)
                .unwrap_or_else(|e| panic!("{states}/{rules}: {e}"))
                .compile()
                .unwrap_or_else(|e| panic!("{states}/{rules}: {e:?}"));
            assert_eq!(compiled.space().state_count(), states.max(2));
            assert!(compiled.rule_count() >= rules);
            assert!(compiled.warnings().is_empty(), "{:?}", compiled.warnings());
        }
    }

    #[test]
    fn enhanced_policy_targets_bench_profile() {
        let text = super::synthetic_enhanced_policy(2, 4);
        assert!(text.contains("subject=profile:bench"));
        assert!(!text.contains("subject=*"));
        SackPolicy::parse(&text).unwrap().compile().unwrap();
    }

    #[test]
    fn racing_policy_grants_shared_in_every_state() {
        let text = super::synthetic_racing_policy(4, 8);
        let compiled = SackPolicy::parse(&text).unwrap().compile().unwrap();
        assert_eq!(compiled.space().state_count(), 4);
        // One shared grant per state on top of the requested rules.
        assert!(compiled.rule_count() >= 8 + 4);
        assert!(compiled.warnings().is_empty(), "{:?}", compiled.warnings());
    }

    #[test]
    fn bench_profile_parses() {
        let profiles = sack_apparmor::parse_profiles(super::BENCH_PROFILE).unwrap();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].name, "bench");
    }
}
