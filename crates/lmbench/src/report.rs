//! Paper-style table rendering: rows per operation, one column per LSM
//! configuration, each non-baseline cell annotated with the performance
//! delta (`↑` = faster/more bandwidth than baseline, `↓` = slower/less,
//! matching the arrows in the paper's Tables II and III).

use std::fmt::Write as _;

use crate::fleet::FleetSweep;
use crate::sds::SdsSweep;
use crate::suite::{ContendedScenario, ContendedSweep, LmbenchResult, Op, OpGroup};

/// Formats a value in its op's unit.
fn format_value(op: Op, value: f64) -> String {
    if op.smaller_is_better() {
        if value >= 1000.0 {
            format!("{value:.1}µs")
        } else {
            format!("{value:.3}µs")
        }
    } else if value >= 1024.0 {
        format!("{:.2}K MB/s", value / 1024.0)
    } else {
        format!("{value:.1} MB/s")
    }
}

/// Formats the delta annotation for a cell vs. the baseline.
fn format_delta(op: Op, baseline: f64, value: f64) -> String {
    if baseline == 0.0 {
        return String::new();
    }
    let better = if op.smaller_is_better() {
        value < baseline
    } else {
        value > baseline
    };
    let pct = ((value - baseline) / baseline * 100.0).abs();
    if pct < 0.005 {
        " (=)".to_string()
    } else if better {
        format!(" (↑{pct:.2}%)")
    } else {
        format!(" (↓{pct:.2}%)")
    }
}

fn group_heading(group: OpGroup) -> &'static str {
    match group {
        OpGroup::Processes => "Processes (times in µs - smaller is better)",
        OpGroup::FileAccess => "File Access (in µs - smaller is better)",
        OpGroup::Bandwidth => "Local Communication Bandwidths (in MB/s - bigger is better)",
        OpGroup::ContextSwitch => "Context Switching (in µs - smaller is better)",
    }
}

/// Renders a comparison table.
///
/// `baseline` is the first column; every other column shows its value plus
/// the delta against the baseline. Ops missing from all columns are
/// skipped, so the same renderer serves the full Table II and the reduced
/// Table III row set.
pub fn render_comparison(
    title: &str,
    baseline: (&str, &LmbenchResult),
    variants: &[(&str, &LmbenchResult)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");

    let mut labels = vec![baseline.0.to_string()];
    labels.extend(variants.iter().map(|(l, _)| l.to_string()));
    let name_width = Op::ALL
        .iter()
        .map(|op| op.name().len())
        .max()
        .unwrap_or(12)
        .max("Configuration".len());
    let col_width = 26usize;

    let _ = write!(out, "{:<name_width$}", "Configuration");
    for label in &labels {
        let _ = write!(out, " | {label:<col_width$}");
    }
    let _ = writeln!(out);

    let mut current_group: Option<OpGroup> = None;
    for op in Op::ALL {
        let base_value = baseline.1.get(op);
        let any_value = base_value.is_some() || variants.iter().any(|(_, r)| r.get(op).is_some());
        if !any_value {
            continue;
        }
        if current_group != Some(op.group()) {
            current_group = Some(op.group());
            let _ = writeln!(out, "--- {} ---", group_heading(op.group()));
        }
        let _ = write!(out, "{:<name_width$}", op.name());
        match base_value {
            Some(v) => {
                let _ = write!(out, " | {:<col_width$}", format_value(op, v));
            }
            None => {
                let _ = write!(out, " | {:<col_width$}", "-");
            }
        }
        for (_, result) in variants {
            let cell = match (result.get(op), base_value) {
                (Some(v), Some(b)) => format!("{}{}", format_value(op, v), format_delta(op, b, v)),
                (Some(v), None) => format_value(op, v),
                (None, _) => "-".to_string(),
            };
            let _ = write!(out, " | {cell:<col_width$}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a single-series sweep (Fig. 3a / Fig. 3b style): parameter value
/// vs. mean overhead percentage against a baseline.
pub fn render_sweep(title: &str, param_name: &str, points: &[(String, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {title} ===");
    let _ = writeln!(out, "{param_name:>16} | mean overhead vs baseline");
    for (param, overhead) in points {
        let pct = overhead * 100.0;
        let bar_len = (pct.abs().min(30.0) * 2.0) as usize;
        let bar: String = std::iter::repeat_n('#', bar_len).collect();
        let _ = writeln!(out, "{param:>16} | {pct:+6.2}% {bar}");
    }
    out
}

/// Renders the contended SMP sweep (DESIGN.md §9): one block per scenario,
/// one row per thread count, with p50/p90/p99 per-hook latency, aggregate
/// throughput, and scaling efficiency normalised to
/// `min(threads, available_parallelism)`.
pub fn render_contended_sweep(sweep: &ContendedSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Contended hook dispatch (available parallelism: {}, {} hooks/thread) ===",
        sweep.available_parallelism, sweep.iters_per_thread
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} | {:>9} {:>9} {:>9} | {:>12} {:>11}",
        "scenario", "threads", "p50", "p90", "p99", "hooks/sec", "efficiency"
    );
    for scenario in ContendedScenario::ALL {
        for point in sweep.points.iter().filter(|p| p.scenario == scenario) {
            let efficiency = sweep
                .efficiency(scenario, point.threads)
                .map(|e| format!("{e:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "{:<14} {:>8} | {:>7}ns {:>7}ns {:>7}ns | {:>12.0} {:>11}",
                scenario.name(),
                point.threads,
                point.p50_ns,
                point.p90_ns,
                point.p99_ns,
                point.ops_per_sec,
                efficiency
            );
        }
    }
    out
}

/// Renders the SDS event-plane sweep (DESIGN.md §11): one row per target
/// sensor rate comparing per-event sync ingestion against batched
/// coalesced ingestion, then the warm-hook impact pair the bench gate
/// checks.
pub fn render_sds_sweep(sweep: &SdsSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== SDS event-plane ingestion ({} events/point) ===",
        sweep.events_per_point
    );
    let _ = writeln!(
        out,
        "{:>10} {:>7} | {:>13} {:>13} | {:>8}",
        "rate", "batch", "sync ev/s", "batched ev/s", "speedup"
    );
    for point in &sweep.points {
        let _ = writeln!(
            out,
            "{:>10} {:>7} | {:>13.0} {:>13.0} | {:>7.2}x",
            point.rate, point.batch, point.sync_eps, point.batched_eps, point.speedup
        );
    }
    let _ = writeln!(
        out,
        "warm-hook p50: base {}ns, plane active {}ns ({:.3}x)",
        sweep.warm_base_p50_ns,
        sweep.warm_plane_p50_ns,
        sweep.warm_impact()
    );
    out
}

/// Renders the fleet aggregation-cost sweep (DESIGN.md §13) as a table:
/// fold latency per fleet size, then the warm-hook p50 scrape impact.
pub fn render_fleet_sweep(sweep: &FleetSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== fleet aggregation cost ===");
    let _ = writeln!(
        out,
        "{:>10} | {:>12} | {:>16}",
        "instances", "fold ns", "ns/instance"
    );
    for point in &sweep.points {
        let _ = writeln!(
            out,
            "{:>10} | {:>12} | {:>16}",
            point.instances, point.fold_ns, point.fold_per_instance_ns
        );
    }
    let _ = writeln!(
        out,
        "warm-hook p50: idle {}ns, scraped {}ns ({:.3}x)",
        sweep.warm_base_p50_ns,
        sweep.warm_scraped_p50_ns,
        sweep.warm_impact()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Scale;
    use crate::testbed::{LsmConfig, TestBed, TestBedOptions};

    #[test]
    fn renders_real_comparison() {
        let base_bed = TestBed::boot(&TestBedOptions::new(LsmConfig::NoLsm));
        let base = crate::suite::run_suite(&base_bed, Scale::quick());
        let aa_bed = TestBed::boot(&TestBedOptions::new(LsmConfig::AppArmor));
        let aa = crate::suite::run_suite(&aa_bed, Scale::quick());
        let table = render_comparison("Table II", ("no-lsm", &base), &[("apparmor", &aa)]);
        assert!(table.contains("syscall"));
        assert!(table.contains("2p/16K ctxsw"));
        assert!(table.contains("Processes"));
        assert!(table.contains("MB/s"));
    }

    #[test]
    fn delta_formatting_directions() {
        // Latency: higher value = worse = ↓.
        assert!(format_delta(Op::Stat, 10.0, 11.0).contains('↓'));
        assert!(format_delta(Op::Stat, 10.0, 9.0).contains('↑'));
        // Bandwidth: higher value = better = ↑.
        assert!(format_delta(Op::PipeBw, 100.0, 110.0).contains('↑'));
        assert!(format_delta(Op::PipeBw, 100.0, 90.0).contains('↓'));
        assert_eq!(format_delta(Op::Stat, 10.0, 10.0), " (=)");
    }

    #[test]
    fn value_formatting_units() {
        assert!(format_value(Op::Stat, 1.234).ends_with("µs"));
        assert!(format_value(Op::PipeBw, 2048.0).contains("K MB/s"));
        assert!(format_value(Op::PipeBw, 512.0).ends_with("MB/s"));
    }

    #[test]
    fn sds_sweep_rendering() {
        let sweep = SdsSweep {
            points: vec![crate::sds::SdsPoint {
                rate: 100_000,
                batch: 100,
                sync_eps: 50_000.0,
                batched_eps: 400_000.0,
                speedup: 8.0,
            }],
            events_per_point: 2_000,
            warm_base_p50_ns: 120,
            warm_plane_p50_ns: 126,
        };
        let text = render_sds_sweep(&sweep);
        assert!(text.contains("100000"));
        assert!(text.contains("8.00x"));
        assert!(text.contains("warm-hook p50"));
        assert!(text.contains("1.050x"));
    }

    #[test]
    fn sweep_rendering() {
        let points = vec![("1".to_string(), 0.001), ("100".to_string(), 0.018)];
        let text = render_sweep("Fig 3a", "states", &points);
        assert!(text.contains("states"));
        assert!(text.contains("+1.80%"));
    }
}
