//! The benchmark operations — one per row of the paper's Table II/III —
//! and the suite runner.

use std::collections::HashMap;
use std::fmt;
use std::sync::Barrier;
use std::thread;
use std::time::{Duration, Instant};

use sack_core::{HistogramSnapshot, LatencyHistogram, Sack};
use sack_kernel::cred::Credentials;
use sack_kernel::file::OpenFlags;
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule, SocketFamily};
use sack_kernel::path::KPath;
use sack_kernel::sched::CtxSwitchPair;
use sack_kernel::smp;
use sack_kernel::types::Pid;

use crate::testbed::TestBed;
use crate::workload::{
    synthetic_independent_policy, synthetic_racing_policy, BENCH_EXE, RACING_SHARED_PREFIX,
    REREAD_FILE, REREAD_SIZE,
};

/// The LMBench operations reproduced from the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Null syscall (`getpid`).
    Syscall,
    /// 1-byte read of an open file (Table III's "I/O" row).
    Io,
    /// `fork` + child exit.
    Fork,
    /// `stat(2)`.
    Stat,
    /// `open(2)` + `close(2)`.
    OpenClose,
    /// `exec(2)`.
    Exec,
    /// Create an empty file.
    FileCreate0k,
    /// Delete an empty file.
    FileDelete0k,
    /// Create a 10 KiB file.
    FileCreate10k,
    /// Delete a 10 KiB file.
    FileDelete10k,
    /// `mmap` + page-touch + unmap of the reread file.
    MmapLatency,
    /// Pipe bandwidth.
    PipeBw,
    /// AF_UNIX stream bandwidth.
    UnixBw,
    /// TCP-loopback bandwidth.
    TcpBw,
    /// File reread bandwidth.
    FileReread,
    /// Mmap reread bandwidth.
    MmapReread,
    /// Context switch, 2 processes / 0 KiB working set.
    Ctx0k,
    /// Context switch, 2 processes / 16 KiB working set.
    Ctx16k,
}

/// Row groups, matching the paper's table sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpGroup {
    /// "Processes (times in µs - smaller is better)"
    Processes,
    /// "File Access (in µs - smaller is better)"
    FileAccess,
    /// "Local Communication Bandwidths (in MB/s - bigger is better)"
    Bandwidth,
    /// "Context Switching (in µs - smaller is better)"
    ContextSwitch,
}

impl Op {
    /// Every operation, in table order.
    pub const ALL: [Op; 18] = [
        Op::Syscall,
        Op::Io,
        Op::Fork,
        Op::Stat,
        Op::OpenClose,
        Op::Exec,
        Op::FileCreate0k,
        Op::FileDelete0k,
        Op::FileCreate10k,
        Op::FileDelete10k,
        Op::MmapLatency,
        Op::PipeBw,
        Op::UnixBw,
        Op::TcpBw,
        Op::FileReread,
        Op::MmapReread,
        Op::Ctx0k,
        Op::Ctx16k,
    ];

    /// Row label, matching the paper's wording.
    pub fn name(self) -> &'static str {
        match self {
            Op::Syscall => "syscall",
            Op::Io => "I/O",
            Op::Fork => "fork",
            Op::Stat => "stat",
            Op::OpenClose => "open/close file",
            Op::Exec => "exec",
            Op::FileCreate0k => "file create (0K)",
            Op::FileDelete0k => "file delete (0K)",
            Op::FileCreate10k => "file create (10K)",
            Op::FileDelete10k => "file delete (10K)",
            Op::MmapLatency => "mmap latency",
            Op::PipeBw => "pipe",
            Op::UnixBw => "AF_UNIX",
            Op::TcpBw => "TCP",
            Op::FileReread => "File reread",
            Op::MmapReread => "Mmap reread",
            Op::Ctx0k => "2p/0K ctxsw",
            Op::Ctx16k => "2p/16K ctxsw",
        }
    }

    /// The table section this row belongs to.
    pub fn group(self) -> OpGroup {
        match self {
            Op::Syscall | Op::Io | Op::Fork | Op::Stat | Op::OpenClose | Op::Exec => {
                OpGroup::Processes
            }
            Op::FileCreate0k
            | Op::FileDelete0k
            | Op::FileCreate10k
            | Op::FileDelete10k
            | Op::MmapLatency => OpGroup::FileAccess,
            Op::PipeBw | Op::UnixBw | Op::TcpBw | Op::FileReread | Op::MmapReread => {
                OpGroup::Bandwidth
            }
            Op::Ctx0k | Op::Ctx16k => OpGroup::ContextSwitch,
        }
    }

    /// True for latency rows (lower is better); false for bandwidths.
    pub fn smaller_is_better(self) -> bool {
        self.group() != OpGroup::Bandwidth
    }

    /// Unit label: `µs` for latencies, `MB/s` for bandwidths.
    pub fn unit(self) -> &'static str {
        if self.smaller_is_better() {
            "µs"
        } else {
            "MB/s"
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Iteration scaling for the suite.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Iterations for latency operations.
    pub iters: usize,
    /// Iterations for heavyweight operations (fork/exec/create).
    pub heavy_iters: usize,
    /// Bytes transferred per bandwidth measurement.
    pub bw_bytes: usize,
    /// Round trips for context-switch measurements.
    pub ctx_round_trips: usize,
}

impl Scale {
    /// Fast settings for unit tests (< 1 s total).
    pub fn quick() -> Scale {
        Scale {
            iters: 300,
            heavy_iters: 60,
            bw_bytes: 1 << 20,
            ctx_round_trips: 100,
        }
    }

    /// Settings for the reported numbers (a few seconds per config).
    pub fn standard() -> Scale {
        Scale {
            iters: 20_000,
            heavy_iters: 2_000,
            bw_bytes: 64 << 20,
            ctx_round_trips: 5_000,
        }
    }
}

/// Results of one suite run: µs per op for latencies, MB/s for bandwidths.
#[derive(Debug, Clone, Default)]
pub struct LmbenchResult {
    values: HashMap<Op, f64>,
}

impl LmbenchResult {
    /// The measured value for an op, if it was run.
    pub fn get(&self, op: Op) -> Option<f64> {
        self.values.get(&op).copied()
    }

    fn set(&mut self, op: Op, value: f64) {
        self.values.insert(op, value);
    }

    /// Relative overhead of `self` against `baseline` for one op, as a
    /// signed fraction: positive = worse than baseline (slower or less
    /// bandwidth), negative = better.
    pub fn overhead_vs(&self, baseline: &LmbenchResult, op: Op) -> Option<f64> {
        let mine = self.get(op)?;
        let base = baseline.get(op)?;
        if base == 0.0 {
            return None;
        }
        Some(if op.smaller_is_better() {
            (mine - base) / base
        } else {
            (base - mine) / base
        })
    }

    /// Merges another run of the same suite, keeping the best value per op
    /// (min for latencies, max for bandwidths). Running several interleaved
    /// rounds and merging suppresses drift between configurations — the
    /// paper attributes its own Table III wobbles to "errors and jitter",
    /// and min-combining is the standard LMBench defence.
    pub fn merge_best(&mut self, other: &LmbenchResult) {
        for op in Op::ALL {
            if let Some(theirs) = other.get(op) {
                let entry = self.values.entry(op).or_insert(theirs);
                if op.smaller_is_better() {
                    *entry = entry.min(theirs);
                } else {
                    *entry = entry.max(theirs);
                }
            }
        }
    }

    /// Mean relative overhead across all common ops (the paper's "average
    /// below 3%" headline number).
    pub fn mean_overhead_vs(&self, baseline: &LmbenchResult) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for op in Op::ALL {
            if let Some(o) = self.overhead_vs(baseline, op) {
                sum += o;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

fn time_per_iter<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    elapsed.as_secs_f64() * 1e6 / iters as f64
}

fn bandwidth_mbps(bytes: usize, elapsed: Duration) -> f64 {
    (bytes as f64 / (1024.0 * 1024.0)) / elapsed.as_secs_f64()
}

/// Runs the full suite on a testbed. Panics only on harness bugs (the
/// workload is constructed to be permitted in every configuration).
pub fn run_suite(bed: &TestBed, scale: Scale) -> LmbenchResult {
    let mut result = LmbenchResult::default();
    let proc = bed.proc();

    // --- Processes -------------------------------------------------------
    result.set(
        Op::Syscall,
        time_per_iter(scale.iters * 4, || {
            std::hint::black_box(proc.null_syscall());
        }),
    );

    proc.write_file("/tmp/bench/io.dat", b"x").expect("io file");
    let io_fd = proc
        .open("/tmp/bench/io.dat", OpenFlags::read_only())
        .expect("io open");
    let mut one = [0u8; 1];
    result.set(
        Op::Io,
        time_per_iter(scale.iters, || {
            proc.seek(io_fd, 0).expect("seek");
            proc.read(io_fd, &mut one).expect("io read");
        }),
    );
    proc.close(io_fd).expect("io close");

    result.set(
        Op::Fork,
        time_per_iter(scale.heavy_iters, || {
            let child = proc.fork().expect("fork");
            child.exit();
        }),
    );

    result.set(
        Op::Stat,
        time_per_iter(scale.iters, || {
            proc.stat("/usr/bin/true").expect("stat");
        }),
    );

    result.set(
        Op::OpenClose,
        time_per_iter(scale.iters, || {
            let fd = proc
                .open(REREAD_FILE, OpenFlags::read_only())
                .expect("open");
            proc.close(fd).expect("close");
        }),
    );

    let execer = proc.fork().expect("fork exec child");
    result.set(
        Op::Exec,
        time_per_iter(scale.heavy_iters, || {
            execer.exec("/usr/bin/true").expect("exec");
        }),
    );
    execer.exit();

    // --- File access ------------------------------------------------------
    let payload_10k = vec![0x5Au8; 10 * 1024];
    for (create_op, delete_op, payload) in [
        (Op::FileCreate0k, Op::FileDelete0k, &[][..]),
        (Op::FileCreate10k, Op::FileDelete10k, &payload_10k[..]),
    ] {
        let mut i = 0usize;
        let create = time_per_iter(scale.heavy_iters, || {
            let path = format!("/tmp/bench/f{i}");
            i += 1;
            let fd = proc.open(&path, OpenFlags::create_new()).expect("create");
            if !payload.is_empty() {
                proc.write(fd, payload).expect("fill");
            }
            proc.close(fd).expect("close");
        });
        // Deletion timed over the files just created (including warmup's).
        let total = i;
        let mut j = 0usize;
        let start = Instant::now();
        while j < total {
            proc.unlink(&format!("/tmp/bench/f{j}")).expect("unlink");
            j += 1;
        }
        let delete = start.elapsed().as_secs_f64() * 1e6 / total as f64;
        result.set(create_op, create);
        result.set(delete_op, delete);
    }

    let map_fd = proc
        .open(REREAD_FILE, OpenFlags::read_only())
        .expect("map open");
    result.set(
        Op::MmapLatency,
        time_per_iter(scale.heavy_iters, || {
            let map = proc.mmap(map_fd, 0, REREAD_SIZE).expect("mmap");
            std::hint::black_box(map.touch_pages(4096));
        }),
    );

    // --- Bandwidths --------------------------------------------------------
    const CHUNK: usize = 64 * 1024;
    let chunk = vec![0xC3u8; CHUNK];

    // Pipe.
    {
        let (r, w) = proc.pipe().expect("pipe");
        let sender = proc.fork().expect("fork sender");
        let total = scale.bw_bytes;
        let start = Instant::now();
        let elapsed = thread::scope(|scope| {
            let chunk = &chunk;
            scope.spawn(move || {
                let mut sent = 0;
                while sent < total {
                    sender.write(w, chunk).expect("pipe write");
                    sent += CHUNK;
                }
                sender.exit();
            });
            let mut buf = vec![0u8; CHUNK];
            let mut received = 0;
            while received < total {
                received += proc.read(r, &mut buf).expect("pipe read");
            }
            start.elapsed()
        });
        proc.close(r).expect("close r");
        proc.close(w).expect("close w");
        result.set(Op::PipeBw, bandwidth_mbps(total, elapsed));
    }

    // AF_UNIX and TCP.
    for (op, family, addr) in [
        (Op::UnixBw, SocketFamily::Unix, "/tmp/bench/bw.sock"),
        (Op::TcpBw, SocketFamily::Inet, "tcp:31337"),
    ] {
        let listener = proc.listen(family, addr).expect("listen");
        let sender = proc.fork().expect("fork sender");
        let total = scale.bw_bytes;
        let elapsed = thread::scope(|scope| {
            let chunk = &chunk;
            let listener = &listener;
            scope.spawn(move || {
                let fd = sender.connect(family, addr).expect("connect");
                let mut sent = 0;
                while sent < total {
                    sender.write(fd, chunk).expect("send");
                    sent += CHUNK;
                }
                sender.exit();
            });
            let server_fd = proc.accept(listener).expect("accept");
            let mut buf = vec![0u8; CHUNK];
            let mut received = 0;
            let start = Instant::now();
            while received < total {
                received += proc.read(server_fd, &mut buf).expect("recv");
            }
            let elapsed = start.elapsed();
            proc.close(server_fd).expect("close server fd");
            elapsed
        });
        bed.kernel().listeners().unbind(addr);
        result.set(op, bandwidth_mbps(total, elapsed));
    }

    // File reread.
    {
        let fd = proc
            .open(REREAD_FILE, OpenFlags::read_only())
            .expect("open");
        let passes = (scale.bw_bytes / REREAD_SIZE).max(1);
        let mut buf = vec![0u8; CHUNK];
        let start = Instant::now();
        for _ in 0..passes {
            proc.seek(fd, 0).expect("seek");
            let mut total = 0;
            while total < REREAD_SIZE {
                let n = proc.read(fd, &mut buf).expect("read");
                if n == 0 {
                    break;
                }
                total += n;
            }
        }
        let elapsed = start.elapsed();
        proc.close(fd).expect("close");
        result.set(
            Op::FileReread,
            bandwidth_mbps(passes * REREAD_SIZE, elapsed),
        );
    }

    // Mmap reread.
    {
        let map = proc.mmap(map_fd, 0, REREAD_SIZE).expect("mmap");
        let passes = (scale.bw_bytes / REREAD_SIZE).max(1);
        let mut buf = vec![0u8; CHUNK];
        let start = Instant::now();
        for _ in 0..passes {
            let mut off = 0;
            while off < REREAD_SIZE {
                off += map.read(off, &mut buf);
            }
        }
        let elapsed = start.elapsed();
        result.set(
            Op::MmapReread,
            bandwidth_mbps(passes * REREAD_SIZE, elapsed),
        );
    }
    proc.close(map_fd).expect("close map fd");

    // --- Context switching ---------------------------------------------------
    for (op, working_set) in [(Op::Ctx0k, 0usize), (Op::Ctx16k, 16 * 1024)] {
        let pair =
            CtxSwitchPair::new(bed.kernel(), Credentials::user(1000, 1000)).expect("ctx pair");
        let report = pair.run(scale.ctx_round_trips, working_set);
        pair.shutdown();
        result.set(op, report.per_switch().as_secs_f64() * 1e6);
    }

    result
}

// ---------------------------------------------------------------------------
// Contended SMP sweep (DESIGN.md §9): p50/p90/p99 hook latency and aggregate
// throughput per thread count, for three contention regimes.

/// Situation-state count for the contended sweep's synthetic policies.
const SWEEP_STATES: usize = 4;
/// Rule count for the contended sweep's synthetic policies.
const SWEEP_RULES: usize = 100;
/// The shared task id all sweep workers run as: one task, one per-CPU
/// decision-cache array, each worker thread on its own instance.
const SWEEP_PID: u32 = 4242;

/// A contention regime of the SMP sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContendedScenario {
    /// Decision cache on, every hook a per-CPU cache hit.
    WarmCache,
    /// Decision cache off: every hook walks the per-state DFA under
    /// concurrent RCU reads and sharded-counter traffic.
    DfaCold,
    /// Decision cache on while a control thread churns the policy epoch
    /// (SSM transitions plus periodic full policy reloads), so hooks keep
    /// re-missing, re-evaluating and re-inserting.
    ReloadRacing,
}

impl ContendedScenario {
    /// All scenarios, in report order.
    pub const ALL: [ContendedScenario; 3] = [
        ContendedScenario::WarmCache,
        ContendedScenario::DfaCold,
        ContendedScenario::ReloadRacing,
    ];

    /// Human/machine-readable scenario name (used in report lines).
    pub fn name(self) -> &'static str {
        match self {
            ContendedScenario::WarmCache => "warm-cache",
            ContendedScenario::DfaCold => "dfa-cold",
            ContendedScenario::ReloadRacing => "reload-racing",
        }
    }

    /// Key used in the `smp` block of `BENCH_hook_latency.json`.
    pub fn json_key(self) -> &'static str {
        match self {
            ContendedScenario::WarmCache => "warm_cache",
            ContendedScenario::DfaCold => "dfa_cold",
            ContendedScenario::ReloadRacing => "reload_racing",
        }
    }
}

/// One measured point of the contended sweep: a scenario at a thread count.
#[derive(Debug, Clone)]
pub struct ContendedPoint {
    /// The contention regime measured.
    pub scenario: ContendedScenario,
    /// Number of concurrent worker threads.
    pub threads: usize,
    /// Median per-hook latency in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile per-hook latency in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile per-hook latency in nanoseconds.
    pub p99_ns: u64,
    /// Aggregate throughput across all workers (hooks per second).
    pub ops_per_sec: f64,
    /// Total hooks dispatched by the workers at this point.
    pub total_ops: u64,
}

/// Results of [`run_contended_sweep`].
#[derive(Debug, Clone)]
pub struct ContendedSweep {
    /// One point per (scenario, thread count), scenario-major.
    pub points: Vec<ContendedPoint>,
    /// `std::thread::available_parallelism()` on the measuring host. The
    /// scaling gate normalises to `min(threads, available_parallelism)`:
    /// on a 1-core box the ideal speedup at 8 threads is 1×, on an 8-core
    /// box it is the literal 8× linear target.
    pub available_parallelism: usize,
    /// Hook dispatches measured per worker thread.
    pub iters_per_thread: usize,
}

impl ContendedSweep {
    /// The measured point for `scenario` at `threads`, if it was run.
    pub fn point(&self, scenario: ContendedScenario, threads: usize) -> Option<&ContendedPoint> {
        self.points
            .iter()
            .find(|p| p.scenario == scenario && p.threads == threads)
    }

    /// Scaling efficiency of `scenario` at `threads`: the measured
    /// speedup over the single-thread point, divided by the ideal speedup
    /// `min(threads, available_parallelism)`. 1.0 is perfectly linear
    /// scaling up to the core count; the bench gate requires ≥ 0.7 for
    /// warm-cache hooks at 8 threads.
    pub fn efficiency(&self, scenario: ContendedScenario, threads: usize) -> Option<f64> {
        let base = self.point(scenario, 1)?;
        let point = self.point(scenario, threads)?;
        let ideal = threads.min(self.available_parallelism) as f64;
        Some(point.ops_per_sec / base.ops_per_sec / ideal)
    }
}

/// Runs the contended sweep: for each scenario and each entry of
/// `thread_counts`, storms one task's hooks from that many worker threads
/// (through [`smp::run_workers`] / [`smp::run_with_control`]) and records
/// per-hook latency percentiles plus aggregate throughput.
pub fn run_contended_sweep(thread_counts: &[usize], iters_per_thread: usize) -> ContendedSweep {
    let mut points = Vec::new();
    for scenario in ContendedScenario::ALL {
        for &threads in thread_counts {
            points.push(run_contended_point(scenario, threads, iters_per_thread));
        }
    }
    ContendedSweep {
        points,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        iters_per_thread,
    }
}

fn run_contended_point(
    scenario: ContendedScenario,
    threads: usize,
    iters: usize,
) -> ContendedPoint {
    let policy = match scenario {
        ContendedScenario::ReloadRacing => synthetic_racing_policy(SWEEP_STATES, SWEEP_RULES),
        _ => synthetic_independent_policy(SWEEP_STATES, SWEEP_RULES),
    };
    let sack = Sack::independent(&policy).expect("sweep policy must compile");
    if scenario == ContendedScenario::DfaCold {
        sack.set_decision_cache_enabled(false);
    }

    // Workers warm their own per-CPU instance, align on a barrier so the
    // measured sections fully overlap, then time every hook dispatch.
    let ready = Barrier::new(threads);
    let worker = |w: usize| {
        let ctx = HookCtx::new(
            Pid(SWEEP_PID),
            Credentials::user(1000, 1000),
            Some(KPath::new(BENCH_EXE).expect("bench exe path")),
        );
        // Per-worker object so DFA-cold walks differ by path tail; the
        // racing scenario uses the all-states grant under /shared.
        let path_str = match scenario {
            ContendedScenario::ReloadRacing => format!("{RACING_SHARED_PREFIX}/dev{w}"),
            _ => format!("/protected/area0/s0/devices/dev{w}"),
        };
        let path = KPath::new(&path_str).expect("sweep path");
        let obj = ObjectRef::regular(&path);
        let hist = LatencyHistogram::new();
        sack.file_open(&ctx, &obj, AccessMask::READ)
            .expect("sweep access must be granted");
        ready.wait();
        let start = Instant::now();
        for _ in 0..iters {
            let op = Instant::now();
            sack.file_open(&ctx, &obj, AccessMask::READ)
                .expect("sweep access must be granted");
            hist.record(op.elapsed().as_nanos() as u64);
        }
        (hist.snapshot(), start.elapsed())
    };

    let results: Vec<(HistogramSnapshot, Duration)> = match scenario {
        ContendedScenario::ReloadRacing => {
            smp::run_with_control(threads, worker, |round| {
                // Churn the policy epoch under the workers: mostly SSM
                // transitions around the state ring, with a full policy
                // reload every 64th round.
                if round % 64 == 63 {
                    let _ = sack.reload_policy(&policy);
                } else if let Some(state) = sack
                    .current_state_name()
                    .strip_prefix('s')
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    let next = (state + 1) % SWEEP_STATES;
                    let _ = sack.deliver_event(&format!("goto_s{next}"), Duration::ZERO);
                }
            })
            .results
        }
        _ => smp::run_workers(threads, worker),
    };

    let mut merged = HistogramSnapshot::default();
    let mut wall = Duration::ZERO;
    for (snapshot, elapsed) in &results {
        merged.merge(snapshot);
        wall = wall.max(*elapsed);
    }
    let total_ops = (threads * iters) as u64;
    ContendedPoint {
        scenario,
        threads,
        p50_ns: merged.percentile(0.50),
        p90_ns: merged.percentile(0.90),
        p99_ns: merged.percentile(0.99),
        ops_per_sec: total_ops as f64 / wall.as_secs_f64().max(f64::EPSILON),
        total_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{LsmConfig, TestBedOptions};

    #[test]
    fn quick_suite_produces_all_rows() {
        let bed = TestBed::boot(&TestBedOptions::new(LsmConfig::NoLsm));
        let result = run_suite(&bed, Scale::quick());
        for op in Op::ALL {
            let v = result.get(op).unwrap_or_else(|| panic!("{op} missing"));
            assert!(v > 0.0, "{op} = {v}");
        }
    }

    #[test]
    fn quick_suite_runs_under_every_lsm_config() {
        for config in [
            LsmConfig::AppArmor,
            LsmConfig::SackEnhancedAppArmor,
            LsmConfig::IndependentSack,
        ] {
            let bed = TestBed::boot(&TestBedOptions::new(config));
            let result = run_suite(&bed, Scale::quick());
            assert!(result.get(Op::Syscall).is_some(), "{config}");
        }
    }

    #[test]
    fn merge_best_picks_min_latency_max_bandwidth() {
        let mut a = LmbenchResult::default();
        let mut b = LmbenchResult::default();
        a.set(Op::Stat, 10.0);
        b.set(Op::Stat, 8.0);
        a.set(Op::PipeBw, 100.0);
        b.set(Op::PipeBw, 120.0);
        b.set(Op::Fork, 5.0); // only in b
        a.merge_best(&b);
        assert_eq!(a.get(Op::Stat), Some(8.0));
        assert_eq!(a.get(Op::PipeBw), Some(120.0));
        assert_eq!(a.get(Op::Fork), Some(5.0));
    }

    #[test]
    fn overhead_math() {
        let mut base = LmbenchResult::default();
        let mut other = LmbenchResult::default();
        base.set(Op::Stat, 10.0);
        other.set(Op::Stat, 11.0);
        base.set(Op::PipeBw, 100.0);
        other.set(Op::PipeBw, 90.0);
        // 10% slower stat, 10% less pipe bandwidth: both positive overhead.
        assert!((other.overhead_vs(&base, Op::Stat).unwrap() - 0.1).abs() < 1e-9);
        assert!((other.overhead_vs(&base, Op::PipeBw).unwrap() - 0.1).abs() < 1e-9);
        assert!(other.overhead_vs(&base, Op::Exec).is_none());
        assert!((other.mean_overhead_vs(&base) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn op_metadata_consistency() {
        assert_eq!(Op::ALL.len(), 18);
        for op in Op::ALL {
            assert!(!op.name().is_empty());
            let unit = op.unit();
            if op.smaller_is_better() {
                assert_eq!(unit, "µs");
            } else {
                assert_eq!(unit, "MB/s");
            }
        }
    }

    #[test]
    fn contended_sweep_covers_every_scenario_and_thread_count() {
        let sweep = run_contended_sweep(&[1, 2], 200);
        assert!(sweep.available_parallelism >= 1);
        assert_eq!(sweep.iters_per_thread, 200);
        assert_eq!(sweep.points.len(), ContendedScenario::ALL.len() * 2);
        for scenario in ContendedScenario::ALL {
            for threads in [1usize, 2] {
                let point = sweep
                    .point(scenario, threads)
                    .unwrap_or_else(|| panic!("missing {}/{threads}", scenario.name()));
                assert_eq!(point.total_ops, 200 * threads as u64);
                assert!(point.p50_ns > 0, "{} p50", scenario.name());
                assert!(point.p50_ns <= point.p90_ns, "{} p50<=p90", scenario.name());
                assert!(point.p90_ns <= point.p99_ns, "{} p90<=p99", scenario.name());
                assert!(point.ops_per_sec.is_finite() && point.ops_per_sec > 0.0);
            }
            // Efficiency is defined relative to the single-thread point and
            // must be finite and positive at every measured count.
            let e = sweep.efficiency(scenario, 2).expect("efficiency at 2");
            assert!(
                e.is_finite() && e > 0.0,
                "{} efficiency {e}",
                scenario.name()
            );
            assert!(sweep.efficiency(scenario, 1).unwrap() > 0.99);
        }
        // Unknown thread counts yield no point and no efficiency.
        assert!(sweep.point(ContendedScenario::WarmCache, 7).is_none());
        assert!(sweep.efficiency(ContendedScenario::WarmCache, 7).is_none());

        let table = crate::report::render_contended_sweep(&sweep);
        assert!(table.contains("warm-cache"));
        assert!(table.contains("dfa-cold"));
        assert!(table.contains("reload-racing"));
        assert!(table.contains("hooks/sec"));
    }
}
