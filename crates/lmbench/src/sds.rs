//! SDS event-plane latency-vs-throughput sweep (DESIGN.md §11).
//!
//! Compares the two sensor-ingestion paths end to end, through securityfs:
//!
//! * **sync** — one `write(2)` to `SACK/events` per sensor frame: every
//!   frame pays an SSM evaluation, and every matching frame pays a
//!   transition publish, an epoch bump, and a cache invalidation;
//! * **batched** — frames grouped into one `write(2)` to `SACK/sds/ring`
//!   per drain tick: the whole batch coalesces into at most one publish.
//!
//! The sweep parameter is the *target sensor rate*: at `rate` events/sec a
//! 1 ms drain tick accumulates `rate / 1000` frames, so the batch size —
//! and with it the coalescing win — scales with the rate. Both paths push
//! the same alternating crash/rescue frame stream (the coalescing
//! worst-best case: every frame matches a transition rule).
//!
//! A separate probe measures warm-hook p50 with and without the plane
//! draining non-matching "heartbeat" batches in the foreground, feeding
//! the bench gate's no-regression check: coalesced drains that publish
//! nothing must not invalidate the decision cache.

use std::sync::Arc;
use std::time::Instant;

use sack_core::{BackpressurePolicy, EventPlane, LatencyHistogram, Sack};
use sack_kernel::cred::{Capability, Credentials};
use sack_kernel::file::OpenFlags;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
use sack_kernel::path::KPath;
use sack_kernel::types::Pid;
use sack_kernel::uctx::UserContext;

/// The sweep's situation policy: a crash/rescue flip-flop where every
/// alternating frame matches a rule, plus a read grant used by the
/// warm-hook probe. Delivering `rescue_done` while already in `normal`
/// matches nothing — that is the probe's heartbeat frame.
const SWEEP_POLICY: &str = r#"
    states { normal = 0; emergency = 1; }
    events { crash; rescue_done; }
    transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
    initial normal;
    permissions { CAR; }
    state_per { normal: CAR; emergency: CAR; }
    per_rules { CAR: allow subject=* /dev/car/** r; }
"#;

/// Hook dispatches per warm-probe measurement.
const WARM_PROBE_ITERS: usize = 20_000;
/// Heartbeat frames per coalesced drain in the plane-active probe.
const WARM_PROBE_BATCH: usize = 64;

/// One measured rate point: sync vs batched ingestion throughput.
#[derive(Debug, Clone)]
pub struct SdsPoint {
    /// Target sensor rate (events/sec) — sets the batch size.
    pub rate: u64,
    /// Frames per ring `write(2)` at this rate (`max(1, rate / 1000)`).
    pub batch: usize,
    /// Events/sec sustained by the per-event `SACK/events` path.
    pub sync_eps: f64,
    /// Events/sec sustained by the batched `SACK/sds/ring` path.
    pub batched_eps: f64,
    /// `batched_eps / sync_eps`.
    pub speedup: f64,
}

/// Results of [`run_sds_sweep`].
#[derive(Debug, Clone)]
pub struct SdsSweep {
    /// One point per entry of the `rates` argument, in order.
    pub points: Vec<SdsPoint>,
    /// Frames pushed through each path at each point.
    pub events_per_point: usize,
    /// Warm-hook p50 with no event plane installed (nanoseconds).
    pub warm_base_p50_ns: u64,
    /// Warm-hook p50 while the plane drains heartbeat batches (ns).
    pub warm_plane_p50_ns: u64,
}

impl SdsSweep {
    /// The measured batched-over-sync speedup at `rate`, if swept.
    pub fn speedup_at(&self, rate: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.rate == rate)
            .map(|p| p.speedup)
    }

    /// Warm-hook p50 ratio, plane-active over base. The bench gate
    /// requires this ≤ `MAX_SDS_WARM_IMPACT`: coalesced drains of
    /// non-matching batches must leave the decision cache warm.
    pub fn warm_impact(&self) -> f64 {
        self.warm_plane_p50_ns as f64 / (self.warm_base_p50_ns.max(1)) as f64
    }
}

/// Boots a fresh attached SACK kernel and a `CAP_MAC_ADMIN` process able
/// to write the `SACK/events` and `SACK/sds/ring` nodes.
fn boot() -> (Arc<Kernel>, Arc<Sack>, UserContext) {
    let sack = Sack::independent(SWEEP_POLICY).expect("sweep policy must compile");
    let kernel = KernelBuilder::new()
        .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
        .boot();
    sack.attach(&kernel).expect("attach");
    let proc = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
    (kernel, sack, proc)
}

/// Measures one path: `events` frames of alternating crash/rescue through
/// `node`, `per_write` frames per `write(2)`. Returns events/sec.
fn ingest_eps(proc: &UserContext, node: &str, events: usize, per_write: usize) -> f64 {
    let fd = proc
        .open(node, OpenFlags::write_only())
        .expect("open ingestion node");
    let mut buf = String::new();
    let mut sent = 0usize;
    let start = Instant::now();
    while sent < events {
        buf.clear();
        let batch = per_write.min(events - sent);
        for i in 0..batch {
            buf.push_str(if (sent + i).is_multiple_of(2) {
                "crash\n"
            } else {
                "rescue_done\n"
            });
        }
        proc.write(fd, buf.as_bytes()).expect("ingest write");
        sent += batch;
    }
    let elapsed = start.elapsed();
    proc.close(fd).expect("close ingestion node");
    events as f64 / elapsed.as_secs_f64().max(f64::EPSILON)
}

/// Repetitions per (point, path). Preemption on a shared host only ever
/// slows a throughput measurement down, so the max over a few runs is the
/// least-noisy estimator of the uncontended rate — and, crucially, noise
/// hits both paths the same way, keeping the gated *ratio* stable.
const POINT_REPS: usize = 3;

/// Best-of-[`POINT_REPS`] events/sec through `node`, a fresh kernel per
/// repetition so no run inherits another's transition history or caches.
fn best_eps(node: &str, events: usize, per_write: usize) -> f64 {
    (0..POINT_REPS)
        .map(|_| {
            let (_kernel, _sack, proc) = boot();
            ingest_eps(&proc, node, events, per_write)
        })
        .fold(0.0, f64::max)
}

fn run_sds_point(rate: u64, events: usize) -> SdsPoint {
    let batch = ((rate / 1000) as usize).max(1);
    let sync_eps = best_eps("/sys/kernel/security/SACK/events", events, 1);
    let batched_eps = best_eps("/sys/kernel/security/SACK/sds/ring", events, batch);
    SdsPoint {
        rate,
        batch,
        sync_eps,
        batched_eps,
        speedup: batched_eps / sync_eps.max(f64::EPSILON),
    }
}

/// Warm-hook p50 over [`WARM_PROBE_ITERS`] dispatches. With
/// `plane_active`, every hook is preceded by a heartbeat submission and
/// every [`WARM_PROBE_BATCH`]th by a coalesced drain — all non-matching,
/// so a correct plane never bumps the epoch and the cache stays warm.
fn warm_p50(plane_active: bool) -> u64 {
    let sack = Sack::independent(SWEEP_POLICY).expect("sweep policy must compile");
    let plane = plane_active.then(|| {
        sack.install_event_plane(EventPlane::DEFAULT_CAPACITY, BackpressurePolicy::DropOldest)
    });
    let ctx = HookCtx::new(Pid(4243), Credentials::user(1000, 1000), None);
    let path = KPath::new("/dev/car/door0").expect("probe path");
    let obj = ObjectRef::regular(&path);
    let hist = LatencyHistogram::new();
    sack.file_open(&ctx, &obj, AccessMask::READ)
        .expect("probe access must be granted");
    for i in 0..WARM_PROBE_ITERS {
        if let Some(plane) = &plane {
            // In `normal`, rescue_done matches nothing: a heartbeat.
            plane
                .submit_name("rescue_done", 0, i as u64)
                .expect("heartbeat");
            if i % WARM_PROBE_BATCH == WARM_PROBE_BATCH - 1 {
                plane.drain_all().expect("heartbeat drain");
            }
        }
        let op = Instant::now();
        sack.file_open(&ctx, &obj, AccessMask::READ)
            .expect("probe access must be granted");
        hist.record(op.elapsed().as_nanos() as u64);
    }
    hist.snapshot().percentile(0.50)
}

/// Runs the sweep: for each target rate, pushes `events_per_point` frames
/// through the sync path and the batched path and records throughput,
/// then measures the warm-hook p50 base/plane pair once.
pub fn run_sds_sweep(rates: &[u64], events_per_point: usize) -> SdsSweep {
    let points = rates
        .iter()
        .map(|&rate| run_sds_point(rate, events_per_point))
        .collect();
    SdsSweep {
        points,
        events_per_point,
        warm_base_p50_ns: warm_p50(false),
        warm_plane_p50_ns: warm_p50(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_measures_both_paths_and_the_warm_probe() {
        let sweep = run_sds_sweep(&[10_000, 100_000], 400);
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.events_per_point, 400);
        for point in &sweep.points {
            assert_eq!(point.batch, (point.rate / 1000).max(1) as usize);
            assert!(point.sync_eps > 0.0 && point.sync_eps.is_finite());
            assert!(point.batched_eps > 0.0 && point.batched_eps.is_finite());
            assert!(point.speedup > 0.0 && point.speedup.is_finite());
        }
        assert!(sweep.speedup_at(100_000).is_some());
        assert!(sweep.speedup_at(7).is_none());
        assert!(sweep.warm_base_p50_ns > 0);
        assert!(sweep.warm_plane_p50_ns > 0);
        assert!(sweep.warm_impact() > 0.0 && sweep.warm_impact().is_finite());
    }

    #[test]
    fn batched_ingestion_outruns_sync_at_high_rates() {
        // At 100k events/sec the batch is 100 frames per write; the
        // coalesced path must clearly beat one-write-one-publish. The CI
        // gate enforces ≥5x; this smoke keeps a conservative margin so it
        // stays green on loaded machines.
        let point = run_sds_point(100_000, 2_000);
        assert!(
            point.speedup > 1.5,
            "batched {}ev/s vs sync {}ev/s (speedup {:.2})",
            point.batched_eps,
            point.sync_eps,
            point.speedup
        );
    }
}
