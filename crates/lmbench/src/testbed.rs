//! Benchmark testbeds: a booted kernel in one of the paper's four LSM
//! configurations, with the benchmark process and workload files prepared.

use std::fmt;
use std::sync::Arc;

use sack_apparmor::{AppArmor, PolicyDb};
use sack_core::Sack;
use sack_kernel::cred::Credentials;
use sack_kernel::error::KernelResult;
use sack_kernel::kernel::{Kernel, KernelBuilder};
use sack_kernel::lsm::SecurityModule;
use sack_kernel::path::KPath;
use sack_kernel::types::Mode;
use sack_kernel::uctx::UserContext;
use sack_kernel::{Gid, Uid};

use crate::workload;

/// The LSM stack configurations compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LsmConfig {
    /// No LSM at all ("original system without LSM framework").
    NoLsm,
    /// AppArmor alone — the Table II baseline.
    AppArmor,
    /// `CONFIG_LSM="SACK,AppArmor"`, SACK in enhanced mode.
    SackEnhancedAppArmor,
    /// `CONFIG_LSM="SACK"`, SACK enforcing its own rules.
    IndependentSack,
}

impl fmt::Display for LsmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LsmConfig::NoLsm => "no-lsm",
            LsmConfig::AppArmor => "apparmor",
            LsmConfig::SackEnhancedAppArmor => "sack-enhanced-apparmor",
            LsmConfig::IndependentSack => "independent-sack",
        };
        f.write_str(s)
    }
}

/// Knobs for the synthetic policy load, driving the Table III / Fig. 3
/// sweeps.
#[derive(Debug, Clone)]
pub struct TestBedOptions {
    /// LSM stack to boot.
    pub config: LsmConfig,
    /// Extra synthetic SACK rules (Table III sweep: 0/10/100/500/1000).
    pub sack_rules: usize,
    /// Number of situation states in the SACK policy (Fig. 3a sweep).
    pub sack_states: usize,
    /// Confine the benchmark process under the `bench` AppArmor profile so
    /// AppArmor's matching cost is actually on the measured path.
    pub confined: bool,
}

impl TestBedOptions {
    /// Defaults: the paper's "default policies" setup (two situation
    /// states, no synthetic rules, bench process confined).
    pub fn new(config: LsmConfig) -> TestBedOptions {
        TestBedOptions {
            config,
            sack_rules: 0,
            sack_states: 2,
            confined: true,
        }
    }

    /// Sets the synthetic SACK rule count (builder-style).
    pub fn with_sack_rules(mut self, rules: usize) -> TestBedOptions {
        self.sack_rules = rules;
        self
    }

    /// Sets the situation-state count (builder-style).
    pub fn with_sack_states(mut self, states: usize) -> TestBedOptions {
        self.sack_states = states.max(2);
        self
    }
}

/// A booted benchmark environment.
pub struct TestBed {
    kernel: Arc<Kernel>,
    proc: UserContext,
    apparmor: Option<Arc<AppArmor>>,
    sack: Option<Arc<Sack>>,
    config: LsmConfig,
}

impl TestBed {
    /// Boots a testbed with the given options.
    ///
    /// # Panics
    ///
    /// Panics if the synthetic policies fail to load — they are generated
    /// by this crate, so that is a harness bug, not an input error.
    pub fn boot(options: &TestBedOptions) -> TestBed {
        let mut builder = KernelBuilder::new();
        let mut apparmor = None;
        let mut sack = None;

        let wants_apparmor = matches!(
            options.config,
            LsmConfig::AppArmor | LsmConfig::SackEnhancedAppArmor
        );
        let aa = if wants_apparmor {
            let db = Arc::new(PolicyDb::new());
            db.load_text(workload::BENCH_PROFILE)
                .expect("generated profile parses");
            Some(AppArmor::new(db))
        } else {
            None
        };

        match options.config {
            LsmConfig::NoLsm => {}
            LsmConfig::AppArmor => {
                let aa = aa.expect("constructed above");
                builder = builder.security_module(Arc::clone(&aa) as Arc<dyn SecurityModule>);
                apparmor = Some(aa);
            }
            LsmConfig::SackEnhancedAppArmor => {
                let aa = aa.expect("constructed above");
                let policy =
                    workload::synthetic_enhanced_policy(options.sack_states, options.sack_rules);
                let s = Sack::enhanced_apparmor(&policy, Arc::clone(&aa))
                    .expect("generated enhanced policy loads");
                builder = builder
                    .security_module(Arc::clone(&s) as Arc<dyn SecurityModule>)
                    .security_module(Arc::clone(&aa) as Arc<dyn SecurityModule>);
                apparmor = Some(aa);
                sack = Some(s);
            }
            LsmConfig::IndependentSack => {
                let policy =
                    workload::synthetic_independent_policy(options.sack_states, options.sack_rules);
                let s = Sack::independent(&policy).expect("generated policy loads");
                builder = builder.security_module(Arc::clone(&s) as Arc<dyn SecurityModule>);
                sack = Some(s);
            }
        }

        let kernel = builder.boot();
        if let Some(s) = &sack {
            s.attach(&kernel).expect("sackfs attaches on fresh kernel");
        }
        Self::prepare_files(&kernel).expect("workload preparation on fresh kernel");

        // The benchmark process: an unprivileged user, exec'd into
        // /usr/bin/lmbench so profile attachment applies.
        let proc = kernel.spawn(Credentials::user(1000, 1000));
        proc.exec(workload::BENCH_EXE).expect("bench exe prepared");
        if options.confined {
            if let Some(aa) = &apparmor {
                aa.set_profile(proc.pid(), "bench")
                    .expect("bench profile loaded");
            }
        }

        TestBed {
            kernel,
            proc,
            apparmor,
            sack,
            config: options.config,
        }
    }

    fn prepare_files(kernel: &Arc<Kernel>) -> KernelResult<()> {
        let vfs = kernel.vfs();
        vfs.mkdir_all(&KPath::new("/tmp/bench")?)?;
        // World-writable bench dir for the unprivileged bench process.
        vfs.unlink(&KPath::new("/tmp/bench")?)?;
        vfs.mkdir(&KPath::new("/tmp/bench")?, Mode(0o777), Uid::ROOT, Gid(0))?;
        vfs.create_file(
            &KPath::new(workload::BENCH_EXE)?,
            Mode::EXEC,
            Uid::ROOT,
            Gid(0),
        )?;
        vfs.create_file(&KPath::new("/usr/bin/true")?, Mode::EXEC, Uid::ROOT, Gid(0))?;
        // Reread source file.
        let reread = vfs.create_file(
            &KPath::new(workload::REREAD_FILE)?,
            Mode(0o644),
            Uid::ROOT,
            Gid(0),
        )?;
        let block = vec![0xA5u8; 64 * 1024];
        let mut off = 0u64;
        while off < workload::REREAD_SIZE as u64 {
            vfs.write_at(&reread, &block, off)?;
            off += block.len() as u64;
        }
        Ok(())
    }

    /// The kernel under test.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The benchmark process.
    pub fn proc(&self) -> &UserContext {
        &self.proc
    }

    /// The AppArmor module, if stacked.
    pub fn apparmor(&self) -> Option<&Arc<AppArmor>> {
        self.apparmor.as_ref()
    }

    /// The SACK module, if stacked.
    pub fn sack(&self) -> Option<&Arc<Sack>> {
        self.sack.as_ref()
    }

    /// The stack configuration.
    pub fn config(&self) -> LsmConfig {
        self.config
    }
}

impl fmt::Debug for TestBed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestBed")
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_all_configurations() {
        for config in [
            LsmConfig::NoLsm,
            LsmConfig::AppArmor,
            LsmConfig::SackEnhancedAppArmor,
            LsmConfig::IndependentSack,
        ] {
            let bed = TestBed::boot(&TestBedOptions::new(config));
            assert_eq!(bed.config(), config);
            // The bench process can run its workload.
            bed.proc().write_file("/tmp/bench/smoke", b"x").unwrap();
            assert_eq!(bed.proc().read_to_vec("/tmp/bench/smoke").unwrap(), b"x");
            bed.proc().unlink("/tmp/bench/smoke").unwrap();
        }
    }

    #[test]
    fn apparmor_configs_confine_bench_process() {
        let bed = TestBed::boot(&TestBedOptions::new(LsmConfig::AppArmor));
        let aa = bed.apparmor().unwrap();
        assert_eq!(
            aa.current_profile(bed.proc().pid()).as_deref(),
            Some("bench")
        );
        // Confinement is real: paths outside the profile are denied.
        assert!(bed.proc().write_file("/etc/forbidden", b"x").is_err());
    }

    #[test]
    fn sack_sweeps_apply() {
        let bed = TestBed::boot(
            &TestBedOptions::new(LsmConfig::IndependentSack)
                .with_sack_states(10)
                .with_sack_rules(100),
        );
        let sack = bed.sack().unwrap();
        let active = sack.active();
        assert_eq!(active.ssm.space().state_count(), 10);
        assert!(active.policy.rule_count() >= 100);
    }
}
