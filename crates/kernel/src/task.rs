//! Tasks (processes) and the process table.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cred::Credentials;
use crate::error::{Errno, KernelError, KernelResult};
use crate::file::FdTable;
use crate::lsm::HookCtx;
use crate::path::KPath;
use crate::types::Pid;

/// A process: identity, credentials, cwd, executable, and open files.
pub struct Task {
    /// Process id.
    pub pid: Pid,
    /// Parent process id (`Pid(0)` for kernel-spawned tasks).
    pub parent: Pid,
    cred: RwLock<Credentials>,
    cwd: RwLock<KPath>,
    exe: RwLock<Option<KPath>>,
    /// Open file descriptors.
    pub fds: Mutex<FdTable>,
    alive: AtomicBool,
}

impl Task {
    fn new(pid: Pid, parent: Pid, cred: Credentials) -> Arc<Task> {
        Arc::new(Task {
            pid,
            parent,
            cred: RwLock::new(cred),
            cwd: RwLock::new(KPath::root()),
            exe: RwLock::new(None),
            fds: Mutex::new(FdTable::new()),
            alive: AtomicBool::new(true),
        })
    }

    /// Snapshot of the task's credentials.
    pub fn cred(&self) -> Credentials {
        self.cred.read().clone()
    }

    /// Replaces the task's credentials (setuid-style).
    pub fn set_cred(&self, cred: Credentials) {
        *self.cred.write() = cred;
    }

    /// The current working directory.
    pub fn cwd(&self) -> KPath {
        self.cwd.read().clone()
    }

    /// Changes the working directory (path must already be validated).
    pub fn set_cwd(&self, path: KPath) {
        *self.cwd.write() = path;
    }

    /// The executable path, if the task has exec'd.
    pub fn exe(&self) -> Option<KPath> {
        self.exe.read().clone()
    }

    pub(crate) fn set_exe(&self, path: KPath) {
        *self.exe.write() = Some(path);
    }

    /// True until the task exits.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    pub(crate) fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Builds the LSM subject context for this task.
    pub fn hook_ctx(&self) -> HookCtx {
        HookCtx::new(self.pid, self.cred(), self.exe())
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("pid", &self.pid)
            .field("parent", &self.parent)
            .field("exe", &self.exe())
            .field("alive", &self.is_alive())
            .finish()
    }
}

/// The process table.
pub struct ProcessTable {
    tasks: RwLock<HashMap<Pid, Arc<Task>>>,
    next_pid: AtomicU32,
}

impl ProcessTable {
    /// Creates an empty table; pids start at 1.
    pub fn new() -> Self {
        ProcessTable {
            tasks: RwLock::new(HashMap::new()),
            next_pid: AtomicU32::new(1),
        }
    }

    /// Allocates a fresh task with the given parent and credentials.
    pub fn spawn(&self, parent: Pid, cred: Credentials) -> Arc<Task> {
        let pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let task = Task::new(pid, parent, cred);
        self.tasks.write().insert(pid, Arc::clone(&task));
        task
    }

    /// Inserts a forked child that copies `parent`'s cwd/exe/fd table.
    pub fn fork_from(&self, parent: &Task) -> Arc<Task> {
        let pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let child = Arc::new(Task {
            pid,
            parent: parent.pid,
            cred: RwLock::new(parent.cred()),
            cwd: RwLock::new(parent.cwd()),
            exe: RwLock::new(parent.exe()),
            fds: Mutex::new(parent.fds.lock().fork_clone()),
            alive: AtomicBool::new(true),
        });
        self.tasks.write().insert(pid, Arc::clone(&child));
        child
    }

    /// Looks up a live task.
    ///
    /// # Errors
    ///
    /// `ESRCH` for unknown or exited tasks.
    pub fn get(&self, pid: Pid) -> KernelResult<Arc<Task>> {
        self.tasks
            .read()
            .get(&pid)
            .filter(|t| t.is_alive())
            .cloned()
            .ok_or_else(|| KernelError::with_context(Errno::ESRCH, "task"))
    }

    /// Removes an exited task from the table.
    pub fn reap(&self, pid: Pid) {
        self.tasks.write().remove(&pid);
    }

    /// Number of live tasks.
    pub fn live_count(&self) -> usize {
        self.tasks.read().values().filter(|t| t.is_alive()).count()
    }
}

impl Default for ProcessTable {
    fn default() -> Self {
        ProcessTable::new()
    }
}

impl fmt::Debug for ProcessTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessTable")
            .field("live", &self.live_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_monotonic_pids() {
        let table = ProcessTable::new();
        let a = table.spawn(Pid(0), Credentials::root());
        let b = table.spawn(Pid(0), Credentials::root());
        assert!(b.pid > a.pid);
        assert_eq!(table.live_count(), 2);
    }

    #[test]
    fn fork_copies_identity() {
        let table = ProcessTable::new();
        let parent = table.spawn(Pid(0), Credentials::user(7, 8));
        parent.set_cwd(KPath::new("/home").unwrap());
        parent.set_exe(KPath::new("/bin/app").unwrap());
        let child = table.fork_from(&parent);
        assert_eq!(child.parent, parent.pid);
        assert_eq!(child.cred(), parent.cred());
        assert_eq!(child.cwd(), parent.cwd());
        assert_eq!(child.exe(), parent.exe());
    }

    #[test]
    fn dead_tasks_are_not_found() {
        let table = ProcessTable::new();
        let t = table.spawn(Pid(0), Credentials::root());
        let pid = t.pid;
        assert!(table.get(pid).is_ok());
        t.mark_dead();
        assert_eq!(table.get(pid).unwrap_err().errno(), Errno::ESRCH);
        table.reap(pid);
        assert_eq!(table.live_count(), 0);
    }

    #[test]
    fn hook_ctx_snapshots_cred() {
        let table = ProcessTable::new();
        let t = table.spawn(Pid(0), Credentials::user(42, 42));
        let ctx = t.hook_ctx();
        assert_eq!(ctx.pid, t.pid);
        assert_eq!(ctx.cred.uid.0, 42);
        assert_eq!(ctx.exe, None);
    }
}
