//! Normalized absolute kernel paths.
//!
//! [`KPath`] is the canonical object identity used throughout the LSM layer:
//! AppArmor-style profiles and SACK MAC rules both match on it. Paths are
//! always absolute, `/`-separated, with no `.`/`..` components and no
//! trailing slash (except the root itself).

use std::fmt;

use crate::error::{Errno, KernelError, KernelResult};

/// Maximum path length accepted by the simulated VFS (Linux `PATH_MAX`).
pub const PATH_MAX: usize = 4096;

/// A normalized absolute path.
///
/// # Examples
///
/// ```
/// use sack_kernel::path::KPath;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = KPath::new("/dev/car/door0")?;
/// assert_eq!(p.file_name(), Some("door0"));
/// assert_eq!(p.parent().unwrap().as_str(), "/dev/car");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KPath(String);

impl KPath {
    /// The filesystem root, `/`.
    pub fn root() -> Self {
        KPath("/".to_string())
    }

    /// Parses and normalizes an absolute path.
    ///
    /// `.` components are dropped and `..` components resolve upward
    /// (clamped at the root, as the kernel does).
    ///
    /// # Errors
    ///
    /// Returns `EINVAL` for relative or empty paths, `ENAMETOOLONG` when the
    /// input exceeds [`PATH_MAX`].
    pub fn new(raw: &str) -> KernelResult<Self> {
        if raw.len() > PATH_MAX {
            return Err(KernelError::with_context(Errno::ENAMETOOLONG, "vfs"));
        }
        if !raw.starts_with('/') {
            return Err(KernelError::with_context(Errno::EINVAL, "vfs"));
        }
        let mut parts: Vec<&str> = Vec::new();
        for comp in raw.split('/') {
            match comp {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                other => parts.push(other),
            }
        }
        if parts.is_empty() {
            return Ok(KPath::root());
        }
        let mut s = String::with_capacity(raw.len());
        for p in &parts {
            s.push('/');
            s.push_str(p);
        }
        Ok(KPath(s))
    }

    /// Resolves `raw` against this path when `raw` is relative, otherwise
    /// normalizes `raw` itself. Used for cwd-relative syscall arguments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KPath::new`].
    pub fn resolve(&self, raw: &str) -> KernelResult<Self> {
        if raw.starts_with('/') {
            KPath::new(raw)
        } else {
            let mut joined = self.0.clone();
            if !joined.ends_with('/') {
                joined.push('/');
            }
            joined.push_str(raw);
            KPath::new(&joined)
        }
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True for the root path.
    pub fn is_root(&self) -> bool {
        self.0 == "/"
    }

    /// Iterator over path components (excluding the root).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|c| !c.is_empty())
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.components().count()
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        if self.is_root() {
            None
        } else {
            self.0.rsplit('/').next()
        }
    }

    /// The parent directory, or `None` for the root.
    pub fn parent(&self) -> Option<KPath> {
        if self.is_root() {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(KPath::root()),
            Some(idx) => Some(KPath(self.0[..idx].to_string())),
            None => None,
        }
    }

    /// Appends one component, validating it contains no `/`.
    ///
    /// # Errors
    ///
    /// Returns `EINVAL` if `name` is empty, `.`/`..`, or contains `/`.
    pub fn join(&self, name: &str) -> KernelResult<KPath> {
        if name.is_empty() || name.contains('/') || name == "." || name == ".." {
            return Err(KernelError::with_context(Errno::EINVAL, "vfs"));
        }
        let mut s = if self.is_root() {
            String::new()
        } else {
            self.0.clone()
        };
        s.push('/');
        s.push_str(name);
        if s.len() > PATH_MAX {
            return Err(KernelError::with_context(Errno::ENAMETOOLONG, "vfs"));
        }
        Ok(KPath(s))
    }

    /// True if `self` equals `ancestor` or lies beneath it.
    pub fn starts_with(&self, ancestor: &KPath) -> bool {
        if ancestor.is_root() {
            return true;
        }
        self.0 == ancestor.0
            || (self.0.starts_with(&ancestor.0)
                && self.0.as_bytes().get(ancestor.0.len()) == Some(&b'/'))
    }
}

impl fmt::Display for KPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for KPath {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for KPath {
    type Err = KernelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KPath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_dot_components() {
        assert_eq!(KPath::new("/a/./b//c").unwrap().as_str(), "/a/b/c");
        assert_eq!(KPath::new("/a/b/../c").unwrap().as_str(), "/a/c");
        assert_eq!(KPath::new("/../..").unwrap().as_str(), "/");
    }

    #[test]
    fn rejects_relative_paths() {
        assert!(KPath::new("a/b").is_err());
        assert!(KPath::new("").is_err());
    }

    #[test]
    fn rejects_overlong_paths() {
        let long = format!("/{}", "x".repeat(PATH_MAX));
        assert_eq!(KPath::new(&long).unwrap_err().errno(), Errno::ENAMETOOLONG);
    }

    #[test]
    fn parent_and_file_name() {
        let p = KPath::new("/dev/car/door0").unwrap();
        assert_eq!(p.file_name(), Some("door0"));
        assert_eq!(p.parent().unwrap().as_str(), "/dev/car");
        assert_eq!(KPath::new("/etc").unwrap().parent().unwrap().as_str(), "/");
        assert_eq!(KPath::root().parent(), None);
        assert_eq!(KPath::root().file_name(), None);
    }

    #[test]
    fn join_validates_component() {
        let root = KPath::root();
        assert_eq!(root.join("etc").unwrap().as_str(), "/etc");
        assert!(root.join("a/b").is_err());
        assert!(root.join("..").is_err());
        assert!(root.join("").is_err());
    }

    #[test]
    fn resolve_relative_against_cwd() {
        let cwd = KPath::new("/home/user").unwrap();
        assert_eq!(
            cwd.resolve("file.txt").unwrap().as_str(),
            "/home/user/file.txt"
        );
        assert_eq!(cwd.resolve("../other").unwrap().as_str(), "/home/other");
        assert_eq!(cwd.resolve("/abs").unwrap().as_str(), "/abs");
    }

    #[test]
    fn starts_with_respects_component_boundaries() {
        let a = KPath::new("/dev/car").unwrap();
        assert!(KPath::new("/dev/car/door0").unwrap().starts_with(&a));
        assert!(KPath::new("/dev/car").unwrap().starts_with(&a));
        assert!(!KPath::new("/dev/carx").unwrap().starts_with(&a));
        assert!(KPath::new("/anything").unwrap().starts_with(&KPath::root()));
    }

    #[test]
    fn components_and_depth() {
        let p = KPath::new("/a/b/c").unwrap();
        assert_eq!(p.components().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert_eq!(p.depth(), 3);
        assert_eq!(KPath::root().depth(), 0);
    }
}
