//! SMP storm driver: run N worker tasks through the kernel simultaneously.
//!
//! The substrate is lock-free on its hot paths (RCU snapshots, sharded
//! counters, atomic LSM stats), but until this module everything drove it
//! from one thread at a time. [`run_workers`] aligns N OS threads on a
//! barrier and storms a shared kernel; [`run_with_control`] additionally
//! runs a control-plane closure *concurrently* with the storm — the shape
//! of every "policy reload races hook traffic" correctness test.
//!
//! On the simulated kernel a worker thread stands in for a CPU: the
//! per-CPU structures downstream (hazard slots in [`crate::sync`], the
//! per-CPU decision caches in `sack-core`) key off the calling thread, so
//! an N-thread storm exercises N distinct instances exactly as N cores
//! would.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, OnceLock};

/// The process-wide seed every schedule-dependent driver derives from: the
/// deterministic-schedule executor's exploration order in `sack-analyze`,
/// and the probe shuffles in the `smp_storm` integration tests.
///
/// Reads `SACK_SCHED_SEED` (decimal, or hex with a `0x` prefix) once and
/// logs the value to stderr, so any failure in CI is reproducible by
/// re-running with the logged seed. Without the env var the seed is a
/// fixed constant — runs are deterministic by default, and the env var
/// exists to *vary* them, not to pin them.
pub fn sched_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let (seed, source) = match std::env::var("SACK_SCHED_SEED") {
            Ok(raw) => {
                let parsed = raw
                    .strip_prefix("0x")
                    .map(|hex| u64::from_str_radix(hex, 16))
                    .unwrap_or_else(|| raw.parse());
                match parsed {
                    Ok(v) => (v, "env"),
                    Err(_) => {
                        eprintln!("SACK_SCHED_SEED: unparseable value {raw:?}, using default");
                        (0x5ACC_5EED, "default")
                    }
                }
            }
            Err(_) => (0x5ACC_5EED, "default"),
        };
        eprintln!("SACK_SCHED_SEED={seed:#x} ({source}; export SACK_SCHED_SEED to reproduce)");
        seed
    })
}

/// Derives a per-worker sub-seed from [`sched_seed`] (splitmix64 of the
/// seed xor the worker index), so each storm worker gets an independent
/// but reproducible random stream.
pub fn worker_seed(worker: usize) -> u64 {
    let mut z = sched_seed() ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of a [`run_with_control`] storm: per-worker results plus how
/// many control-plane rounds ran while the workers were storming.
#[derive(Debug)]
pub struct StormOutcome<R> {
    /// One result per worker, in worker-index order.
    pub results: Vec<R>,
    /// Number of times the control closure ran concurrently with traffic.
    pub control_rounds: u64,
}

/// Runs `workers` copies of `worker` on dedicated threads, released
/// together by a start barrier so their critical sections actually
/// overlap. Returns the results in worker-index order; a panicking worker
/// propagates its panic to the caller.
pub fn run_workers<R, F>(workers: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let start = Barrier::new(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (worker, start) = (&worker, &start);
                s.spawn(move || {
                    start.wait();
                    worker(w)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Like [`run_workers`], but a control closure runs in a loop on its own
/// thread for the whole duration of the storm — mutating shared state
/// (policy reloads, situation transitions, profile replacements) while the
/// workers drive traffic. The control loop starts with the workers and
/// stops once the last worker finishes; it is guaranteed at least one
/// round even if the workers finish first.
pub fn run_with_control<R, F, C>(workers: usize, worker: F, mut control: C) -> StormOutcome<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    C: FnMut(u64) + Send,
{
    let start = Barrier::new(workers + 1);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (worker, start) = (&worker, &start);
                s.spawn(move || {
                    start.wait();
                    worker(w)
                })
            })
            .collect();
        let controller = s.spawn({
            let (start, done) = (&start, &done);
            move || {
                start.wait();
                let mut rounds = 0u64;
                loop {
                    control(rounds);
                    rounds += 1;
                    if done.load(Ordering::Acquire) {
                        return rounds;
                    }
                    std::thread::yield_now();
                }
            }
        });
        let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, Ordering::Release);
        StormOutcome {
            results,
            control_rounds: controller.join().unwrap(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Credentials;
    use crate::error::{Errno, KernelError, KernelResult};
    use crate::file::OpenFlags;
    use crate::kernel::KernelBuilder;
    use crate::lsm::{AccessMask, HookCtx, ObjectRef, SecurityModule};
    use crate::types::Mode;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Counts every open/permission/ioctl dispatch and denies writes under
    /// `/locked/**` — enough to prove exact hook accounting under storm.
    #[derive(Debug, Default)]
    struct CountingModule {
        opens: AtomicU64,
        perms: AtomicU64,
        ioctls: AtomicU64,
    }

    impl SecurityModule for CountingModule {
        fn name(&self) -> &'static str {
            "counting"
        }

        fn file_open(
            &self,
            ctx: &HookCtx,
            obj: &ObjectRef<'_>,
            mask: AccessMask,
        ) -> KernelResult<()> {
            self.opens.fetch_add(1, Ordering::Relaxed);
            if !ctx.cred.uid.is_root()
                && obj.path.as_str().starts_with("/locked/")
                && mask.contains(AccessMask::WRITE)
            {
                return Err(KernelError::with_context(Errno::EACCES, "counting"));
            }
            Ok(())
        }

        fn file_permission(
            &self,
            _ctx: &HookCtx,
            _obj: &ObjectRef<'_>,
            _mask: AccessMask,
        ) -> KernelResult<()> {
            self.perms.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }

        fn file_ioctl(&self, _ctx: &HookCtx, _obj: &ObjectRef<'_>, _cmd: u32) -> KernelResult<()> {
            self.ioctls.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn storm_counts_every_hook_exactly_once() {
        const WORKERS: usize = 8;
        const ITERS: usize = 200;
        let module = Arc::new(CountingModule::default());
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&module) as Arc<dyn SecurityModule>)
            .boot();
        let root = kernel.spawn(Credentials::root());
        root.mkdir("/locked", Mode(0o755)).unwrap();
        for w in 0..WORKERS {
            root.write_file(&format!("/tmp/storm{w}"), b"payload")
                .unwrap();
            // World-writable so DAC passes and the *module* issues the
            // denial (the hook must fire for denied attempts too).
            kernel
                .vfs()
                .create_file(
                    &format!("/locked/f{w}").parse().unwrap(),
                    Mode(0o666),
                    crate::cred::Uid::ROOT,
                    crate::cred::Gid(0),
                )
                .unwrap();
        }
        let opens_before = module.opens.load(Ordering::Relaxed);

        let denied: u64 = run_workers(WORKERS, |w| {
            let uctx = kernel.spawn(Credentials::user(1000, 1000));
            let mut denied = 0u64;
            let mut buf = [0u8; 16];
            for _ in 0..ITERS {
                // Allowed open + read on the worker's own file.
                let fd = uctx
                    .open(&format!("/tmp/storm{w}"), OpenFlags::read_only())
                    .unwrap();
                uctx.read(fd, &mut buf).unwrap();
                uctx.close(fd).unwrap();
                // Denied write open under /locked/**.
                match uctx.open(&format!("/locked/f{w}"), OpenFlags::write_only()) {
                    Err(e) if e.errno() == Errno::EACCES && e.context() == Some("counting") => {
                        denied += 1
                    }
                    other => panic!("expected a module EACCES, got {other:?}"),
                }
            }
            denied
        })
        .into_iter()
        .sum();

        let total = (WORKERS * ITERS) as u64;
        assert_eq!(denied, total, "every locked write must be denied");
        // Exactly one file_open dispatch per open(2) attempt — allowed and
        // denied alike — with nothing lost or double-counted under storm.
        assert_eq!(
            module.opens.load(Ordering::Relaxed) - opens_before,
            2 * total
        );
        assert_eq!(kernel.lsm().stats().denials(), total);
        // Each successful read dispatched file_permission exactly once.
        assert!(module.perms.load(Ordering::Relaxed) >= total);
    }

    #[test]
    fn control_plane_races_traffic_and_both_make_progress() {
        const WORKERS: usize = 4;
        const ITERS: usize = 300;
        let module = Arc::new(CountingModule::default());
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&module) as Arc<dyn SecurityModule>)
            .boot();
        let root = kernel.spawn(Credentials::root());
        root.write_file("/tmp/shared", b"x").unwrap();

        let outcome = run_with_control(
            WORKERS,
            |_w| {
                let uctx = kernel.spawn(Credentials::user(1000, 1000));
                for _ in 0..ITERS {
                    uctx.read_to_vec("/tmp/shared").unwrap();
                }
            },
            |round| {
                // Control plane mutates the shared file while readers race.
                root.write_file("/tmp/shared", format!("round {round}").as_bytes())
                    .unwrap();
            },
        );
        assert_eq!(outcome.results.len(), WORKERS);
        assert!(outcome.control_rounds >= 1);
        assert_eq!(kernel.lsm().stats().denials(), 0);
    }

    #[test]
    fn worker_seeds_are_deterministic_and_distinct() {
        // Same worker, same process → same stream; different workers →
        // different streams. `sched_seed` is latched once, so both calls
        // see the same base seed regardless of the environment.
        assert_eq!(worker_seed(3), worker_seed(3));
        let seeds: Vec<u64> = (0..8).map(worker_seed).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "worker sub-seeds collided");
            }
        }
    }

    #[test]
    fn seeded_probe_storm_counts_every_dispatch() {
        // Each worker probes a *seed-derived* sequence of files, so the
        // interleaving pressure pattern varies with SACK_SCHED_SEED while
        // staying reproducible from the logged value; the hook-accounting
        // invariant must hold for every pattern.
        const WORKERS: usize = 8;
        const ITERS: usize = 200;
        const FILES: usize = 16;
        let module = Arc::new(CountingModule::default());
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&module) as Arc<dyn SecurityModule>)
            .boot();
        let root = kernel.spawn(Credentials::root());
        for f in 0..FILES {
            root.write_file(&format!("/tmp/probe{f}"), b"payload")
                .unwrap();
        }
        let opens_before = module.opens.load(Ordering::Relaxed);

        run_workers(WORKERS, |w| {
            let uctx = kernel.spawn(Credentials::user(1000, 1000));
            // xorshift64 stream seeded from the worker's sub-seed.
            let mut state = worker_seed(w).max(1);
            for _ in 0..ITERS {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let f = (state as usize) % FILES;
                let fd = uctx
                    .open(&format!("/tmp/probe{f}"), OpenFlags::read_only())
                    .unwrap();
                uctx.close(fd).unwrap();
            }
        });
        assert_eq!(
            module.opens.load(Ordering::Relaxed) - opens_before,
            (WORKERS * ITERS) as u64,
            "every seeded probe must dispatch file_open exactly once"
        );
    }

    #[test]
    fn ioctl_storm_dispatches_the_hook_for_every_call() {
        const WORKERS: usize = 4;
        const ITERS: usize = 100;
        let module = Arc::new(CountingModule::default());
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&module) as Arc<dyn SecurityModule>)
            .boot();
        let root = kernel.spawn(Credentials::root());
        root.write_file("/tmp/notadevice", b"x").unwrap();

        run_workers(WORKERS, |_w| {
            let uctx = kernel.spawn(Credentials::user(1000, 1000));
            let fd = uctx
                .open("/tmp/notadevice", OpenFlags::read_only())
                .unwrap();
            for i in 0..ITERS as u32 {
                // ENOTTY on a regular file, but the LSM hook fires first.
                let err = uctx.ioctl(fd, i, 0).unwrap_err();
                assert_eq!(err.errno(), Errno::ENOTTY);
            }
        });
        assert_eq!(
            module.ioctls.load(Ordering::Relaxed),
            (WORKERS * ITERS) as u64
        );
    }
}
