//! Local IPC: pipes and stream sockets (AF_UNIX and TCP-loopback).
//!
//! These exist so the LMBench local-communication benchmarks (pipe,
//! AF_UNIX, TCP bandwidth) and the context-switch benchmark (token
//! ping-pong through pipes) run against the simulated kernel with the LSM
//! hooks on the data path.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use crate::error::{Errno, KernelError, KernelResult};
use crate::lsm::SocketFamily;

/// Default pipe capacity (64 KiB, as on Linux).
pub const PIPE_CAPACITY: usize = 64 * 1024;

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    read_closed: bool,
    write_closed: bool,
}

/// A unidirectional byte channel with blocking reads and writes.
#[derive(Debug)]
pub struct Pipe {
    state: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

impl Pipe {
    /// Creates a pipe with the default capacity.
    pub fn new() -> Arc<Pipe> {
        Pipe::with_capacity(PIPE_CAPACITY)
    }

    /// Creates a pipe with an explicit capacity (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Arc<Pipe> {
        assert!(capacity > 0, "pipe capacity must be non-zero");
        Arc::new(Pipe {
            state: Mutex::new(PipeState::default()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        })
    }

    /// Writes bytes, blocking while the buffer is full.
    ///
    /// # Errors
    ///
    /// `EPIPE` once the read end is closed.
    pub fn write(&self, data: &[u8]) -> KernelResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut written = 0;
        let mut state = self.state.lock();
        while written < data.len() {
            if state.read_closed {
                return Err(KernelError::with_context(Errno::EPIPE, "pipe"));
            }
            let room = self.capacity - state.buf.len();
            if room == 0 {
                self.writable.wait(&mut state);
                continue;
            }
            let n = room.min(data.len() - written);
            state.buf.extend(&data[written..written + n]);
            written += n;
            self.readable.notify_one();
        }
        Ok(written)
    }

    /// Reads bytes, blocking while the buffer is empty and the write end is
    /// open. Returns 0 at EOF (write end closed, buffer drained).
    pub fn read(&self, buf: &mut [u8]) -> KernelResult<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.state.lock();
        loop {
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                for b in buf.iter_mut().take(n) {
                    *b = state.buf.pop_front().expect("buffer length checked");
                }
                self.writable.notify_one();
                return Ok(n);
            }
            if state.write_closed {
                return Ok(0);
            }
            self.readable.wait(&mut state);
        }
    }

    /// Marks the read end closed; subsequent writes fail with `EPIPE`.
    pub fn close_read(&self) {
        let mut state = self.state.lock();
        state.read_closed = true;
        self.writable.notify_all();
    }

    /// Marks the write end closed; readers drain the buffer then see EOF.
    pub fn close_write(&self) {
        let mut state = self.state.lock();
        state.write_closed = true;
        self.readable.notify_all();
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.state.lock().buf.len()
    }
}

/// One end of a connected stream socket: a pair of pipes.
pub struct SocketEndpoint {
    /// Address family the socket was created with.
    pub family: SocketFamily,
    /// Peer address string (bound path or `tcp:<port>`).
    pub peer: String,
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
}

impl SocketEndpoint {
    /// Creates a connected endpoint pair `(client, server)`.
    pub fn pair(family: SocketFamily, addr: &str) -> (Arc<SocketEndpoint>, Arc<SocketEndpoint>) {
        let a = Pipe::new();
        let b = Pipe::new();
        let client = Arc::new(SocketEndpoint {
            family,
            peer: addr.to_string(),
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        });
        let server = Arc::new(SocketEndpoint {
            family,
            peer: addr.to_string(),
            rx: b,
            tx: a,
        });
        (client, server)
    }

    /// Sends bytes to the peer.
    ///
    /// # Errors
    ///
    /// `EPIPE` once the peer closed.
    pub fn send(&self, data: &[u8]) -> KernelResult<usize> {
        self.tx.write(data)
    }

    /// Receives bytes from the peer (0 at EOF).
    ///
    /// # Errors
    ///
    /// Propagates pipe errors.
    pub fn recv(&self, buf: &mut [u8]) -> KernelResult<usize> {
        self.rx.read(buf)
    }

    /// Shuts down both directions.
    pub fn shutdown(&self) {
        self.tx.close_write();
        self.rx.close_read();
    }
}

impl fmt::Debug for SocketEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocketEndpoint")
            .field("family", &self.family)
            .field("peer", &self.peer)
            .finish()
    }
}

#[derive(Debug, Default)]
struct ListenerState {
    backlog: VecDeque<Arc<SocketEndpoint>>,
    closed: bool,
}

/// A listening socket's accept queue.
pub struct Listener {
    /// Address family.
    pub family: SocketFamily,
    addr: String,
    state: Mutex<ListenerState>,
    ready: Condvar,
}

impl Listener {
    /// The bound address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Blocks until a connection arrives and returns the server endpoint.
    ///
    /// # Errors
    ///
    /// `ECONNRESET` if the listener is closed while waiting.
    pub fn accept(&self) -> KernelResult<Arc<SocketEndpoint>> {
        let mut state = self.state.lock();
        loop {
            if let Some(ep) = state.backlog.pop_front() {
                return Ok(ep);
            }
            if state.closed {
                return Err(KernelError::with_context(Errno::ECONNRESET, "socket"));
            }
            self.ready.wait(&mut state);
        }
    }

    fn push(&self, ep: Arc<SocketEndpoint>) -> KernelResult<()> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(KernelError::with_context(Errno::ECONNREFUSED, "socket"));
        }
        state.backlog.push_back(ep);
        self.ready.notify_one();
        Ok(())
    }

    /// Closes the listener, waking blocked accepts.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        self.ready.notify_all();
    }
}

impl fmt::Debug for Listener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Listener")
            .field("family", &self.family)
            .field("addr", &self.addr)
            .finish()
    }
}

/// Kernel-wide table of listening sockets, keyed by address string.
#[derive(Debug, Default)]
pub struct ListenerTable {
    listeners: RwLock<HashMap<String, Arc<Listener>>>,
}

impl ListenerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ListenerTable::default()
    }

    /// Binds and listens on `addr`.
    ///
    /// # Errors
    ///
    /// `EADDRINUSE` if the address is taken.
    pub fn listen(&self, family: SocketFamily, addr: &str) -> KernelResult<Arc<Listener>> {
        let mut map = self.listeners.write();
        if map.contains_key(addr) {
            return Err(KernelError::with_context(Errno::EADDRINUSE, "socket"));
        }
        let listener = Arc::new(Listener {
            family,
            addr: addr.to_string(),
            state: Mutex::new(ListenerState::default()),
            ready: Condvar::new(),
        });
        map.insert(addr.to_string(), Arc::clone(&listener));
        Ok(listener)
    }

    /// Connects to the listener at `addr`, returning the client endpoint.
    ///
    /// # Errors
    ///
    /// `ECONNREFUSED` when nothing is listening.
    pub fn connect(&self, family: SocketFamily, addr: &str) -> KernelResult<Arc<SocketEndpoint>> {
        let listener = self
            .listeners
            .read()
            .get(addr)
            .cloned()
            .ok_or_else(|| KernelError::with_context(Errno::ECONNREFUSED, "socket"))?;
        if listener.family != family {
            return Err(KernelError::with_context(Errno::ECONNREFUSED, "socket"));
        }
        let (client, server) = SocketEndpoint::pair(family, addr);
        listener.push(server)?;
        Ok(client)
    }

    /// Removes a listener binding.
    pub fn unbind(&self, addr: &str) {
        if let Some(l) = self.listeners.write().remove(addr) {
            l.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn pipe_roundtrip() {
        let pipe = Pipe::new();
        pipe.write(b"hello").unwrap();
        let mut buf = [0u8; 8];
        let n = pipe.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
    }

    #[test]
    fn pipe_eof_after_writer_close() {
        let pipe = Pipe::new();
        pipe.write(b"x").unwrap();
        pipe.close_write();
        let mut buf = [0u8; 8];
        assert_eq!(pipe.read(&mut buf).unwrap(), 1);
        assert_eq!(pipe.read(&mut buf).unwrap(), 0, "EOF after drain");
    }

    #[test]
    fn pipe_epipe_after_reader_close() {
        let pipe = Pipe::new();
        pipe.close_read();
        assert_eq!(pipe.write(b"x").unwrap_err().errno(), Errno::EPIPE);
    }

    #[test]
    fn pipe_blocking_write_wakes_on_read() {
        let pipe = Pipe::with_capacity(4);
        let p2 = Arc::clone(&pipe);
        let writer = thread::spawn(move || p2.write(b"abcdefgh").unwrap());
        let mut got = Vec::new();
        let mut buf = [0u8; 3];
        while got.len() < 8 {
            let n = pipe.read(&mut buf).unwrap();
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(writer.join().unwrap(), 8);
        assert_eq!(got, b"abcdefgh");
    }

    #[test]
    fn socket_pair_is_full_duplex() {
        let (client, server) = SocketEndpoint::pair(SocketFamily::Unix, "/tmp/s");
        client.send(b"ping").unwrap();
        let mut buf = [0u8; 8];
        let n = server.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        server.send(b"pong").unwrap();
        let n = client.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }

    #[test]
    fn listener_accept_connect() {
        let table = ListenerTable::new();
        let listener = table.listen(SocketFamily::Inet, "tcp:8080").unwrap();
        let client = table.connect(SocketFamily::Inet, "tcp:8080").unwrap();
        let server = listener.accept().unwrap();
        client.send(b"hi").unwrap();
        let mut buf = [0u8; 2];
        server.recv(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
    }

    #[test]
    fn connect_without_listener_refused() {
        let table = ListenerTable::new();
        let err = table.connect(SocketFamily::Unix, "/none").unwrap_err();
        assert_eq!(err.errno(), Errno::ECONNREFUSED);
    }

    #[test]
    fn double_bind_is_eaddrinuse() {
        let table = ListenerTable::new();
        table.listen(SocketFamily::Unix, "/s").unwrap();
        assert_eq!(
            table.listen(SocketFamily::Unix, "/s").unwrap_err().errno(),
            Errno::EADDRINUSE
        );
    }

    #[test]
    fn family_mismatch_refused() {
        let table = ListenerTable::new();
        table.listen(SocketFamily::Unix, "/s").unwrap();
        assert_eq!(
            table.connect(SocketFamily::Inet, "/s").unwrap_err().errno(),
            Errno::ECONNREFUSED
        );
    }

    #[test]
    fn unbind_wakes_accepts() {
        let table = Arc::new(ListenerTable::new());
        let listener = table.listen(SocketFamily::Unix, "/s").unwrap();
        let l2 = Arc::clone(&listener);
        let t = thread::spawn(move || l2.accept());
        table.unbind("/s");
        assert_eq!(t.join().unwrap().unwrap_err().errno(), Errno::ECONNRESET);
    }
}
