//! The simulated virtual filesystem: inode table, directory tree, regular
//! files, char-device nodes, and securityfs nodes.
//!
//! The VFS is pure mechanism: it performs no LSM dispatch (that happens in
//! the syscall layer, [`crate::uctx`]) but does implement DAC (classic Unix
//! permission bits), since the paper's baselines run with DAC enabled.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::cred::{Capability, Credentials, Gid, Uid};
use crate::device::DeviceRegistry;
use crate::error::{Errno, KernelError, KernelResult};
use crate::lsm::{AccessMask, ObjectKind};
use crate::path::KPath;
use crate::securityfs::SecurityFsFile;
use crate::types::{DeviceId, InodeId, Mode};

/// Shared, lock-protected file contents (shared with mmap regions).
pub type FileData = Arc<RwLock<Vec<u8>>>;

/// Maximum regular-file size accepted by the simulated VFS (64 MiB).
pub const FILE_MAX: usize = 64 << 20;

/// Maximum symlink traversals during one resolution (Linux `MAXSYMLINKS`).
pub const MAX_SYMLINKS: u32 = 40;

/// What an inode is.
pub enum InodeKind {
    /// Regular file with shared contents.
    Regular(FileData),
    /// Directory with named children.
    Directory(RwLock<BTreeMap<String, InodeId>>),
    /// Character-device node.
    CharDevice(DeviceId),
    /// securityfs pseudo-file; reads/writes go to the handler.
    SecurityFs(Arc<dyn SecurityFsFile>),
    /// Symbolic link to an absolute target path.
    Symlink(KPath),
}

impl InodeKind {
    /// The LSM object class for this inode.
    pub fn object_kind(&self) -> ObjectKind {
        match self {
            InodeKind::Regular(_) => ObjectKind::Regular,
            InodeKind::Directory(_) => ObjectKind::Directory,
            InodeKind::CharDevice(_) => ObjectKind::CharDevice,
            InodeKind::SecurityFs(_) => ObjectKind::SecurityFs,
            // Links are transparent to the hooks: mediation happens on the
            // resolved final path, so the class below is only seen by
            // no-follow operations (unlink of the link itself).
            InodeKind::Symlink(_) => ObjectKind::Regular,
        }
    }
}

impl fmt::Debug for InodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InodeKind::Regular(data) => write!(f, "Regular({} bytes)", data.read().len()),
            InodeKind::Directory(ch) => write!(f, "Directory({} entries)", ch.read().len()),
            InodeKind::CharDevice(dev) => write!(f, "CharDevice({dev})"),
            InodeKind::SecurityFs(_) => f.write_str("SecurityFs"),
            InodeKind::Symlink(target) => write!(f, "Symlink({target})"),
        }
    }
}

/// An inode: identity plus ownership and mode.
#[derive(Debug)]
pub struct Inode {
    /// Inode number.
    pub id: InodeId,
    /// Content/behaviour.
    pub kind: InodeKind,
    /// Permission bits.
    pub mode: Mode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
}

impl Inode {
    /// Size in bytes (0 for non-regular inodes).
    pub fn size(&self) -> u64 {
        match &self.kind {
            InodeKind::Regular(data) => data.read().len() as u64,
            _ => 0,
        }
    }

    /// The char-device id, if this is a device node.
    pub fn device(&self) -> Option<DeviceId> {
        match &self.kind {
            InodeKind::CharDevice(dev) => Some(*dev),
            _ => None,
        }
    }
}

/// `stat(2)` result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: InodeId,
    /// Object class.
    pub kind: ObjectKind,
    /// Permission bits.
    pub mode: Mode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Size in bytes.
    pub size: u64,
}

/// Classic Unix DAC check.
///
/// Selects the owner/group/other permission class for `cred` against the
/// inode and verifies every requested access bit; `CAP_DAC_OVERRIDE`
/// bypasses the check (as does root holding it).
pub fn dac_permission(cred: &Credentials, inode: &Inode, mask: AccessMask) -> KernelResult<()> {
    if cred.capable(Capability::DacOverride) {
        return Ok(());
    }
    let class = if cred.uid == inode.uid {
        0
    } else if cred.gid == inode.gid {
        1
    } else {
        2
    };
    let bits = inode.mode.class_bits(class);
    let mut need = 0u16;
    if mask.intersects(AccessMask::READ) {
        need |= 0o4;
    }
    if mask.intersects(AccessMask::WRITE) || mask.intersects(AccessMask::APPEND) {
        need |= 0o2;
    }
    if mask.intersects(AccessMask::EXEC) {
        need |= 0o1;
    }
    if bits & need == need {
        Ok(())
    } else {
        Err(KernelError::with_context(Errno::EACCES, "dac"))
    }
}

/// The filesystem: an inode table plus the device registry.
pub struct Vfs {
    inodes: RwLock<BTreeMap<InodeId, Arc<Inode>>>,
    next_id: AtomicU64,
    root: InodeId,
    devices: DeviceRegistry,
}

impl Vfs {
    /// Creates a filesystem containing only the root directory (owned by
    /// root, mode `0755`).
    pub fn new() -> Self {
        let root_id = InodeId(1);
        let root = Arc::new(Inode {
            id: root_id,
            kind: InodeKind::Directory(RwLock::new(BTreeMap::new())),
            mode: Mode::EXEC,
            uid: Uid::ROOT,
            gid: Gid(0),
        });
        let mut map = BTreeMap::new();
        map.insert(root_id, root);
        Vfs {
            inodes: RwLock::new(map),
            next_id: AtomicU64::new(2),
            root: root_id,
            devices: DeviceRegistry::new(),
        }
    }

    /// The char-device registry.
    pub fn devices(&self) -> &DeviceRegistry {
        &self.devices
    }

    /// Root inode id.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// Number of live inodes.
    pub fn inode_count(&self) -> usize {
        self.inodes.read().len()
    }

    fn get(&self, id: InodeId) -> KernelResult<Arc<Inode>> {
        self.inodes
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| KernelError::with_context(Errno::ENOENT, "vfs"))
    }

    fn alloc(&self, kind: InodeKind, mode: Mode, uid: Uid, gid: Gid) -> Arc<Inode> {
        let id = InodeId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let inode = Arc::new(Inode {
            id,
            kind,
            mode,
            uid,
            gid,
        });
        self.inodes.write().insert(id, Arc::clone(&inode));
        inode
    }

    /// Resolves an absolute path to its inode, following symlinks.
    ///
    /// # Errors
    ///
    /// `ENOENT` if any component is missing, `ENOTDIR` if a non-final
    /// component is not a directory, `ELOOP` past [`MAX_SYMLINKS`].
    pub fn resolve(&self, path: &KPath) -> KernelResult<Arc<Inode>> {
        Ok(self.resolve_full(path)?.0)
    }

    /// Resolves a path following symlinks, returning the inode **and the
    /// final canonical path** — the object identity that path-based MAC
    /// must mediate (a link alias must not dodge a rule on the target).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vfs::resolve`].
    pub fn resolve_full(&self, path: &KPath) -> KernelResult<(Arc<Inode>, KPath)> {
        self.resolve_with_budget(path, &mut MAX_SYMLINKS.clone())
    }

    fn resolve_with_budget(
        &self,
        path: &KPath,
        budget: &mut u32,
    ) -> KernelResult<(Arc<Inode>, KPath)> {
        let mut cur = self.get(self.root)?;
        let mut cur_path = KPath::root();
        let components: Vec<&str> = path.components().collect();
        for (i, comp) in components.iter().enumerate() {
            let next_id = match &cur.kind {
                InodeKind::Directory(children) => children
                    .read()
                    .get(*comp)
                    .copied()
                    .ok_or_else(|| KernelError::with_context(Errno::ENOENT, "vfs"))?,
                _ => return Err(KernelError::with_context(Errno::ENOTDIR, "vfs")),
            };
            let next = self.get(next_id)?;
            let next_path = cur_path.join(comp)?;
            if let InodeKind::Symlink(target) = &next.kind {
                if *budget == 0 {
                    return Err(KernelError::with_context(Errno::ELOOP, "vfs"));
                }
                *budget -= 1;
                // Re-resolve: target plus the remaining components.
                let mut rebased = target.clone();
                for rest in &components[i + 1..] {
                    rebased = rebased.join(rest)?;
                }
                return self.resolve_with_budget(&rebased, budget);
            }
            cur = next;
            cur_path = next_path;
        }
        Ok((cur, cur_path))
    }

    /// Resolves without following a final-component symlink (`lstat`-style;
    /// intermediate links are still followed).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vfs::resolve`].
    pub fn resolve_nofollow(&self, path: &KPath) -> KernelResult<Arc<Inode>> {
        let parent = match path.parent() {
            Some(parent) => parent,
            None => return self.resolve(path),
        };
        let name = path
            .file_name()
            .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "vfs"))?;
        let (dir, _) = self.resolve_full(&parent)?;
        match &dir.kind {
            InodeKind::Directory(children) => {
                let id = children
                    .read()
                    .get(name)
                    .copied()
                    .ok_or_else(|| KernelError::with_context(Errno::ENOENT, "vfs"))?;
                self.get(id)
            }
            _ => Err(KernelError::with_context(Errno::ENOTDIR, "vfs")),
        }
    }

    /// Creates a symlink at `path` pointing to absolute `target`.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the name is taken; parent-resolution errors.
    pub fn symlink(&self, path: &KPath, target: KPath) -> KernelResult<Arc<Inode>> {
        let (dir, name) = self.resolve_parent(path)?;
        let inode = self.alloc(InodeKind::Symlink(target), Mode(0o777), Uid::ROOT, Gid(0));
        match self.link_child(&dir, &name, inode.id) {
            Ok(()) => Ok(inode),
            Err(e) => {
                self.inodes.write().remove(&inode.id);
                Err(e)
            }
        }
    }

    /// Reads a symlink's target.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the path is not a symlink.
    pub fn readlink(&self, path: &KPath) -> KernelResult<KPath> {
        match &self.resolve_nofollow(path)?.kind {
            InodeKind::Symlink(target) => Ok(target.clone()),
            _ => Err(KernelError::with_context(Errno::EINVAL, "vfs")),
        }
    }

    /// True if the path resolves to an inode.
    pub fn exists(&self, path: &KPath) -> bool {
        self.resolve(path).is_ok()
    }

    /// Resolves the parent directory of `path` and returns it with the final
    /// component name.
    ///
    /// # Errors
    ///
    /// `EINVAL` for the root, `ENOENT`/`ENOTDIR` from parent resolution.
    pub fn resolve_parent(&self, path: &KPath) -> KernelResult<(Arc<Inode>, String)> {
        let parent = path
            .parent()
            .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "vfs"))?;
        let name = path
            .file_name()
            .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "vfs"))?
            .to_string();
        let dir = self.resolve(&parent)?;
        if !matches!(dir.kind, InodeKind::Directory(_)) {
            return Err(KernelError::with_context(Errno::ENOTDIR, "vfs"));
        }
        Ok((dir, name))
    }

    fn link_child(&self, dir: &Inode, name: &str, child: InodeId) -> KernelResult<()> {
        match &dir.kind {
            InodeKind::Directory(children) => {
                let mut ch = children.write();
                if ch.contains_key(name) {
                    return Err(KernelError::with_context(Errno::EEXIST, "vfs"));
                }
                ch.insert(name.to_string(), child);
                Ok(())
            }
            _ => Err(KernelError::with_context(Errno::ENOTDIR, "vfs")),
        }
    }

    /// Creates a regular file at `path`.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the name is taken; parent-resolution errors otherwise.
    pub fn create_file(
        &self,
        path: &KPath,
        mode: Mode,
        uid: Uid,
        gid: Gid,
    ) -> KernelResult<Arc<Inode>> {
        let (dir, name) = self.resolve_parent(path)?;
        let inode = self.alloc(
            InodeKind::Regular(Arc::new(RwLock::new(Vec::new()))),
            mode,
            uid,
            gid,
        );
        match self.link_child(&dir, &name, inode.id) {
            Ok(()) => Ok(inode),
            Err(e) => {
                self.inodes.write().remove(&inode.id);
                Err(e)
            }
        }
    }

    /// Creates a directory at `path`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vfs::create_file`].
    pub fn mkdir(&self, path: &KPath, mode: Mode, uid: Uid, gid: Gid) -> KernelResult<Arc<Inode>> {
        let (dir, name) = self.resolve_parent(path)?;
        let inode = self.alloc(
            InodeKind::Directory(RwLock::new(BTreeMap::new())),
            mode,
            uid,
            gid,
        );
        match self.link_child(&dir, &name, inode.id) {
            Ok(()) => Ok(inode),
            Err(e) => {
                self.inodes.write().remove(&inode.id);
                Err(e)
            }
        }
    }

    /// Creates every missing directory along `path` (like `mkdir -p`),
    /// owned by root.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` if an existing component is not a directory.
    pub fn mkdir_all(&self, path: &KPath) -> KernelResult<()> {
        let mut cur = KPath::root();
        for comp in path.components() {
            cur = cur.join(comp)?;
            match self.resolve(&cur) {
                Ok(node) => {
                    if !matches!(node.kind, InodeKind::Directory(_)) {
                        return Err(KernelError::with_context(Errno::ENOTDIR, "vfs"));
                    }
                }
                Err(_) => {
                    self.mkdir(&cur, Mode::EXEC, Uid::ROOT, Gid(0))?;
                }
            }
        }
        Ok(())
    }

    /// Creates a char-device node at `path`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Vfs::create_file`].
    pub fn mknod(
        &self,
        path: &KPath,
        dev: DeviceId,
        mode: Mode,
        uid: Uid,
        gid: Gid,
    ) -> KernelResult<Arc<Inode>> {
        let (dir, name) = self.resolve_parent(path)?;
        let inode = self.alloc(InodeKind::CharDevice(dev), mode, uid, gid);
        match self.link_child(&dir, &name, inode.id) {
            Ok(()) => Ok(inode),
            Err(e) => {
                self.inodes.write().remove(&inode.id);
                Err(e)
            }
        }
    }

    /// Registers a securityfs node at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// `EEXIST` if the node already exists.
    pub fn register_securityfs(
        &self,
        path: &KPath,
        ops: Arc<dyn SecurityFsFile>,
    ) -> KernelResult<Arc<Inode>> {
        if let Some(parent) = path.parent() {
            self.mkdir_all(&parent)?;
        }
        let mode = ops.mode();
        let (dir, name) = self.resolve_parent(path)?;
        let inode = self.alloc(InodeKind::SecurityFs(ops), mode, Uid::ROOT, Gid(0));
        match self.link_child(&dir, &name, inode.id) {
            Ok(()) => Ok(inode),
            Err(e) => {
                self.inodes.write().remove(&inode.id);
                Err(e)
            }
        }
    }

    /// Removes the object at `path`.
    ///
    /// # Errors
    ///
    /// `ENOENT` if missing, `ENOTEMPTY` for non-empty directories.
    pub fn unlink(&self, path: &KPath) -> KernelResult<()> {
        let (dir, name) = self.resolve_parent(path)?;
        let child_id = match &dir.kind {
            InodeKind::Directory(children) => children
                .read()
                .get(&name)
                .copied()
                .ok_or_else(|| KernelError::with_context(Errno::ENOENT, "vfs"))?,
            _ => return Err(KernelError::with_context(Errno::ENOTDIR, "vfs")),
        };
        let child = self.get(child_id)?;
        if let InodeKind::Directory(children) = &child.kind {
            if !children.read().is_empty() {
                return Err(KernelError::with_context(Errno::ENOTEMPTY, "vfs"));
            }
        }
        if let InodeKind::Directory(children) = &dir.kind {
            children.write().remove(&name);
        }
        self.inodes.write().remove(&child_id);
        Ok(())
    }

    /// Moves the object at `old` to `new` (within the single filesystem).
    /// An existing regular file at `new` is replaced, as POSIX requires;
    /// directories may not be replaced.
    ///
    /// # Errors
    ///
    /// `ENOENT` if `old` is missing; `EEXIST` if `new` is an existing
    /// directory; `EINVAL` for renaming a directory into itself.
    pub fn rename(&self, old: &KPath, new: &KPath) -> KernelResult<()> {
        if old == new {
            return Ok(());
        }
        if new.starts_with(old) {
            return Err(KernelError::with_context(Errno::EINVAL, "vfs"));
        }
        let moving = self.resolve(old)?;
        let (new_dir, new_name) = self.resolve_parent(new)?;
        // Check the target slot.
        if let Ok(existing) = self.resolve(new) {
            if matches!(existing.kind, InodeKind::Directory(_)) {
                return Err(KernelError::with_context(Errno::EEXIST, "vfs"));
            }
        }
        let (old_dir, old_name) = self.resolve_parent(old)?;
        // Unlink from the old parent.
        match &old_dir.kind {
            InodeKind::Directory(children) => {
                children.write().remove(&old_name);
            }
            _ => return Err(KernelError::with_context(Errno::ENOTDIR, "vfs")),
        }
        // Link into the new parent, replacing any regular file.
        match &new_dir.kind {
            InodeKind::Directory(children) => {
                let mut ch = children.write();
                if let Some(replaced) = ch.insert(new_name, moving.id) {
                    if replaced != moving.id {
                        self.inodes.write().remove(&replaced);
                    }
                }
                Ok(())
            }
            _ => Err(KernelError::with_context(Errno::ENOTDIR, "vfs")),
        }
    }

    /// Lists directory entries at `path`.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` if `path` is not a directory.
    pub fn read_dir(&self, path: &KPath) -> KernelResult<Vec<String>> {
        let node = self.resolve(path)?;
        match &node.kind {
            InodeKind::Directory(children) => Ok(children.read().keys().cloned().collect()),
            _ => Err(KernelError::with_context(Errno::ENOTDIR, "vfs")),
        }
    }

    /// Metadata for `path`.
    ///
    /// # Errors
    ///
    /// Resolution errors.
    pub fn metadata(&self, path: &KPath) -> KernelResult<Metadata> {
        let node = self.resolve(path)?;
        Ok(Metadata {
            ino: node.id,
            kind: node.kind.object_kind(),
            mode: node.mode,
            uid: node.uid,
            gid: node.gid,
            size: node.size(),
        })
    }

    /// Reads from a regular file at `offset` into `buf`; returns bytes read.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories, `EINVAL` for other non-regular inodes.
    pub fn read_at(&self, inode: &Inode, buf: &mut [u8], offset: u64) -> KernelResult<usize> {
        match &inode.kind {
            InodeKind::Regular(data) => {
                let data = data.read();
                let off = offset as usize;
                if off >= data.len() {
                    return Ok(0);
                }
                let n = buf.len().min(data.len() - off);
                buf[..n].copy_from_slice(&data[off..off + n]);
                Ok(n)
            }
            InodeKind::Directory(_) => Err(KernelError::with_context(Errno::EISDIR, "vfs")),
            _ => Err(KernelError::with_context(Errno::EINVAL, "vfs")),
        }
    }

    /// Writes into a regular file at `offset`, growing it as needed; returns
    /// bytes written.
    ///
    /// # Errors
    ///
    /// `EISDIR`/`EINVAL` as for [`Vfs::read_at`], `EFBIG` past [`FILE_MAX`].
    pub fn write_at(&self, inode: &Inode, buf: &[u8], offset: u64) -> KernelResult<usize> {
        match &inode.kind {
            InodeKind::Regular(data) => {
                let end = offset as usize + buf.len();
                if end > FILE_MAX {
                    return Err(KernelError::with_context(Errno::EFBIG, "vfs"));
                }
                let mut data = data.write();
                if end > data.len() {
                    data.resize(end, 0);
                }
                data[offset as usize..end].copy_from_slice(buf);
                Ok(buf.len())
            }
            InodeKind::Directory(_) => Err(KernelError::with_context(Errno::EISDIR, "vfs")),
            _ => Err(KernelError::with_context(Errno::EINVAL, "vfs")),
        }
    }

    /// Truncates a regular file to zero length.
    ///
    /// # Errors
    ///
    /// `EINVAL` for non-regular inodes.
    pub fn truncate(&self, inode: &Inode) -> KernelResult<()> {
        match &inode.kind {
            InodeKind::Regular(data) => {
                data.write().clear();
                Ok(())
            }
            _ => Err(KernelError::with_context(Errno::EINVAL, "vfs")),
        }
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

impl fmt::Debug for Vfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vfs")
            .field("inodes", &self.inode_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> KPath {
        KPath::new(s).unwrap()
    }

    #[test]
    fn create_resolve_roundtrip() {
        let vfs = Vfs::new();
        vfs.mkdir_all(&p("/etc")).unwrap();
        vfs.create_file(&p("/etc/passwd"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        let node = vfs.resolve(&p("/etc/passwd")).unwrap();
        assert!(matches!(node.kind, InodeKind::Regular(_)));
        assert_eq!(vfs.metadata(&p("/etc/passwd")).unwrap().size, 0);
    }

    #[test]
    fn duplicate_create_is_eexist() {
        let vfs = Vfs::new();
        vfs.create_file(&p("/a"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        let before = vfs.inode_count();
        let err = vfs
            .create_file(&p("/a"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap_err();
        assert_eq!(err.errno(), Errno::EEXIST);
        // Failed create must not leak an inode.
        assert_eq!(vfs.inode_count(), before);
    }

    #[test]
    fn read_write_at_offsets() {
        let vfs = Vfs::new();
        let node = vfs
            .create_file(&p("/f"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        assert_eq!(vfs.write_at(&node, b"hello", 0).unwrap(), 5);
        assert_eq!(vfs.write_at(&node, b"!!", 5).unwrap(), 2);
        let mut buf = [0u8; 16];
        let n = vfs.read_at(&node, &mut buf, 0).unwrap();
        assert_eq!(&buf[..n], b"hello!!");
        // Sparse write zero-fills.
        assert_eq!(vfs.write_at(&node, b"x", 10).unwrap(), 1);
        assert_eq!(node.size(), 11);
        let n = vfs.read_at(&node, &mut buf, 7).unwrap();
        assert_eq!(&buf[..n], &[0, 0, 0, b'x']);
    }

    #[test]
    fn read_past_eof_returns_zero() {
        let vfs = Vfs::new();
        let node = vfs
            .create_file(&p("/f"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(vfs.read_at(&node, &mut buf, 100).unwrap(), 0);
    }

    #[test]
    fn unlink_empty_dir_only() {
        let vfs = Vfs::new();
        vfs.mkdir_all(&p("/d/sub")).unwrap();
        assert_eq!(vfs.unlink(&p("/d")).unwrap_err().errno(), Errno::ENOTEMPTY);
        vfs.unlink(&p("/d/sub")).unwrap();
        vfs.unlink(&p("/d")).unwrap();
        assert!(!vfs.exists(&p("/d")));
    }

    #[test]
    fn mknod_creates_device_node() {
        let vfs = Vfs::new();
        vfs.mkdir_all(&p("/dev/car")).unwrap();
        let dev = DeviceId::new(240, 1);
        vfs.mknod(&p("/dev/car/door0"), dev, Mode::PRIVATE, Uid::ROOT, Gid(0))
            .unwrap();
        let node = vfs.resolve(&p("/dev/car/door0")).unwrap();
        assert_eq!(node.device(), Some(dev));
        assert_eq!(node.kind.object_kind(), ObjectKind::CharDevice);
    }

    #[test]
    fn read_dir_lists_entries() {
        let vfs = Vfs::new();
        vfs.mkdir_all(&p("/x")).unwrap();
        vfs.create_file(&p("/x/a"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        vfs.create_file(&p("/x/b"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        assert_eq!(vfs.read_dir(&p("/x")).unwrap(), vec!["a", "b"]);
        assert!(vfs.read_dir(&p("/x/a")).is_err());
    }

    #[test]
    fn dac_owner_group_other_classes() {
        let vfs = Vfs::new();
        let node = vfs
            .create_file(&p("/f"), Mode(0o640), Uid(100), Gid(200))
            .unwrap();
        let owner = Credentials::user(100, 1);
        let group = Credentials::user(5, 200);
        let other = Credentials::user(5, 5);
        assert!(dac_permission(&owner, &node, AccessMask::READ | AccessMask::WRITE).is_ok());
        assert!(dac_permission(&group, &node, AccessMask::READ).is_ok());
        assert!(dac_permission(&group, &node, AccessMask::WRITE).is_err());
        assert!(dac_permission(&other, &node, AccessMask::READ).is_err());
        // CAP_DAC_OVERRIDE bypasses.
        let privileged = Credentials::user(5, 5).with_capability(Capability::DacOverride);
        assert!(dac_permission(&privileged, &node, AccessMask::WRITE).is_ok());
    }

    #[test]
    fn truncate_clears_content() {
        let vfs = Vfs::new();
        let node = vfs
            .create_file(&p("/f"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        vfs.write_at(&node, b"data", 0).unwrap();
        vfs.truncate(&node).unwrap();
        assert_eq!(node.size(), 0);
    }

    #[test]
    fn resolve_through_non_directory_fails() {
        let vfs = Vfs::new();
        vfs.create_file(&p("/f"), Mode::REGULAR, Uid::ROOT, Gid(0))
            .unwrap();
        assert_eq!(
            vfs.resolve(&p("/f/child")).unwrap_err().errno(),
            Errno::ENOTDIR
        );
    }

    #[test]
    fn securityfs_registration_creates_parents() {
        struct Node;
        impl SecurityFsFile for Node {
            fn read_content(&self, _ctx: &crate::lsm::HookCtx) -> KernelResult<Vec<u8>> {
                Ok(b"ok".to_vec())
            }
        }
        let vfs = Vfs::new();
        let path = p("/sys/kernel/security/SACK/events");
        vfs.register_securityfs(&path, Arc::new(Node)).unwrap();
        let node = vfs.resolve(&path).unwrap();
        assert_eq!(node.kind.object_kind(), ObjectKind::SecurityFs);
        assert_eq!(node.mode, Mode::PRIVATE);
    }
}
