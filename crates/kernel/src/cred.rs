//! Credentials: user/group ids and POSIX capabilities.
//!
//! SACK's threat model assumes attackers cannot obtain `CAP_MAC_ADMIN` or
//! `CAP_MAC_OVERRIDE`; the simulated kernel enforces those capabilities on
//! securityfs policy/event writes exactly where Linux does.

use std::fmt;

/// User identifier. Uid 0 is root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// True for uid 0.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

/// Group identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gid(pub u32);

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid:{}", self.0)
    }
}

/// POSIX capabilities relevant to the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Capability {
    /// Override DAC (discretionary) permission checks.
    DacOverride = 1,
    /// Allow configuring MAC policy (`CAP_MAC_ADMIN`).
    MacAdmin = 33,
    /// Override MAC policy (`CAP_MAC_OVERRIDE`).
    MacOverride = 32,
    /// Raw device access (`CAP_SYS_RAWIO`).
    SysRawio = 17,
    /// General administration (`CAP_SYS_ADMIN`).
    SysAdmin = 21,
    /// Kill arbitrary processes.
    Kill = 5,
    /// Bind privileged ports.
    NetBindService = 10,
    /// Use raw sockets.
    NetRaw = 13,
}

impl Capability {
    /// All capabilities known to the simulation.
    pub const ALL: [Capability; 8] = [
        Capability::DacOverride,
        Capability::MacAdmin,
        Capability::MacOverride,
        Capability::SysRawio,
        Capability::SysAdmin,
        Capability::Kill,
        Capability::NetBindService,
        Capability::NetRaw,
    ];

    /// The kernel capability name, e.g. `"CAP_MAC_ADMIN"`.
    pub fn name(self) -> &'static str {
        match self {
            Capability::DacOverride => "CAP_DAC_OVERRIDE",
            Capability::MacAdmin => "CAP_MAC_ADMIN",
            Capability::MacOverride => "CAP_MAC_OVERRIDE",
            Capability::SysRawio => "CAP_SYS_RAWIO",
            Capability::SysAdmin => "CAP_SYS_ADMIN",
            Capability::Kill => "CAP_KILL",
            Capability::NetBindService => "CAP_NET_BIND_SERVICE",
            Capability::NetRaw => "CAP_NET_RAW",
        }
    }

    /// Parses a capability from its kernel name (case-insensitive,
    /// `CAP_` prefix optional).
    pub fn parse(text: &str) -> Option<Capability> {
        let t = text.trim().to_ascii_uppercase();
        let t = t.strip_prefix("CAP_").unwrap_or(&t);
        Capability::ALL
            .iter()
            .copied()
            .find(|c| c.name().strip_prefix("CAP_") == Some(t))
    }

    fn bit(self) -> u64 {
        1u64 << (self as u8)
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of capabilities, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapabilitySet(u64);

impl CapabilitySet {
    /// The empty set.
    pub fn empty() -> Self {
        CapabilitySet(0)
    }

    /// The full set (what root gets by default).
    pub fn full() -> Self {
        let mut set = CapabilitySet(0);
        for cap in Capability::ALL {
            set.insert(cap);
        }
        set
    }

    /// Adds a capability.
    pub fn insert(&mut self, cap: Capability) {
        self.0 |= cap.bit();
    }

    /// Removes a capability.
    pub fn remove(&mut self, cap: Capability) {
        self.0 &= !cap.bit();
    }

    /// Membership test.
    pub fn contains(self, cap: Capability) -> bool {
        self.0 & cap.bit() != 0
    }

    /// True if no capability is held.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the contained capabilities.
    pub fn iter(self) -> impl Iterator<Item = Capability> {
        Capability::ALL
            .into_iter()
            .filter(move |c| self.contains(*c))
    }
}

impl FromIterator<Capability> for CapabilitySet {
    fn from_iter<I: IntoIterator<Item = Capability>>(iter: I) -> Self {
        let mut set = CapabilitySet::empty();
        for cap in iter {
            set.insert(cap);
        }
        set
    }
}

impl fmt::Display for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for cap in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            f.write_str(cap.name())?;
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// A task's credentials: ids plus effective capabilities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Credentials {
    /// Effective user id.
    pub uid: Uid,
    /// Effective group id.
    pub gid: Gid,
    /// Effective capability set.
    pub caps: CapabilitySet,
}

impl Credentials {
    /// Root credentials with the full capability set.
    pub fn root() -> Self {
        Credentials {
            uid: Uid::ROOT,
            gid: Gid(0),
            caps: CapabilitySet::full(),
        }
    }

    /// Unprivileged user credentials with no capabilities.
    pub fn user(uid: u32, gid: u32) -> Self {
        Credentials {
            uid: Uid(uid),
            gid: Gid(gid),
            caps: CapabilitySet::empty(),
        }
    }

    /// Returns a copy with one extra capability (builder-style).
    pub fn with_capability(mut self, cap: Capability) -> Self {
        self.caps.insert(cap);
        self
    }

    /// True if the credentials hold the capability.
    pub fn capable(&self, cap: Capability) -> bool {
        self.caps.contains(cap)
    }
}

impl Default for Credentials {
    fn default() -> Self {
        Credentials::user(1000, 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_all_capabilities() {
        let root = Credentials::root();
        for cap in Capability::ALL {
            assert!(root.capable(cap), "root should hold {cap}");
        }
    }

    #[test]
    fn user_has_no_capabilities() {
        let user = Credentials::user(1000, 1000);
        assert!(user.caps.is_empty());
        assert!(!user.capable(Capability::MacAdmin));
    }

    #[test]
    fn with_capability_adds_only_that_cap() {
        let cred = Credentials::user(1, 1).with_capability(Capability::MacAdmin);
        assert!(cred.capable(Capability::MacAdmin));
        assert!(!cred.capable(Capability::MacOverride));
    }

    #[test]
    fn capability_set_insert_remove_roundtrip() {
        let mut set = CapabilitySet::empty();
        set.insert(Capability::Kill);
        set.insert(Capability::NetRaw);
        assert!(set.contains(Capability::Kill));
        set.remove(Capability::Kill);
        assert!(!set.contains(Capability::Kill));
        assert!(set.contains(Capability::NetRaw));
    }

    #[test]
    fn capability_parse_accepts_variants() {
        assert_eq!(
            Capability::parse("CAP_MAC_ADMIN"),
            Some(Capability::MacAdmin)
        );
        assert_eq!(Capability::parse("mac_admin"), Some(Capability::MacAdmin));
        assert_eq!(Capability::parse("net_raw"), Some(Capability::NetRaw));
        assert_eq!(Capability::parse("bogus"), None);
    }

    #[test]
    fn capability_set_from_iterator_and_display() {
        let set: CapabilitySet = [Capability::Kill, Capability::NetRaw].into_iter().collect();
        let text = set.to_string();
        assert!(text.contains("CAP_KILL"));
        assert!(text.contains("CAP_NET_RAW"));
        assert_eq!(CapabilitySet::empty().to_string(), "(none)");
    }
}
