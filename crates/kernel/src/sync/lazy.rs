//! [`LazySlot`]: a publish-once cell for first-touch compilation.
//!
//! The profile-compilation pipeline loads never-hit profiles as
//! *uncompiled stubs*: the expensive unified DFA is built on the first
//! hook that actually touches the profile. The protocol that makes the
//! first touch safe under SMP lives here, over the same [`shim::Backend`]
//! seam as [`Rcu`](super::Rcu), so the deterministic-schedule executor in
//! `sack-analyze` explores the *shipped* code:
//!
//! * **At-most-once build.** A `claim` word is CAS'd `0 → 1` before
//!   building; exactly one racer wins. Losers return immediately (the
//!   caller falls back to its retained scan matcher), so hooks never
//!   block on a compile and never observe a half-built table.
//! * **Publish-once pointer.** The winner publishes the built value with
//!   a single pointer store. Once non-null the pointer is never replaced
//!   or freed until the slot itself drops (which requires `&mut`), so a
//!   `&T` handed out by [`LazySlot::get`] stays valid for the borrow of
//!   the slot — readers need no hazard announcements at all.
//!
//! The planted [`Mutation::LazyDoublePublish`] bug removes the claim, so
//! two racing builders both publish and the second frees the first's
//! value while a concurrent reader may be between its pointer load and
//! its dereference — the executor's freed-address registry catches the
//! use-after-free before it happens.

use std::ptr;
use std::sync::atomic::Ordering::SeqCst;

use super::shim::{Backend, Mutation, RawAtomicPtr, RawAtomicUsize, StdBackend};

/// A cell holding a value that is built lazily, at most once, by the
/// first caller of [`LazySlot::get_or_build`] — or built eagerly up
/// front via [`LazySlot::ready`]. See the module docs for the protocol.
pub struct LazySlot<T, B: Backend = StdBackend> {
    /// `0` = nobody has started the build; `1` = a builder claimed it
    /// (and, eventually, published). Never reset.
    claim: B::AtomicUsize,
    /// The published value. Null until the winning builder's store;
    /// afterwards immutable until `Drop`.
    value: B::AtomicPtr<T>,
}

// SAFETY: the slot shares `T` across threads like a `&T` once published;
// `T: Send + Sync` carries exactly the bounds that makes sound. The
// backend primitives are `Send + Sync` by their trait bounds.
unsafe impl<T: Send + Sync, B: Backend> Send for LazySlot<T, B> {}
unsafe impl<T: Send + Sync, B: Backend> Sync for LazySlot<T, B> {}

impl<T, B: Backend> LazySlot<T, B> {
    /// Creates an unbuilt slot.
    pub fn empty() -> LazySlot<T, B> {
        LazySlot {
            claim: RawAtomicUsize::new(0),
            value: RawAtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Creates a slot already holding `value` (the eager-compile path:
    /// same cell type, no first-touch race left to run).
    pub fn ready(value: T) -> LazySlot<T, B> {
        let p = Box::into_raw(Box::new(value));
        B::trace_alloc(p as usize);
        LazySlot {
            claim: RawAtomicUsize::new(1),
            value: RawAtomicPtr::new(p),
        }
    }

    /// The published value, if the build has completed.
    ///
    /// The returned borrow is tied to `&self`: the pointer, once
    /// published, is freed only by `Drop` (which requires `&mut self`),
    /// so it outlives every outstanding shared borrow.
    pub fn get(&self) -> Option<&T> {
        let p = self.value.load(SeqCst);
        if p.is_null() {
            return None;
        }
        B::check_acquire(p as usize);
        // SAFETY: a non-null published pointer is immutable and owned by
        // the slot until `Drop`; see above.
        Some(unsafe { &*p })
    }

    /// True once a build has published.
    pub fn is_built(&self) -> bool {
        !self.value.load(SeqCst).is_null()
    }

    /// Returns the value, building it if nobody has yet.
    ///
    /// Exactly one caller wins the claim and runs `build` (so `build`
    /// runs at most once per slot); the winner always gets `Some`.
    /// A loser returns whatever is published at that instant — `None`
    /// while the winner's build is still in flight — and must fall back
    /// to its own slow path instead of blocking.
    pub fn get_or_build(&self, build: impl FnOnce() -> T) -> Option<&T> {
        if let Some(v) = self.get() {
            return Some(v);
        }
        if !B::mutation(Mutation::LazyDoublePublish)
            && self.claim.compare_exchange(0, 1, SeqCst, SeqCst).is_err()
        {
            // Another builder owns the claim. It may already have
            // published between our `get` and the failed CAS, so look
            // once more — but never wait.
            return self.get();
        }
        let p = Box::into_raw(Box::new(build()));
        B::trace_alloc(p as usize);
        if B::mutation(Mutation::LazyDoublePublish) {
            // Planted bug (executor-only): with no claim, both racers
            // build; publishing by unconditional swap frees the other
            // racer's value while a reader may be between its pointer
            // load and its dereference.
            let old = self.value.swap(p, SeqCst);
            if !old.is_null() {
                B::trace_free(old as usize);
                // SAFETY: unsound by construction — this arm exists to
                // be caught by the schedule executor's freed-address
                // registry at the reader's `check_acquire`.
                unsafe { drop(Box::from_raw(old)) };
            }
        } else {
            let published = self
                .value
                .compare_exchange(ptr::null_mut(), p, SeqCst, SeqCst);
            debug_assert!(published.is_ok(), "claim CAS guarantees a sole publisher");
        }
        self.get()
    }
}

impl<T, B: Backend> Default for LazySlot<T, B> {
    fn default() -> Self {
        LazySlot::empty()
    }
}

impl<T: std::fmt::Debug, B: Backend> std::fmt::Debug for LazySlot<T, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazySlot")
            .field("value", &self.get())
            .finish()
    }
}

impl<T, B: Backend> Drop for LazySlot<T, B> {
    fn drop(&mut self) {
        // `&mut self` proves no `&T` borrow is outstanding.
        let p = self.value.load(SeqCst);
        if !p.is_null() {
            B::trace_free(p as usize);
            // SAFETY: the published pointer owns the boxed value and no
            // borrows remain.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn empty_builds_once_on_first_touch() {
        let slot: LazySlot<u32> = LazySlot::empty();
        assert!(!slot.is_built());
        assert_eq!(slot.get(), None);
        assert_eq!(slot.get_or_build(|| 7), Some(&7));
        assert!(slot.is_built());
        // A second touch reuses the published value, never rebuilds.
        assert_eq!(slot.get_or_build(|| 9), Some(&7));
        assert_eq!(slot.get(), Some(&7));
    }

    #[test]
    fn ready_slot_never_runs_the_builder() {
        let slot: LazySlot<String> = LazySlot::ready("eager".to_string());
        assert!(slot.is_built());
        assert_eq!(
            slot.get_or_build(|| unreachable!("ready slot must not build")),
            Some(&"eager".to_string())
        );
    }

    #[test]
    fn racing_builders_build_at_most_once() {
        for _ in 0..64 {
            let slot: Arc<LazySlot<u64>> = Arc::new(LazySlot::empty());
            let builds = Arc::new(AtomicUsize::new(0));
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let slot = Arc::clone(&slot);
                    let builds = Arc::clone(&builds);
                    thread::spawn(move || {
                        slot.get_or_build(|| {
                            builds.fetch_add(1, Ordering::SeqCst);
                            42
                        })
                        .copied()
                    })
                })
                .collect();
            let results: Vec<Option<u64>> =
                threads.into_iter().map(|t| t.join().unwrap()).collect();
            assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
            // Losers may see None (in-flight) but never a wrong value.
            assert!(results.iter().flatten().all(|&v| v == 42));
            // Someone (at least the winner) got the value.
            assert!(results.iter().any(Option::is_some));
            assert_eq!(slot.get(), Some(&42));
        }
    }

    #[test]
    fn drop_frees_the_published_value() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let slot: LazySlot<Counted> = LazySlot::empty();
        slot.get_or_build(|| Counted(Arc::clone(&drops)));
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(slot);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // An unbuilt slot drops nothing.
        let empty: LazySlot<Counted> = LazySlot::empty();
        drop(empty);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
