//! Synchronisation shim: one compile-time seam between the lock-free
//! protocol code and the primitives it runs on.
//!
//! Every atomic word, mutex, and thread-identity read used by the
//! `Rcu<T>` hazard-pointer protocol (and by the decision caches in
//! `sack-core`) goes through the [`Backend`] trait defined here instead
//! of naming `std::sync` directly. Two backends exist:
//!
//! * [`StdBackend`] — the default type parameter everywhere. Each trait
//!   method is an `#[inline(always)]` forward to the `std::sync::atomic`
//!   operation with the *caller's* memory ordering, every mutation hook
//!   is a constant `false`, and every lifecycle hook is an empty body, so
//!   after monomorphisation a release build is instruction-for-
//!   instruction identical to writing `std::sync` by hand. This is the
//!   backend every production type alias (`Rcu<T>`, `DecisionCache`,
//!   `PerCpuCache`) resolves to.
//! * `SchedBackend` (in `sack-analyze::sched`) — every operation first
//!   parks the calling thread at a *yield point* and waits for a
//!   deterministic scheduler to grant it the turn, which is what lets
//!   the executor enumerate bounded thread interleavings of the **real**
//!   protocol code rather than a hand-transcribed model of it.
//!
//! The seam carries three kinds of hooks beyond the primitives
//! themselves:
//!
//! * [`Backend::thread_index`] — a dense per-thread id; hazard-slot and
//!   per-CPU-instance selection key off it so the executor can pin
//!   scenario threads to stable, deterministic slots.
//! * [`Backend::mutation`] — compile-time-off switches that plant one
//!   known bug in the real algorithm (skip the reader's re-validation,
//!   free retired snapshots without scanning the hazard slots, trust a
//!   cache tag without the verifier). The executor's mutation tests turn
//!   exactly one on and assert a violating schedule is found; under
//!   [`StdBackend`] the branch is `if false` and vanishes.
//! * [`Backend::trace_alloc`] / [`Backend::trace_free`] /
//!   [`Backend::check_acquire`] — pointer-lifecycle tracking. The
//!   executor keeps a freed-address registry so that a protocol bug
//!   surfaces as a caught violation ("reader acquired a freed snapshot")
//!   *before* the code would touch freed memory, instead of as silent
//!   undefined behaviour.
//!
//! `sack-analyze sync-lint` enforces that the protocol files use this
//! seam: any direct `std::sync::atomic` / `std::thread` / `Mutex` use in
//! the linted set outside this module fails CI, so executor coverage
//! cannot silently rot as the code evolves.

use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A known-bad mutation of one load-bearing ingredient of the lock-free
/// protocols. Production code consults [`Backend::mutation`] at the
/// exact point the ingredient acts; [`StdBackend`] answers `false` at
/// compile time, the executor backend answers from its run
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// `Rcu::read` acquires the announced pointer without re-validating
    /// that it is still current — the window in which a writer may
    /// already have retired and freed it.
    RcuSkipValidation,
    /// The `Rcu` writer frees every retired snapshot without scanning
    /// the hazard slots first.
    RcuFreeBeforeScan,
    /// `DecisionCache::lookup` trusts a tag match without checking the
    /// payload verifier — the check that makes cross-epoch tag
    /// collisions harmless.
    CacheSkipVerifier,
    /// A `ring::RingIn` producer that loses the tail claim CAS publishes
    /// anyway — writing its frame into a slot another producer already
    /// owns, so one of the two frames silently vanishes.
    RingTornPublish,
    /// A `LazySlot` first-touch builder skips the claim CAS: two racing
    /// compilers both build and publish, and the second publish frees
    /// the first value while a concurrent hook may be between its
    /// pointer load and its dereference.
    LazyDoublePublish,
}

/// Backend view of `AtomicUsize`.
pub trait RawAtomicUsize: Send + Sync + std::fmt::Debug {
    /// Creates the atomic with an initial value.
    fn new(v: usize) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> usize;
    /// Atomic store with the given ordering.
    fn store(&self, v: usize, order: Ordering);
    /// Atomic fetch-add returning the previous value.
    fn fetch_add(&self, v: usize, order: Ordering) -> usize;
    /// Atomic compare-exchange; `Ok(previous)` on success.
    #[allow(clippy::missing_errors_doc)]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize>;
}

/// Backend view of `AtomicU64`.
pub trait RawAtomicU64: Send + Sync + std::fmt::Debug {
    /// Creates the atomic with an initial value.
    fn new(v: u64) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store with the given ordering.
    fn store(&self, v: u64, order: Ordering);
    /// Atomic fetch-add returning the previous value.
    fn fetch_add(&self, v: u64, order: Ordering) -> u64;
}

/// Backend view of `AtomicPtr<T>`.
pub trait RawAtomicPtr<T>: Send + Sync {
    /// Creates the atomic with an initial pointer.
    fn new(p: *mut T) -> Self;
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> *mut T;
    /// Atomic store with the given ordering.
    fn store(&self, p: *mut T, order: Ordering);
    /// Atomic swap returning the previous pointer.
    fn swap(&self, p: *mut T, order: Ordering) -> *mut T;
    /// Atomic compare-exchange; `Ok(previous)` on success.
    #[allow(clippy::missing_errors_doc)]
    fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T>;
}

/// Backend view of `Mutex<T>`, exposed as a closure-scoped critical
/// section so an instrumented backend can mark both the lock and the
/// unlock as schedule points.
pub trait RawMutex<T: Send>: Send + Sync {
    /// Creates the mutex around an initial value.
    fn new(value: T) -> Self;
    /// Runs `f` with the lock held. Poisoning is swallowed (the
    /// protocol code treats a poisoned graveyard as still-valid data,
    /// exactly as the previous `unwrap_or_else(PoisonError::into_inner)`
    /// did).
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;
    /// Direct access through exclusive borrow (no locking needed).
    fn get_mut(&mut self) -> &mut T;
}

/// The compile-time seam every lock-free protocol in the tree is generic
/// over. See the module docs; [`StdBackend`] is the production instance.
pub trait Backend: Sized + Send + Sync + 'static {
    /// Backend `AtomicUsize`.
    type AtomicUsize: RawAtomicUsize;
    /// Backend `AtomicU64`.
    type AtomicU64: RawAtomicU64;
    /// Backend `AtomicPtr<T>`.
    type AtomicPtr<T>: RawAtomicPtr<T>;
    /// Backend `Mutex<T>`.
    type Mutex<T: Send>: RawMutex<T>;

    /// Dense id of the calling thread, used for hazard-slot and per-CPU
    /// instance selection. The first `HAZARD_SLOTS` (or `CPU_INSTANCES`)
    /// distinct threads get distinct values.
    fn thread_index() -> usize;

    /// Whether the known-bad mutation `m` is planted in this run.
    /// `false` at compile time for the production backend.
    #[inline(always)]
    #[must_use]
    fn mutation(_m: Mutation) -> bool {
        false
    }

    /// A heap snapshot was published (its address may have been reused).
    #[inline(always)]
    fn trace_alloc(_addr: usize) {}

    /// A heap snapshot is about to be freed.
    #[inline(always)]
    fn trace_free(_addr: usize) {}

    /// A reader is about to take a reference to `addr`. An instrumented
    /// backend panics here (aborting the schedule with a violation) if
    /// `addr` was freed and not re-allocated — the memory-safety check
    /// that would otherwise be undefined behaviour.
    #[inline(always)]
    fn check_acquire(_addr: usize) {}
}

/// The production backend: plain `std::sync` primitives, no
/// instrumentation, no mutations. All forwarding is `#[inline(always)]`
/// so monomorphised protocol code is identical to hand-written
/// `std::sync` code.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdBackend;

impl RawAtomicUsize for AtomicUsize {
    #[inline(always)]
    fn new(v: usize) -> Self {
        AtomicUsize::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> usize {
        AtomicUsize::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: usize, order: Ordering) {
        AtomicUsize::store(self, v, order);
    }
    #[inline(always)]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        AtomicUsize::fetch_add(self, v, order)
    }
    #[inline(always)]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        AtomicUsize::compare_exchange(self, current, new, success, failure)
    }
}

impl RawAtomicU64 for AtomicU64 {
    #[inline(always)]
    fn new(v: u64) -> Self {
        AtomicU64::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: u64, order: Ordering) {
        AtomicU64::store(self, v, order);
    }
    #[inline(always)]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, v, order)
    }
}

impl<T> RawAtomicPtr<T> for AtomicPtr<T> {
    #[inline(always)]
    fn new(p: *mut T) -> Self {
        AtomicPtr::new(p)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> *mut T {
        AtomicPtr::load(self, order)
    }
    #[inline(always)]
    fn store(&self, p: *mut T, order: Ordering) {
        AtomicPtr::store(self, p, order);
    }
    #[inline(always)]
    fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        AtomicPtr::swap(self, p, order)
    }
    #[inline(always)]
    fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        AtomicPtr::compare_exchange(self, current, new, success, failure)
    }
}

impl<T: Send> RawMutex<T> for Mutex<T> {
    #[inline(always)]
    fn new(value: T) -> Self {
        Mutex::new(value)
    }
    #[inline(always)]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut guard)
    }
    #[inline(always)]
    fn get_mut(&mut self) -> &mut T {
        Mutex::get_mut(self).unwrap_or_else(|p| p.into_inner())
    }
}

impl Backend for StdBackend {
    type AtomicUsize = AtomicUsize;
    type AtomicU64 = AtomicU64;
    type AtomicPtr<T> = AtomicPtr<T>;
    type Mutex<T: Send> = Mutex<T>;

    /// Hands each OS thread a stable dense id from a process-global
    /// counter, cached in a thread-local — the `smp_processor_id()`
    /// stand-in shared by hazard-slot selection and the per-CPU decision
    /// caches (on the simulated kernel a thread *is* a CPU).
    fn thread_index() -> usize {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        INDEX.with(|index| {
            if index.get() == usize::MAX {
                index.set(NEXT.fetch_add(1, Ordering::Relaxed));
            }
            index.get()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_backend_thread_index_is_stable_and_dense() {
        let first = StdBackend::thread_index();
        assert_eq!(StdBackend::thread_index(), first);
        let other = std::thread::spawn(StdBackend::thread_index).join().unwrap();
        assert_ne!(other, first, "each thread draws a distinct index");
    }

    #[test]
    fn std_backend_has_no_mutations() {
        assert!(!StdBackend::mutation(Mutation::RcuSkipValidation));
        assert!(!StdBackend::mutation(Mutation::RcuFreeBeforeScan));
        assert!(!StdBackend::mutation(Mutation::CacheSkipVerifier));
        assert!(!StdBackend::mutation(Mutation::RingTornPublish));
        assert!(!StdBackend::mutation(Mutation::LazyDoublePublish));
    }

    #[test]
    fn raw_mutex_with_gives_exclusive_access() {
        let m: Mutex<Vec<u32>> = RawMutex::new(vec![1]);
        let len = m.with(|v| {
            v.push(2);
            v.len()
        });
        assert_eq!(len, 2);
    }
}
