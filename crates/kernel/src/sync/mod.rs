//! Kernel-style synchronisation primitives.
//!
//! The centrepiece is [`Rcu`], a hand-rolled read-copy-update cell modelled
//! on the kernel's `rcu_dereference`/`rcu_assign_pointer` pattern (and on
//! userspace's `arc-swap`): readers take a snapshot of an `Arc<T>` without
//! ever acquiring a lock, while writers publish a replacement atomically and
//! reclaim the old snapshot only once no reader can still be dereferencing
//! it.
//!
//! This is what makes LSM hook dispatch lock-free on the read side: hot-path
//! hooks (`file_open`, `file_permission`) call [`Rcu::read`] — a handful of
//! uncontended atomic operations — instead of taking the `RwLock` that
//! policy reloads and SSM transitions would otherwise contend on.
//!
//! # The synchronisation shim
//!
//! Every primitive the protocol touches goes through the [`shim::Backend`]
//! seam instead of naming `std::sync` directly. `Rcu<T>` (the default
//! backend) monomorphises to exactly the `std::sync` code it used to be;
//! `Rcu<T, SchedBackend, N>` (from `sack-analyze`) runs the *same
//! statements* under a deterministic scheduler that enumerates bounded
//! thread interleavings, so the memory-ordering claims below are checked
//! against this very file rather than a hand-maintained transcription.
//! The hazard-slot count is a const parameter for the same reason: the
//! executor explores small-slot instances of the identical protocol.
//!
//! # Reclamation invariant (hazard announcements)
//!
//! Readers announce the pointer they are about to take in one of
//! [`HAZARD_SLOTS`] *hazard slots*, then re-validate that the pointer is
//! still current before touching its strong count. Writers retire the old
//! snapshot into a graveyard and free exactly the graveyard entries that are
//! **not announced in any slot** at scan time (the scan runs under the
//! writer mutex, after the retiring swap). This yields two guarantees:
//!
//! 1. **Safety.** A reader acquires a snapshot only after validating
//!    `current == announced` *while announced*. A writer frees a retired
//!    pointer only after the retiring swap and a scan that did not see it
//!    announced. If the reader's validation succeeded, either its
//!    announcement preceded the scan (the scan sees it → not freed) or its
//!    validating load ran after the swap (validation fails → the reader
//!    retries with the new pointer). Under the `SeqCst` total order, a freed
//!    pointer can therefore never be acquired.
//! 2. **Bounded graveyard.** After every reclamation pass, each surviving
//!    graveyard entry is announced in some slot, so the graveyard never
//!    holds more than [`HAZARD_SLOTS`] retired snapshots — even under a
//!    reader that is stalled inside [`Rcu::read`] forever. A stuck reader
//!    pins at most the single snapshot it announced. (The previous
//!    reader-counter design deferred *all* reclamation while any reader was
//!    pinned, so one stuck reader grew the graveyard without bound.)
//!
//! ABA on the validating load is benign: if a freed address is reused by a
//! newer snapshot that is current again, the reader acquires that newer,
//! live snapshot — address equality implies liveness here, not staleness.

pub mod lazy;
pub mod shim;

use std::fmt;
use std::ptr;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

pub use lazy::LazySlot;
pub use shim::{Backend, Mutation, StdBackend};
use shim::{RawAtomicPtr, RawAtomicUsize, RawMutex};

/// Number of hazard announcement slots per cell — the maximum number of
/// readers that can be simultaneously inside the pointer-load window of
/// [`Rcu::read`] without falling back to the writer mutex, and the upper
/// bound on retired-but-unreclaimed snapshots.
pub const HAZARD_SLOTS: usize = 64;

/// A read-copy-update cell holding an `Arc<T>` snapshot.
///
/// * [`read`](Rcu::read) is lock-free: it claims a hazard slot, announces
///   the snapshot pointer, validates it is still current, and returns an
///   owned `Arc<T>`. Readers never block writers; a reader retries its
///   validation only when a writer published in the middle of its window.
///   If all `SLOTS` slots are occupied the reader falls back to a brief
///   acquisition of the writer mutex (which also makes the snapshot
///   stable), so `read` succeeds under any load.
/// * [`store`](Rcu::store) / [`update`](Rcu::update) serialise writers on an
///   internal mutex, swap the snapshot pointer atomically, and *retire* the
///   previous snapshot instead of dropping it inline. Each writer then
///   scans the hazard slots and frees every retired snapshot that no reader
///   has announced — see the module docs for the invariant.
///
/// Readers that already hold a returned `Arc<T>` keep it alive through its
/// own strong count; hazard announcements only protect the pointer-load
/// window inside [`read`] itself.
///
/// The `B` parameter selects the synchronisation backend ([`StdBackend`]
/// in production, the deterministic executor in `sack-analyze`); `SLOTS`
/// sizes the hazard array ([`HAZARD_SLOTS`] in production, small values
/// under exhaustive schedule exploration).
pub struct Rcu<T, B: Backend = StdBackend, const SLOTS: usize = HAZARD_SLOTS> {
    /// Current snapshot, produced by `Arc::into_raw`. Never null.
    current: B::AtomicPtr<T>,
    /// Hazard announcement slots. Null = free; non-null = some reader is
    /// inside its load window and may be about to take this pointer.
    hazards: [B::AtomicPtr<T>; SLOTS],
    /// Serialises writers; holds snapshots retired while still announced in
    /// a hazard slot, awaiting a later writer's scan (or `Drop`). Entries
    /// are `*const T` addresses stored as `usize` so the mutex payload
    /// stays `Send` without a pointer-wrapper type.
    writer: B::Mutex<Vec<usize>>,
    /// Count of snapshots swapped in over the cell's lifetime (telemetry
    /// for tests and stats dumps; the initial value counts as 0).
    generation: B::AtomicUsize,
}

// SAFETY: `Rcu<T>` shares `T` across threads exactly like `Arc<T>` does, so
// it inherits `Arc`'s bounds: `T` must be `Send + Sync` for the cell to be
// either. The backend primitives are `Send + Sync` by their trait bounds.
unsafe impl<T: Send + Sync, B: Backend, const SLOTS: usize> Send for Rcu<T, B, SLOTS> {}
unsafe impl<T: Send + Sync, B: Backend, const SLOTS: usize> Sync for Rcu<T, B, SLOTS> {}

impl<T> Rcu<T> {
    /// Creates a production-backend cell with an initial snapshot of
    /// `value`.
    pub fn new(value: T) -> Rcu<T> {
        Rcu::new_in(value)
    }

    /// Creates a production-backend cell from an existing `Arc` snapshot.
    pub fn from_arc(value: Arc<T>) -> Rcu<T> {
        Rcu::from_arc_in(value)
    }
}

impl<T, B: Backend, const SLOTS: usize> Rcu<T, B, SLOTS> {
    /// Creates a cell with an initial snapshot of `value` on backend `B`.
    pub fn new_in(value: T) -> Rcu<T, B, SLOTS> {
        Rcu::from_arc_in(Arc::new(value))
    }

    /// Creates a cell from an existing `Arc` snapshot on backend `B`.
    pub fn from_arc_in(value: Arc<T>) -> Rcu<T, B, SLOTS> {
        let initial = Arc::into_raw(value) as *mut T;
        B::trace_alloc(initial as usize);
        Rcu {
            current: RawAtomicPtr::new(initial),
            hazards: std::array::from_fn(|_| RawAtomicPtr::new(ptr::null_mut())),
            writer: RawMutex::new(Vec::new()),
            generation: RawAtomicUsize::new(0),
        }
    }

    /// Returns the current snapshot. Lock-free: claims a hazard slot,
    /// announces the pointer, validates it is still current, and bumps its
    /// strong count — no locks unless every slot is occupied.
    pub fn read(&self) -> Arc<T> {
        let start = B::thread_index() % SLOTS;
        for i in 0..SLOTS {
            let slot = &self.hazards[(start + i) % SLOTS];
            let mut p = self.current.load(SeqCst);
            // Claim the slot by announcing the pointer we intend to take.
            // A failed exchange means another reader owns this slot.
            if slot
                .compare_exchange(ptr::null_mut(), p, SeqCst, SeqCst)
                .is_err()
            {
                continue;
            }
            if B::mutation(Mutation::RcuSkipValidation) {
                // Planted bug (executor-only): trust the announcement
                // without re-validating that the pointer is still current.
                // A writer that scanned before our announcement landed may
                // already have freed `p`.
                B::check_acquire(p as usize);
                // SAFETY: unsound by construction — this arm exists to be
                // caught by the schedule executor (via `check_acquire`)
                // before the count bump can touch freed memory.
                unsafe { Arc::increment_strong_count(p) };
                slot.store(ptr::null_mut(), SeqCst);
                // SAFETY: we own the strong count incremented above.
                return unsafe { Arc::from_raw(p) };
            }
            loop {
                // Validate *after* announcing: if the pointer is still
                // current, no writer scan can have missed our announcement
                // before retiring it (see module docs).
                let cur = self.current.load(SeqCst);
                if cur == p {
                    B::check_acquire(p as usize);
                    // SAFETY: `p` is announced and validated current, so no
                    // writer has freed it (writers free only unannounced
                    // retired pointers); its strong count is still owned by
                    // the cell or its graveyard.
                    unsafe { Arc::increment_strong_count(p) };
                    slot.store(ptr::null_mut(), SeqCst);
                    // SAFETY: we own the strong count incremented above.
                    return unsafe { Arc::from_raw(p) };
                }
                // A writer published meanwhile; re-announce the new pointer
                // and validate again.
                p = cur;
                slot.store(p, SeqCst);
            }
        }
        // Every slot is occupied by an in-flight reader: fall back to the
        // writer mutex. Writers swap and reclaim only under this mutex, so
        // while we hold it the current snapshot cannot be retired.
        self.writer.with(|_graveyard| {
            let p = self.current.load(SeqCst);
            B::check_acquire(p as usize);
            // SAFETY: the writer mutex is held, so `p` is current and its
            // strong count is owned by the cell.
            unsafe { Arc::increment_strong_count(p) };
            // SAFETY: we own the strong count incremented above.
            unsafe { Arc::from_raw(p) }
        })
    }

    /// Publishes `value` as the new snapshot.
    pub fn store(&self, value: T) {
        self.store_arc(Arc::new(value));
    }

    /// Publishes an existing `Arc` as the new snapshot.
    pub fn store_arc(&self, value: Arc<T>) {
        let fresh = Arc::into_raw(value) as *mut T;
        B::trace_alloc(fresh as usize);
        let unprotected = self.writer.with(|graveyard| {
            let old = self.current.swap(fresh, SeqCst);
            self.generation.fetch_add(1, SeqCst);
            graveyard.push(old as usize);
            self.take_unprotected(graveyard)
        });
        // Drop outside the lock: `T::drop` may be arbitrary user code (it
        // could even call `read` on this very cell's fallback path).
        for p in unprotected {
            B::trace_free(p);
            // SAFETY: each retired pointer owns exactly the one strong count
            // transferred by `Arc::into_raw` at publish time, and the scan
            // above proved no reader announced it after it was retired.
            unsafe { drop(Arc::from_raw(p as *const T)) };
        }
    }

    /// Read-copy-update: builds a replacement from the current snapshot and
    /// publishes it. The closure runs under the writer lock, so concurrent
    /// `update`s serialise and never lose each other's changes; readers are
    /// unaffected and see either the old or the new snapshot.
    pub fn update<R>(&self, f: impl FnOnce(&T) -> (T, R)) -> R {
        let (out, unprotected) = self.writer.with(|graveyard| {
            // SAFETY: the writer lock is held, so no other writer can retire
            // the current pointer while we borrow it.
            let cur = unsafe { &*self.current.load(SeqCst) };
            let (next, out) = f(cur);
            let fresh = Arc::into_raw(Arc::new(next)) as *mut T;
            B::trace_alloc(fresh as usize);
            let old = self.current.swap(fresh, SeqCst);
            self.generation.fetch_add(1, SeqCst);
            graveyard.push(old as usize);
            (out, self.take_unprotected(graveyard))
        });
        for p in unprotected {
            B::trace_free(p);
            // SAFETY: as in `store_arc`.
            unsafe { drop(Arc::from_raw(p as *const T)) };
        }
        out
    }

    /// Number of snapshot swaps since the cell was created.
    pub fn generation(&self) -> usize {
        self.generation.load(SeqCst)
    }

    /// Number of retired snapshots awaiting reclamation. Bounded by
    /// `SLOTS` after every write — telemetry for tests and stats.
    pub fn retired_count(&self) -> usize {
        self.writer.with(|graveyard| graveyard.len())
    }

    /// Splits the graveyard into entries announced in some hazard slot
    /// (kept) and the rest (returned for the caller to free outside the
    /// lock). Must be called with the writer lock held, after the swap that
    /// retired the newest entry.
    fn take_unprotected(&self, graveyard: &mut Vec<usize>) -> Vec<usize> {
        let announced: Vec<usize> = if B::mutation(Mutation::RcuFreeBeforeScan) {
            // Planted bug (executor-only): free every retiree without
            // scanning the hazard slots — a reader mid-window loses the
            // snapshot it announced.
            Vec::new()
        } else {
            self.hazards
                .iter()
                .map(|slot| slot.load(SeqCst) as usize)
                .filter(|p| *p != 0)
                .collect()
        };
        let mut unprotected = Vec::new();
        graveyard.retain(|p| {
            if announced.contains(p) {
                true
            } else {
                unprotected.push(*p);
                false
            }
        });
        // The reclamation invariant: everything still retired is announced.
        debug_assert!(
            B::mutation(Mutation::RcuFreeBeforeScan) || graveyard.len() <= SLOTS,
            "graveyard exceeded hazard-slot bound: {} > {SLOTS}",
            graveyard.len()
        );
        unprotected
    }

    /// Test hook: performs the announce-and-validate half of [`read`]
    /// without taking a snapshot, simulating a reader stalled inside its
    /// load window forever. Returns the claimed slot index.
    #[cfg(test)]
    fn test_pin_current(&self) -> usize {
        loop {
            for (i, slot) in self.hazards.iter().enumerate() {
                let p = self.current.load(SeqCst);
                if slot
                    .compare_exchange(ptr::null_mut(), p, SeqCst, SeqCst)
                    .is_ok()
                {
                    if self.current.load(SeqCst) == p {
                        return i;
                    }
                    slot.store(ptr::null_mut(), SeqCst);
                }
            }
        }
    }

    /// Test hook: releases a slot claimed by [`Rcu::test_pin_current`].
    #[cfg(test)]
    fn test_unpin(&self, slot: usize) {
        self.hazards[slot].store(ptr::null_mut(), SeqCst);
    }
}

impl<T: Default> Default for Rcu<T> {
    fn default() -> Rcu<T> {
        Rcu::new(T::default())
    }
}

impl<T: fmt::Debug, B: Backend, const SLOTS: usize> fmt::Debug for Rcu<T, B, SLOTS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rcu")
            .field("value", &self.read())
            .field("generation", &self.generation())
            .finish()
    }
}

impl<T, B: Backend, const SLOTS: usize> Drop for Rcu<T, B, SLOTS> {
    fn drop(&mut self) {
        // `&mut self` proves no thread is inside `read` (that would require
        // a live `&self` borrow), so no hazard slot is owned by a reader and
        // both the graveyard and the current snapshot can be released
        // unconditionally.
        for ptr in self.writer.get_mut().drain(..) {
            B::trace_free(ptr);
            // SAFETY: each retired pointer owns one strong count and no
            // readers exist.
            unsafe { drop(Arc::from_raw(ptr as *const T)) };
        }
        let current = self.current.load(SeqCst);
        B::trace_free(current as usize);
        // SAFETY: the current pointer owns the strong count transferred at
        // publish (or construction) time.
        unsafe { drop(Arc::from_raw(current)) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn read_returns_latest_store() {
        let cell = Rcu::new(1);
        assert_eq!(*cell.read(), 1);
        cell.store(2);
        assert_eq!(*cell.read(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn update_serialises_writers() {
        let cell = Arc::new(Rcu::new(0usize));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        cell.update(|v| (v + 1, ()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*cell.read(), 8000);
        assert_eq!(cell.generation(), 8000);
    }

    #[test]
    fn concurrent_readers_and_writers_stress() {
        let cell = Arc::new(Rcu::new(vec![0u64; 16]));
        let stop = Arc::new(AtomicUsize::new(0));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0;
                    while stop.load(SeqCst) == 0 {
                        let snap = cell.read();
                        // Every snapshot is internally consistent: all
                        // elements equal (writers publish uniform vectors).
                        assert!(snap.iter().all(|&x| x == snap[0]));
                        // Snapshots are monotone: we never observe an older
                        // vector after a newer one.
                        assert!(snap[0] >= last);
                        last = snap[0];
                    }
                })
            })
            .collect();

        let writers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..2000u64 {
                        // Read-modify-write under the writer lock: publish
                        // order equals value order, so the published
                        // sequence is globally monotone even with two
                        // racing writers (independent `store`s would not
                        // be — each writer's counter races the other's).
                        cell.update(|old| (vec![old[0] + 1; 16], ()));
                    }
                })
            })
            .collect();

        for t in writers {
            t.join().unwrap();
        }
        stop.store(1, SeqCst);
        for t in readers {
            t.join().unwrap();
        }
    }

    struct Counted(Arc<AtomicUsize>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn retired_snapshots_are_reclaimed() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Rcu::new(Counted(Arc::clone(&drops)));
        for _ in 0..100 {
            cell.store(Counted(Arc::clone(&drops)));
        }
        // With no pinned readers every retired snapshot is reclaimed by the
        // next store; at most the current value is still alive.
        assert_eq!(drops.load(SeqCst), 100);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 101);
    }

    #[test]
    fn graveyard_is_bounded_under_a_reader_that_never_unpins() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Rcu::new(Counted(Arc::clone(&drops)));
        // A reader stalled inside `read` forever: it announced the current
        // snapshot and will never clear its hazard slot.
        let slot = cell.test_pin_current();

        for _ in 0..1000 {
            cell.store(Counted(Arc::clone(&drops)));
        }
        // Only the announced snapshot survives in the graveyard; every
        // other retired snapshot was reclaimed despite the stuck reader.
        assert_eq!(cell.retired_count(), 1);
        assert_eq!(drops.load(SeqCst), 999);

        // Once the reader finally goes away, the next write drains it.
        cell.test_unpin(slot);
        cell.store(Counted(Arc::clone(&drops)));
        assert_eq!(cell.retired_count(), 0);
        assert_eq!(drops.load(SeqCst), 1001);
    }

    #[test]
    fn read_falls_back_when_every_hazard_slot_is_occupied() {
        let cell = Rcu::new(7u32);
        let slots: Vec<usize> = (0..HAZARD_SLOTS).map(|_| cell.test_pin_current()).collect();
        assert_eq!(slots.len(), HAZARD_SLOTS);

        // All slots busy: `read` takes the mutex fallback and still works,
        // before and after a store.
        assert_eq!(*cell.read(), 7);
        cell.store(8);
        assert_eq!(*cell.read(), 8);

        for slot in slots {
            cell.test_unpin(slot);
        }
    }

    #[test]
    fn held_snapshot_survives_store_and_drop_of_cell() {
        let cell = Rcu::new(String::from("old"));
        let snap = cell.read();
        cell.store(String::from("new"));
        drop(cell);
        assert_eq!(*snap, "old");
    }

    #[test]
    fn small_slot_instantiation_runs_the_same_protocol() {
        // The executor explores `Rcu<T, SchedBackend, 2>`; prove the
        // 2-slot instantiation behaves on the production backend too.
        let cell: Rcu<u32, StdBackend, 2> = Rcu::new_in(5);
        assert_eq!(*cell.read(), 5);
        cell.store(6);
        assert_eq!(*cell.read(), 6);
        assert_eq!(cell.retired_count(), 0);
        assert_eq!(cell.generation(), 1);
    }
}
