//! Simulated monotonic clock.
//!
//! Benchmarks that sweep situation-state *transition frequency* (paper
//! Fig. 3b) need a controllable notion of time: tests and benches advance
//! [`SimClock`] explicitly, so "a transition every 1000 ms" is deterministic
//! and independent of host scheduling.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically advancing simulated clock (nanosecond resolution).
#[derive(Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    /// Advances the clock by `dt` and returns the new time.
    pub fn advance(&self, dt: Duration) -> Duration {
        let nanos = u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX);
        let new = self
            .nanos
            .fetch_add(nanos, Ordering::AcqRel)
            .saturating_add(nanos);
        Duration::from_nanos(new)
    }

    /// Sets the clock to an absolute time, which must not move backwards.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn set(&self, t: Duration) {
        let nanos = u64::try_from(t.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.nanos.swap(nanos, Ordering::AcqRel);
        assert!(nanos >= prev, "SimClock must be monotonic");
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimClock({:?})", self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.advance(Duration::from_micros(1));
        assert_eq!(clock.now(), Duration::from_micros(5001));
    }

    #[test]
    fn set_moves_forward() {
        let clock = SimClock::new();
        clock.set(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn set_backwards_panics() {
        let clock = SimClock::new();
        clock.set(Duration::from_secs(2));
        clock.set(Duration::from_secs(1));
    }
}
