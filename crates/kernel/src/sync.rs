//! Kernel-style synchronisation primitives.
//!
//! The centrepiece is [`Rcu`], a hand-rolled read-copy-update cell modelled
//! on the kernel's `rcu_dereference`/`rcu_assign_pointer` pattern (and on
//! userspace's `arc-swap`): readers take a snapshot of an `Arc<T>` without
//! ever acquiring a lock, while writers publish a replacement atomically and
//! reclaim the old snapshot only after a grace period in which no reader can
//! still be dereferencing it.
//!
//! This is what makes LSM hook dispatch wait-free on the read side: hot-path
//! hooks (`file_open`, `file_permission`) call [`Rcu::read`] — two atomic
//! RMWs and an atomic load — instead of taking the `RwLock` that policy
//! reloads and SSM transitions would otherwise contend on.

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A read-copy-update cell holding an `Arc<T>` snapshot.
///
/// * [`read`](Rcu::read) is wait-free and lock-free: it pins the current
///   snapshot with a reader counter, bumps its strong count, and returns an
///   owned `Arc<T>`. No reader ever blocks a writer or another reader.
/// * [`store`](Rcu::store) / [`update`](Rcu::update) serialise writers on an
///   internal mutex, swap the snapshot pointer atomically, and *retire* the
///   previous snapshot instead of dropping it inline. Retired snapshots are
///   reclaimed once a writer observes the reader counter at zero **after**
///   the swap — the moment no thread can still be between "loaded the old
///   pointer" and "bumped its strong count" (the grace period).
///
/// Readers that already hold a returned `Arc<T>` keep it alive through its
/// own strong count; the grace period only protects the pointer-load window
/// inside [`read`] itself.
pub struct Rcu<T> {
    /// Current snapshot, produced by `Arc::into_raw`. Never null.
    current: AtomicPtr<T>,
    /// Number of readers inside the load window of [`Rcu::read`].
    readers: AtomicUsize,
    /// Serialises writers; holds snapshots retired while readers were
    /// pinned, awaiting a quiescent state.
    writer: Mutex<Vec<*const T>>,
    /// Count of snapshots swapped in over the cell's lifetime (telemetry
    /// for tests and stats dumps; the initial value counts as 0).
    generation: AtomicUsize,
}

// SAFETY: `Rcu<T>` shares `T` across threads exactly like `Arc<T>` does, so
// it inherits `Arc`'s bounds: `T` must be `Send + Sync` for the cell to be
// either.
unsafe impl<T: Send + Sync> Send for Rcu<T> {}
unsafe impl<T: Send + Sync> Sync for Rcu<T> {}

impl<T> Rcu<T> {
    /// Creates a cell with an initial snapshot of `value`.
    pub fn new(value: T) -> Rcu<T> {
        Rcu::from_arc(Arc::new(value))
    }

    /// Creates a cell from an existing `Arc` snapshot.
    pub fn from_arc(value: Arc<T>) -> Rcu<T> {
        Rcu {
            current: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            readers: AtomicUsize::new(0),
            writer: Mutex::new(Vec::new()),
            generation: AtomicUsize::new(0),
        }
    }

    /// Returns the current snapshot. Wait-free: two atomic RMWs and one
    /// atomic load, no locks, regardless of concurrent writers.
    pub fn read(&self) -> Arc<T> {
        // Pin: a writer that swaps the pointer after this increment cannot
        // reclaim the snapshot we are about to load until we unpin.
        self.readers.fetch_add(1, SeqCst);
        let ptr = self.current.load(SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and its strong count is
        // held by the cell (or its graveyard) — reclamation is deferred
        // while `readers > 0`, so the count cannot reach zero here.
        unsafe { Arc::increment_strong_count(ptr) };
        self.readers.fetch_sub(1, SeqCst);
        // SAFETY: we own the strong count incremented above.
        unsafe { Arc::from_raw(ptr) }
    }

    /// Publishes `value` as the new snapshot.
    pub fn store(&self, value: T) {
        self.store_arc(Arc::new(value));
    }

    /// Publishes an existing `Arc` as the new snapshot.
    pub fn store_arc(&self, value: Arc<T>) {
        let mut graveyard = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        let old = self.current.swap(Arc::into_raw(value) as *mut T, SeqCst);
        self.generation.fetch_add(1, SeqCst);
        graveyard.push(old as *const T);
        self.reclaim(&mut graveyard);
    }

    /// Read-copy-update: builds a replacement from the current snapshot and
    /// publishes it. The closure runs under the writer lock, so concurrent
    /// `update`s serialise and never lose each other's changes; readers are
    /// unaffected and see either the old or the new snapshot.
    pub fn update<R>(&self, f: impl FnOnce(&T) -> (T, R)) -> R {
        let mut graveyard = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        // SAFETY: the writer lock is held, so no other writer can retire the
        // current pointer while we borrow it.
        let cur = unsafe { &*self.current.load(SeqCst) };
        let (next, out) = f(cur);
        let old = self.current.swap(Arc::into_raw(Arc::new(next)) as *mut T, SeqCst);
        self.generation.fetch_add(1, SeqCst);
        graveyard.push(old as *const T);
        self.reclaim(&mut graveyard);
        out
    }

    /// Number of snapshot swaps since the cell was created.
    pub fn generation(&self) -> usize {
        self.generation.load(SeqCst)
    }

    /// Drops retired snapshots if the grace period has elapsed.
    ///
    /// Called with the writer lock held, after the swap that retired the
    /// newest entry. If `readers == 0` *now*, every in-flight `read` began
    /// after some swap already made the retired pointers unreachable, so no
    /// reader can still be inside the load window holding one of them.
    /// Otherwise the pointers stay in the graveyard for a later writer (or
    /// `Drop`) to reclaim — reclamation is deferred, never unsafe.
    fn reclaim(&self, graveyard: &mut Vec<*const T>) {
        if self.readers.load(SeqCst) == 0 {
            for ptr in graveyard.drain(..) {
                // SAFETY: retired pointers each own exactly the one strong
                // count transferred by `Arc::into_raw` at publish time, and
                // no reader is pinned (checked above) nor can newly pin them
                // (they were swapped out before entering the graveyard).
                unsafe { drop(Arc::from_raw(ptr)) };
            }
        }
    }
}

impl<T: Default> Default for Rcu<T> {
    fn default() -> Rcu<T> {
        Rcu::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Rcu<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rcu")
            .field("value", &self.read())
            .field("generation", &self.generation())
            .finish()
    }
}

impl<T> Drop for Rcu<T> {
    fn drop(&mut self) {
        // `&mut self` proves no thread is inside `read` (that would require
        // a live `&self` borrow), so both the graveyard and the current
        // snapshot can be released unconditionally.
        let graveyard = self.writer.get_mut().unwrap_or_else(|p| p.into_inner());
        for ptr in graveyard.drain(..) {
            // SAFETY: as in `reclaim`, each retired pointer owns one strong
            // count and no readers exist.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
        // SAFETY: the current pointer owns the strong count transferred at
        // publish (or construction) time.
        unsafe { drop(Arc::from_raw(self.current.load(SeqCst))) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn read_returns_latest_store() {
        let cell = Rcu::new(1);
        assert_eq!(*cell.read(), 1);
        cell.store(2);
        assert_eq!(*cell.read(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn update_serialises_writers() {
        let cell = Arc::new(Rcu::new(0usize));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        cell.update(|v| (v + 1, ()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*cell.read(), 8000);
        assert_eq!(cell.generation(), 8000);
    }

    #[test]
    fn concurrent_readers_and_writers_stress() {
        let cell = Arc::new(Rcu::new(vec![0u64; 16]));
        let stop = Arc::new(AtomicUsize::new(0));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0;
                    while stop.load(SeqCst) == 0 {
                        let snap = cell.read();
                        // Every snapshot is internally consistent: all
                        // elements equal (writers publish uniform vectors).
                        assert!(snap.iter().all(|&x| x == snap[0]));
                        // Snapshots are monotone: we never observe an older
                        // vector after a newer one.
                        assert!(snap[0] >= last);
                        last = snap[0];
                    }
                })
            })
            .collect();

        let writers: Vec<_> = (0..2)
            .map(|w| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for i in 0..2000u64 {
                        cell.store(vec![i * 2 + w; 16]);
                    }
                })
            })
            .collect();

        for t in writers {
            t.join().unwrap();
        }
        stop.store(1, SeqCst);
        for t in readers {
            t.join().unwrap();
        }
    }

    #[test]
    fn retired_snapshots_are_reclaimed() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Rcu::new(Counted(Arc::clone(&drops)));
        for _ in 0..100 {
            cell.store(Counted(Arc::clone(&drops)));
        }
        // With no pinned readers every retired snapshot is reclaimed by the
        // next store; at most the current value is still alive.
        assert_eq!(drops.load(SeqCst), 100);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 101);
    }

    #[test]
    fn held_snapshot_survives_store_and_drop_of_cell() {
        let cell = Rcu::new(String::from("old"));
        let snap = cell.read();
        cell.store(String::from("new"));
        drop(cell);
        assert_eq!(*snap, "old");
    }
}
