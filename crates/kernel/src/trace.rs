//! # sack-trace — kernel-style static tracepoints
//!
//! Compiled-in probe points modelled on the Linux tracepoint machinery
//! (`include/linux/tracepoint.h`): every probe site is guarded by a single
//! **relaxed atomic load + branch**, so with tracing disabled the entire
//! subsystem costs one predictable-not-taken branch per probe. Consumers
//! attach dynamically at runtime — the moral equivalent of
//! `register_trace_sys_enter()` — and receive every [`TraceEvent`]
//! synchronously on the emitting thread, in program order.
//!
//! The hub deliberately does **not** buffer, aggregate or render anything:
//! histograms, the flight recorder and the securityfs/Prometheus exports all
//! live in `sack-core` as registered callbacks. This keeps the kernel layer
//! dependency-free and lets benches attach alternative consumers.
//!
//! Event taxonomy (one [`Tracepoint`] per kind):
//!
//! | tracepoint          | fires when                                             |
//! |---------------------|--------------------------------------------------------|
//! | `hook_enter`        | an LSM hook dispatch starts                            |
//! | `hook_exit`         | an LSM hook dispatch finishes (carries verdict+latency)|
//! | `cache_hit`         | a decision-cache lookup hits                           |
//! | `cache_miss`        | a decision-cache lookup misses                         |
//! | `cache_invalidate`  | the policy epoch bump invalidates all cached decisions |
//! | `ssm_transition`    | the situation state machine changes state              |
//! | `policy_publish`    | a new `ActivePolicy` is published over RCU             |
//! | `rcu_epoch_bump`    | the global policy epoch counter is incremented         |
//! | `profile_recompile` | an AppArmor profile is (re)compiled to its DFA         |
//! | `audit_emit`        | a record is appended to the audit ring                 |
//! | `sds_enqueue`       | a sensor frame is enqueued into the submission ring    |
//! | `sds_drain`         | a ring drain batch completes (batch size + transitions)|
//! | `sds_coalesce`      | ≥2 frames collapsed into one SSM delivery in a drain   |
//! | `sds_backpressure`  | the ring-full policy engaged (block or drop-oldest)    |
//! | `fleet_rollout_begin`    | a staged fleet policy rollout started             |
//! | `fleet_rollout_push`     | the candidate policy was pushed to a cohort       |
//! | `fleet_rollout_promote`  | a cohort soaked green and was promoted            |
//! | `fleet_rollout_rollback` | an alert rolled the fleet back to the prior policy|
//! | `fleet_rollout_complete` | the rollout finished (promoted or rolled back)    |

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Identifies an LSM hook in trace events and latency histograms.
///
/// Mirrors the dispatch surface of [`crate::lsm::LsmStack`]; notification
/// hooks (`bprm_committed`, `task_free`) are traced too, always with an
/// `Allow` verdict since they cannot deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceHook {
    /// `file_open`.
    FileOpen,
    /// `file_permission`.
    FilePermission,
    /// `file_ioctl`.
    FileIoctl,
    /// `file_mmap`.
    FileMmap,
    /// `inode_create`.
    InodeCreate,
    /// `inode_unlink`.
    InodeUnlink,
    /// `inode_rename`.
    InodeRename,
    /// `inode_getattr`.
    InodeGetattr,
    /// `bprm_check`.
    BprmCheck,
    /// `bprm_committed` (notification).
    BprmCommitted,
    /// `task_alloc`.
    TaskAlloc,
    /// `task_free` (notification).
    TaskFree,
    /// `capable`.
    Capable,
    /// `socket_create`.
    SocketCreate,
    /// `socket_connect`.
    SocketConnect,
}

impl TraceHook {
    /// Every hook, in dispatch-table order. Index with [`TraceHook::index`].
    pub const ALL: [TraceHook; 15] = [
        TraceHook::FileOpen,
        TraceHook::FilePermission,
        TraceHook::FileIoctl,
        TraceHook::FileMmap,
        TraceHook::InodeCreate,
        TraceHook::InodeUnlink,
        TraceHook::InodeRename,
        TraceHook::InodeGetattr,
        TraceHook::BprmCheck,
        TraceHook::BprmCommitted,
        TraceHook::TaskAlloc,
        TraceHook::TaskFree,
        TraceHook::Capable,
        TraceHook::SocketCreate,
        TraceHook::SocketConnect,
    ];

    /// Dense index into [`TraceHook::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The hook's LSM name (`file_open`, ...).
    pub fn name(self) -> &'static str {
        match self {
            TraceHook::FileOpen => "file_open",
            TraceHook::FilePermission => "file_permission",
            TraceHook::FileIoctl => "file_ioctl",
            TraceHook::FileMmap => "file_mmap",
            TraceHook::InodeCreate => "inode_create",
            TraceHook::InodeUnlink => "inode_unlink",
            TraceHook::InodeRename => "inode_rename",
            TraceHook::InodeGetattr => "inode_getattr",
            TraceHook::BprmCheck => "bprm_check",
            TraceHook::BprmCommitted => "bprm_committed",
            TraceHook::TaskAlloc => "task_alloc",
            TraceHook::TaskFree => "task_free",
            TraceHook::Capable => "capable",
            TraceHook::SocketCreate => "socket_create",
            TraceHook::SocketConnect => "socket_connect",
        }
    }

    /// Parses the LSM name produced by [`TraceHook::name`].
    pub fn from_name(name: &str) -> Option<TraceHook> {
        TraceHook::ALL.into_iter().find(|h| h.name() == name)
    }
}

impl fmt::Display for TraceHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of a hook dispatch as seen by `hook_exit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceVerdict {
    /// Every stacked module allowed the operation.
    Allow,
    /// Some module denied (first-deny-wins).
    Deny,
}

impl TraceVerdict {
    /// Stable lowercase label (`allow` / `deny`).
    pub fn name(self) -> &'static str {
        match self {
            TraceVerdict::Allow => "allow",
            TraceVerdict::Deny => "deny",
        }
    }

    /// Dense index (Allow = 0, Deny = 1).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for TraceVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The static tracepoint kinds, one per probe site family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tracepoint {
    /// LSM hook dispatch entry.
    HookEnter,
    /// LSM hook dispatch exit (verdict + latency).
    HookExit,
    /// Decision-cache hit.
    CacheHit,
    /// Decision-cache miss.
    CacheMiss,
    /// Epoch bump invalidated all cached decisions.
    CacheInvalidate,
    /// Situation state machine transition.
    SsmTransition,
    /// New active policy published.
    PolicyPublish,
    /// Policy epoch counter bumped.
    RcuEpochBump,
    /// AppArmor profile (re)compiled.
    ProfileRecompile,
    /// Audit record appended.
    AuditEmit,
    /// Sensor frame enqueued into the SDS submission ring.
    SdsEnqueue,
    /// SDS ring drain batch completed.
    SdsDrain,
    /// Multiple frames coalesced into one SSM delivery during a drain.
    SdsCoalesce,
    /// Ring-full backpressure policy engaged.
    SdsBackpressure,
    /// A staged fleet policy rollout started.
    FleetRolloutBegin,
    /// The candidate policy was pushed to a cohort.
    FleetRolloutPush,
    /// A cohort soaked green and was promoted.
    FleetRolloutPromote,
    /// A detector alert rolled upgraded cohorts back to the prior policy.
    FleetRolloutRollback,
    /// The rollout finished, promoted fleet-wide or rolled back.
    FleetRolloutComplete,
}

impl Tracepoint {
    /// Every tracepoint, in declaration order.
    pub const ALL: [Tracepoint; 19] = [
        Tracepoint::HookEnter,
        Tracepoint::HookExit,
        Tracepoint::CacheHit,
        Tracepoint::CacheMiss,
        Tracepoint::CacheInvalidate,
        Tracepoint::SsmTransition,
        Tracepoint::PolicyPublish,
        Tracepoint::RcuEpochBump,
        Tracepoint::ProfileRecompile,
        Tracepoint::AuditEmit,
        Tracepoint::SdsEnqueue,
        Tracepoint::SdsDrain,
        Tracepoint::SdsCoalesce,
        Tracepoint::SdsBackpressure,
        Tracepoint::FleetRolloutBegin,
        Tracepoint::FleetRolloutPush,
        Tracepoint::FleetRolloutPromote,
        Tracepoint::FleetRolloutRollback,
        Tracepoint::FleetRolloutComplete,
    ];

    /// Dense index into [`Tracepoint::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, as shown in `tracing/events`.
    pub fn name(self) -> &'static str {
        match self {
            Tracepoint::HookEnter => "hook_enter",
            Tracepoint::HookExit => "hook_exit",
            Tracepoint::CacheHit => "cache_hit",
            Tracepoint::CacheMiss => "cache_miss",
            Tracepoint::CacheInvalidate => "cache_invalidate",
            Tracepoint::SsmTransition => "ssm_transition",
            Tracepoint::PolicyPublish => "policy_publish",
            Tracepoint::RcuEpochBump => "rcu_epoch_bump",
            Tracepoint::ProfileRecompile => "profile_recompile",
            Tracepoint::AuditEmit => "audit_emit",
            Tracepoint::SdsEnqueue => "sds_enqueue",
            Tracepoint::SdsDrain => "sds_drain",
            Tracepoint::SdsCoalesce => "sds_coalesce",
            Tracepoint::SdsBackpressure => "sds_backpressure",
            Tracepoint::FleetRolloutBegin => "fleet_rollout_begin",
            Tracepoint::FleetRolloutPush => "fleet_rollout_push",
            Tracepoint::FleetRolloutPromote => "fleet_rollout_promote",
            Tracepoint::FleetRolloutRollback => "fleet_rollout_rollback",
            Tracepoint::FleetRolloutComplete => "fleet_rollout_complete",
        }
    }
}

impl fmt::Display for Tracepoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single trace event, the payload delivered to registered callbacks.
///
/// Hot-path variants (`HookEnter`, `HookExit`, cache events) carry only
/// `Copy` data; rare control-plane variants own their strings so the flight
/// recorder can retain them without lifetimes.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An LSM hook dispatch started.
    HookEnter {
        /// Which hook.
        hook: TraceHook,
    },
    /// An LSM hook dispatch finished.
    HookExit {
        /// Which hook.
        hook: TraceHook,
        /// Allow or deny.
        verdict: TraceVerdict,
        /// Wall-clock nanoseconds spent in the stacked modules.
        latency_ns: u64,
    },
    /// A decision-cache lookup hit.
    CacheHit,
    /// A decision-cache lookup missed.
    CacheMiss,
    /// The policy epoch bump invalidated every cached decision.
    ///
    /// Fires exactly **once per epoch bump**, never per cache slot — the
    /// interleaving model in `sack-analyze` proves this.
    CacheInvalidate {
        /// The new epoch value.
        epoch: u64,
    },
    /// The situation state machine transitioned.
    SsmTransition {
        /// Source state name.
        from: String,
        /// Destination state name.
        to: String,
        /// The environmental event that caused the transition.
        event: String,
    },
    /// A new active policy was published over RCU.
    PolicyPublish {
        /// The epoch value after the publish's bump.
        epoch: u64,
    },
    /// The global policy epoch counter was incremented.
    RcuEpochBump {
        /// The new epoch value.
        epoch: u64,
    },
    /// An AppArmor profile was (re)compiled to its unified DFA.
    ProfileRecompile {
        /// Profile name.
        profile: String,
        /// True when the shared alphabet split and the whole world recompiled.
        full_rebuild: bool,
    },
    /// A record was appended to the audit ring.
    AuditEmit {
        /// The record's monotonic sequence number.
        seq: u64,
    },
    /// A sensor frame was enqueued into the SDS submission ring.
    ///
    /// Hot-path: fires once per produced frame, carries only `Copy` data,
    /// and is **not** flight-recorded (it would flush 256 slots in ~256 µs
    /// at sensor rates) — the fired counter and Prometheus export still see
    /// every enqueue.
    SdsEnqueue {
        /// Ring occupancy observed right after the enqueue (racy snapshot).
        depth: usize,
    },
    /// An SDS ring drain batch completed.
    SdsDrain {
        /// Frames consumed by this drain.
        batch: usize,
        /// SSM transitions actually published (0 or 1 per drain).
        transitions: usize,
    },
    /// Two or more frames collapsed into a single SSM delivery in a drain.
    SdsCoalesce {
        /// The environmental event whose frames were collapsed.
        event: String,
        /// How many frames the drain collapsed (≥ 2).
        collapsed: usize,
    },
    /// The ring-full backpressure policy engaged.
    SdsBackpressure {
        /// Policy label: `drop-oldest` or `block`.
        policy: &'static str,
        /// Cumulative frames discarded by drop-oldest since boot.
        dropped_total: u64,
    },
    /// A staged fleet policy rollout started.
    FleetRolloutBegin {
        /// Monotonic rollout id, unique per driver run.
        rollout: u64,
        /// How many cohorts the stage plan covers.
        cohorts: usize,
    },
    /// The candidate policy was pushed to every instance of a cohort.
    FleetRolloutPush {
        /// The rollout this push belongs to.
        rollout: u64,
        /// Cohort label receiving the candidate policy.
        cohort: String,
        /// Instances the push reached.
        instances: usize,
    },
    /// A cohort finished its soak window with no alert and was promoted.
    FleetRolloutPromote {
        /// The rollout this promotion belongs to.
        rollout: u64,
        /// The promoted cohort's label.
        cohort: String,
        /// Detector ticks the cohort soaked green for.
        soak_ticks: u64,
    },
    /// A detector alert rolled every upgraded cohort back.
    FleetRolloutRollback {
        /// The rollout being rolled back.
        rollout: u64,
        /// Cohort whose telemetry raised the alert.
        cohort: String,
        /// The triggering detector's alert label (e.g. `denial_spike`).
        reason: String,
        /// Instances republished to the prior policy.
        instances: usize,
    },
    /// The rollout finished.
    FleetRolloutComplete {
        /// The finished rollout's id.
        rollout: u64,
        /// True when every cohort promoted; false after a rollback.
        promoted: bool,
    },
}

impl TraceEvent {
    /// The tracepoint this event belongs to.
    pub fn tracepoint(&self) -> Tracepoint {
        match self {
            TraceEvent::HookEnter { .. } => Tracepoint::HookEnter,
            TraceEvent::HookExit { .. } => Tracepoint::HookExit,
            TraceEvent::CacheHit => Tracepoint::CacheHit,
            TraceEvent::CacheMiss => Tracepoint::CacheMiss,
            TraceEvent::CacheInvalidate { .. } => Tracepoint::CacheInvalidate,
            TraceEvent::SsmTransition { .. } => Tracepoint::SsmTransition,
            TraceEvent::PolicyPublish { .. } => Tracepoint::PolicyPublish,
            TraceEvent::RcuEpochBump { .. } => Tracepoint::RcuEpochBump,
            TraceEvent::ProfileRecompile { .. } => Tracepoint::ProfileRecompile,
            TraceEvent::AuditEmit { .. } => Tracepoint::AuditEmit,
            TraceEvent::SdsEnqueue { .. } => Tracepoint::SdsEnqueue,
            TraceEvent::SdsDrain { .. } => Tracepoint::SdsDrain,
            TraceEvent::SdsCoalesce { .. } => Tracepoint::SdsCoalesce,
            TraceEvent::SdsBackpressure { .. } => Tracepoint::SdsBackpressure,
            TraceEvent::FleetRolloutBegin { .. } => Tracepoint::FleetRolloutBegin,
            TraceEvent::FleetRolloutPush { .. } => Tracepoint::FleetRolloutPush,
            TraceEvent::FleetRolloutPromote { .. } => Tracepoint::FleetRolloutPromote,
            TraceEvent::FleetRolloutRollback { .. } => Tracepoint::FleetRolloutRollback,
            TraceEvent::FleetRolloutComplete { .. } => Tracepoint::FleetRolloutComplete,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::HookEnter { hook } => write!(f, "hook_enter hook={hook}"),
            TraceEvent::HookExit {
                hook,
                verdict,
                latency_ns,
            } => write!(f, "hook_exit hook={hook} verdict={verdict} ns={latency_ns}"),
            TraceEvent::CacheHit => f.write_str("cache_hit"),
            TraceEvent::CacheMiss => f.write_str("cache_miss"),
            TraceEvent::CacheInvalidate { epoch } => {
                write!(f, "cache_invalidate epoch={epoch}")
            }
            TraceEvent::SsmTransition { from, to, event } => {
                write!(f, "ssm_transition from={from} to={to} event={event}")
            }
            TraceEvent::PolicyPublish { epoch } => write!(f, "policy_publish epoch={epoch}"),
            TraceEvent::RcuEpochBump { epoch } => write!(f, "rcu_epoch_bump epoch={epoch}"),
            TraceEvent::ProfileRecompile {
                profile,
                full_rebuild,
            } => write!(
                f,
                "profile_recompile profile={profile} full_rebuild={full_rebuild}"
            ),
            TraceEvent::AuditEmit { seq } => write!(f, "audit_emit seq={seq}"),
            TraceEvent::SdsEnqueue { depth } => write!(f, "sds_enqueue depth={depth}"),
            TraceEvent::SdsDrain { batch, transitions } => {
                write!(f, "sds_drain batch={batch} transitions={transitions}")
            }
            TraceEvent::SdsCoalesce { event, collapsed } => {
                write!(f, "sds_coalesce event={event} collapsed={collapsed}")
            }
            TraceEvent::SdsBackpressure {
                policy,
                dropped_total,
            } => write!(
                f,
                "sds_backpressure policy={policy} dropped_total={dropped_total}"
            ),
            TraceEvent::FleetRolloutBegin { rollout, cohorts } => {
                write!(f, "fleet_rollout_begin rollout={rollout} cohorts={cohorts}")
            }
            TraceEvent::FleetRolloutPush {
                rollout,
                cohort,
                instances,
            } => write!(
                f,
                "fleet_rollout_push rollout={rollout} cohort={cohort} instances={instances}"
            ),
            TraceEvent::FleetRolloutPromote {
                rollout,
                cohort,
                soak_ticks,
            } => write!(
                f,
                "fleet_rollout_promote rollout={rollout} cohort={cohort} soak_ticks={soak_ticks}"
            ),
            TraceEvent::FleetRolloutRollback {
                rollout,
                cohort,
                reason,
                instances,
            } => write!(
                f,
                "fleet_rollout_rollback rollout={rollout} cohort={cohort} \
                 reason={reason} instances={instances}"
            ),
            TraceEvent::FleetRolloutComplete { rollout, promoted } => {
                write!(
                    f,
                    "fleet_rollout_complete rollout={rollout} promoted={promoted}"
                )
            }
        }
    }
}

/// A registered trace callback: runs synchronously on the emitting thread.
pub type TraceCallback = Arc<dyn Fn(&TraceEvent) + Send + Sync>;

/// Handle returned by [`TraceHub::register`]; pass to
/// [`TraceHub::unregister`] to detach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHandle(u64);

/// One cache line per fired-counter so concurrent probe sites never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicU64);

struct CallbackEntry {
    handle: u64,
    /// `None` attaches to every tracepoint.
    point: Option<Tracepoint>,
    callback: TraceCallback,
}

/// The tracepoint hub: one per booted kernel, shared by every layer.
///
/// Disabled cost is a single `Relaxed` load and branch per probe site
/// ([`TraceHub::enabled`]); probe sites must guard event *construction*
/// behind it:
///
/// ```
/// use sack_kernel::trace::{TraceEvent, TraceHub};
///
/// let hub = TraceHub::new();
/// if hub.enabled() {
///     hub.emit(&TraceEvent::CacheHit); // never reached while disabled
/// }
/// ```
pub struct TraceHub {
    enabled: AtomicBool,
    next_handle: AtomicU64,
    fired: [PaddedCounter; Tracepoint::ALL.len()],
    callbacks: RwLock<Vec<CallbackEntry>>,
}

impl TraceHub {
    /// Creates a hub with tracing disabled and no callbacks.
    pub fn new() -> Arc<TraceHub> {
        Arc::new(TraceHub {
            enabled: AtomicBool::new(false),
            next_handle: AtomicU64::new(1),
            fired: Default::default(),
            callbacks: RwLock::new(Vec::new()),
        })
    }

    /// The one-load-one-branch global enable check.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables all tracepoints.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Attaches `callback` to a single tracepoint (`register_trace_*` style).
    pub fn register(&self, point: Tracepoint, callback: TraceCallback) -> TraceHandle {
        self.register_entry(Some(point), callback)
    }

    /// Attaches `callback` to **every** tracepoint.
    pub fn register_all(&self, callback: TraceCallback) -> TraceHandle {
        self.register_entry(None, callback)
    }

    fn register_entry(&self, point: Option<Tracepoint>, callback: TraceCallback) -> TraceHandle {
        let handle = self.next_handle.fetch_add(1, Ordering::Relaxed);
        self.callbacks.write().push(CallbackEntry {
            handle,
            point,
            callback,
        });
        TraceHandle(handle)
    }

    /// Detaches a callback. Unknown handles are ignored.
    pub fn unregister(&self, handle: TraceHandle) {
        self.callbacks.write().retain(|e| e.handle != handle.0);
    }

    /// Number of attached callbacks (tests / diagnostics).
    pub fn callback_count(&self) -> usize {
        self.callbacks.read().len()
    }

    /// Emits an event to every matching callback and bumps the tracepoint's
    /// fired counter. No-op while disabled; probe sites should still check
    /// [`TraceHub::enabled`] first so the event is never even constructed on
    /// the disabled path.
    pub fn emit(&self, event: &TraceEvent) {
        if !self.enabled() {
            return;
        }
        let point = event.tracepoint();
        self.fired[point.index()].0.fetch_add(1, Ordering::Relaxed);
        for entry in self.callbacks.read().iter() {
            if entry.point.is_none() || entry.point == Some(point) {
                (entry.callback)(event);
            }
        }
    }

    /// How many times `point` has fired while enabled.
    pub fn fired(&self, point: Tracepoint) -> u64 {
        self.fired[point.index()].0.load(Ordering::Relaxed)
    }

    /// Total events fired across all tracepoints.
    pub fn fired_total(&self) -> u64 {
        Tracepoint::ALL.iter().map(|p| self.fired(*p)).sum()
    }
}

impl fmt::Debug for TraceHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHub")
            .field("enabled", &self.enabled())
            .field("callbacks", &self.callback_count())
            .field("fired_total", &self.fired_total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn disabled_hub_emits_nothing() {
        let hub = TraceHub::new();
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        hub.register_all(Arc::new(move |_| {
            s.fetch_add(1, Ordering::Relaxed);
        }));
        hub.emit(&TraceEvent::CacheHit);
        assert_eq!(seen.load(Ordering::Relaxed), 0);
        assert_eq!(hub.fired(Tracepoint::CacheHit), 0);
    }

    #[test]
    fn enabled_hub_delivers_in_order_and_counts() {
        let hub = TraceHub::new();
        hub.set_enabled(true);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = Arc::clone(&log);
        hub.register_all(Arc::new(move |ev| l.lock().unwrap().push(ev.clone())));
        hub.emit(&TraceEvent::CacheMiss);
        hub.emit(&TraceEvent::RcuEpochBump { epoch: 7 });
        let log = log.lock().unwrap();
        assert_eq!(
            *log,
            vec![TraceEvent::CacheMiss, TraceEvent::RcuEpochBump { epoch: 7 }]
        );
        assert_eq!(hub.fired(Tracepoint::CacheMiss), 1);
        assert_eq!(hub.fired(Tracepoint::RcuEpochBump), 1);
        assert_eq!(hub.fired_total(), 2);
    }

    #[test]
    fn point_filter_and_unregister() {
        let hub = TraceHub::new();
        hub.set_enabled(true);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let handle = hub.register(
            Tracepoint::CacheHit,
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        hub.emit(&TraceEvent::CacheHit);
        hub.emit(&TraceEvent::CacheMiss); // filtered out
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        hub.unregister(handle);
        hub.emit(&TraceEvent::CacheHit);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(hub.callback_count(), 0);
    }

    #[test]
    fn hook_and_tracepoint_names_round_trip() {
        for hook in TraceHook::ALL {
            assert_eq!(TraceHook::from_name(hook.name()), Some(hook));
            assert_eq!(TraceHook::ALL[hook.index()], hook);
        }
        for (i, point) in Tracepoint::ALL.into_iter().enumerate() {
            assert_eq!(point.index(), i);
        }
    }

    #[test]
    fn toggling_gates_counters() {
        let hub = TraceHub::new();
        hub.emit(&TraceEvent::CacheHit);
        hub.set_enabled(true);
        hub.emit(&TraceEvent::CacheHit);
        hub.set_enabled(false);
        hub.emit(&TraceEvent::CacheHit);
        assert_eq!(hub.fired(Tracepoint::CacheHit), 1);
    }
}
