//! Context-switch simulation: the classic LMBench "hot-potato" pair.
//!
//! LMBench's `lat_ctx` benchmark measures context-switch latency by passing
//! a token between processes through pipes, optionally touching a working
//! set between switches (the `2p/16K` variant). [`CtxSwitchPair`] reproduces
//! that: two simulated processes on two host threads, connected by two
//! pipes, each `read`/`write` crossing the simulated syscall layer and thus
//! the LSM `file_permission` hooks — which is where SACK/AppArmor overhead
//! shows up.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::cred::Credentials;
use crate::error::KernelResult;
use crate::kernel::Kernel;
use crate::types::Fd;
use crate::uctx::UserContext;

/// Two processes ping-ponging a token through a pipe pair.
#[derive(Debug)]
pub struct CtxSwitchPair {
    parent: UserContext,
    child: UserContext,
    to_child: (Fd, Fd),
    to_parent: (Fd, Fd),
}

/// Result of a context-switch measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtxSwitchReport {
    /// Number of round trips performed.
    pub round_trips: usize,
    /// Total wall time.
    pub elapsed: Duration,
}

impl CtxSwitchReport {
    /// Mean cost of one switch (two switches per round trip).
    pub fn per_switch(&self) -> Duration {
        if self.round_trips == 0 {
            return Duration::ZERO;
        }
        self.elapsed / (self.round_trips as u32 * 2)
    }
}

impl CtxSwitchPair {
    /// Creates the process pair and its connecting pipes on `kernel`.
    ///
    /// # Errors
    ///
    /// Propagates pipe/fork errors (e.g. an LSM denying `task_alloc`).
    pub fn new(kernel: &Arc<Kernel>, cred: Credentials) -> KernelResult<CtxSwitchPair> {
        let parent = kernel.spawn(cred);
        let to_child = parent.pipe()?;
        let to_parent = parent.pipe()?;
        let child = parent.fork()?;
        Ok(CtxSwitchPair {
            parent,
            child,
            to_child,
            to_parent,
        })
    }

    /// Runs `round_trips` token exchanges, touching `working_set` bytes of
    /// private data between switches (0 reproduces `2p/0K`, 16384 the
    /// `2p/16K` variant). Returns the timing report.
    ///
    /// # Panics
    ///
    /// Panics if a pipe operation fails mid-benchmark (the pair is wired
    /// correctly by construction, so this indicates a harness bug).
    pub fn run(&self, round_trips: usize, working_set: usize) -> CtxSwitchReport {
        let start = Instant::now();
        thread::scope(|scope| {
            let child = &self.child;
            let (c_read, _) = self.to_child;
            let (_, c_write) = self.to_parent;
            scope.spawn(move || {
                let mut token = [0u8; 1];
                let mut ws = vec![0u8; working_set];
                for _ in 0..round_trips {
                    child.read(c_read, &mut token).expect("child read");
                    touch(&mut ws);
                    child.write(c_write, &token).expect("child write");
                }
            });
            let (p_read, _) = self.to_parent;
            let (_, p_write) = self.to_child;
            let mut token = [7u8; 1];
            let mut ws = vec![0u8; working_set];
            for _ in 0..round_trips {
                self.parent.write(p_write, &token).expect("parent write");
                touch(&mut ws);
                self.parent.read(p_read, &mut token).expect("parent read");
            }
        });
        CtxSwitchReport {
            round_trips,
            elapsed: start.elapsed(),
        }
    }

    /// Tears down both processes.
    pub fn shutdown(self) {
        self.child.exit();
        self.parent.exit();
    }
}

/// Walks the working set one cache line at a time so the buffer is really
/// touched between switches.
fn touch(ws: &mut [u8]) {
    let mut i = 0;
    while i < ws.len() {
        ws[i] = ws[i].wrapping_add(1);
        i += 64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_completes() {
        let kernel = Kernel::boot_default();
        let pair = CtxSwitchPair::new(&kernel, Credentials::root()).unwrap();
        let report = pair.run(100, 0);
        assert_eq!(report.round_trips, 100);
        assert!(report.elapsed > Duration::ZERO);
        assert!(report.per_switch() > Duration::ZERO);
        pair.shutdown();
        assert_eq!(kernel.tasks().live_count(), 0);
    }

    #[test]
    fn working_set_variant_completes() {
        let kernel = Kernel::boot_default();
        let pair = CtxSwitchPair::new(&kernel, Credentials::root()).unwrap();
        let report = pair.run(50, 16 * 1024);
        assert_eq!(report.round_trips, 50);
        pair.shutdown();
    }

    #[test]
    fn zero_round_trips_report() {
        let report = CtxSwitchReport {
            round_trips: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(report.per_switch(), Duration::ZERO);
    }
}
