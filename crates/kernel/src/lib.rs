//! # sack-kernel — simulated Linux kernel substrate
//!
//! A behavioural, in-process model of the parts of the Linux kernel that the
//! SACK paper (DATE 2025) builds on: processes with credentials and POSIX
//! capabilities, a VFS with regular files, directories and char-device
//! nodes, pipes and stream sockets, a syscall layer, the LSM hook framework
//! with module stacking, and securityfs.
//!
//! Security modules (the AppArmor baseline in `sack-apparmor`, SACK itself
//! in `sack-core`) implement [`lsm::SecurityModule`] and are stacked at boot
//! via [`kernel::KernelBuilder`], reproducing `CONFIG_LSM="SACK,AppArmor"`.
//!
//! ## Example
//!
//! ```
//! use sack_kernel::kernel::Kernel;
//! use sack_kernel::cred::Credentials;
//! use sack_kernel::file::OpenFlags;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = Kernel::boot_default();
//! let shell = kernel.spawn(Credentials::root());
//! shell.write_file("/etc/motd", b"welcome")?;
//! assert_eq!(shell.read_to_vec("/etc/motd")?, b"welcome");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cred;
pub mod device;
pub mod error;
pub mod file;
pub mod instance;
pub mod ipc;
pub mod kernel;
pub mod lsm;
pub mod path;
pub mod ring;
pub mod sched;
pub mod securityfs;
pub mod smp;
pub mod sync;
pub mod task;
pub mod time;
pub mod trace;
pub mod types;
pub mod uctx;
pub mod vfs;

pub use cred::{Capability, CapabilitySet, Credentials, Gid, Uid};
pub use error::{Errno, KernelError, KernelResult};
pub use instance::{InstanceEntry, InstanceId, InstanceRegistry};
pub use kernel::{Kernel, KernelBuilder};
pub use lsm::{AccessMask, HookCtx, ObjectKind, ObjectRef, SecurityModule, SocketFamily};
pub use path::KPath;
pub use ring::{Ring, RingFull, RingIn};
pub use sync::Rcu;
pub use trace::{TraceEvent, TraceHook, TraceHub, TraceVerdict, Tracepoint};
pub use types::{DeviceId, Fd, InodeId, Mode, Pid};
pub use uctx::UserContext;
