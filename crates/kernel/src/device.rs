//! Character-device driver interface and registry.
//!
//! Vehicle hardware (doors, windows, audio) is exposed to user space as
//! char-device nodes (e.g. `/dev/car/door0`), matching how the paper's case
//! study mediates `ioctl`/`write` on window and door devices.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Errno, KernelError, KernelResult};
use crate::types::DeviceId;

/// Driver callbacks for a character device.
///
/// All methods default to `ENOTTY`/`EINVAL` so drivers implement only the
/// operations their hardware supports.
#[allow(unused_variables)]
pub trait CharDevice: Send + Sync {
    /// Human-readable driver name (for diagnostics).
    fn driver_name(&self) -> &str;

    /// Reads from the device at `offset`.
    ///
    /// # Errors
    ///
    /// Defaults to `EINVAL` for write-only devices.
    fn read(&self, buf: &mut [u8], offset: u64) -> KernelResult<usize> {
        Err(KernelError::with_context(Errno::EINVAL, "chardev"))
    }

    /// Writes to the device at `offset`.
    ///
    /// # Errors
    ///
    /// Defaults to `EINVAL` for read-only devices.
    fn write(&self, buf: &[u8], offset: u64) -> KernelResult<usize> {
        Err(KernelError::with_context(Errno::EINVAL, "chardev"))
    }

    /// Device-specific control operation.
    ///
    /// # Errors
    ///
    /// Defaults to `ENOTTY` when the command is not understood.
    fn ioctl(&self, cmd: u32, arg: u64) -> KernelResult<i64> {
        Err(KernelError::with_context(Errno::ENOTTY, "chardev"))
    }
}

/// Registry mapping device ids to drivers, analogous to the kernel's
/// char-device major/minor table.
#[derive(Default)]
pub struct DeviceRegistry {
    drivers: RwLock<HashMap<DeviceId, Arc<dyn CharDevice>>>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Registers a driver for `dev`.
    ///
    /// # Errors
    ///
    /// Returns `EBUSY` if the id is already taken.
    pub fn register(&self, dev: DeviceId, driver: Arc<dyn CharDevice>) -> KernelResult<()> {
        let mut map = self.drivers.write();
        if map.contains_key(&dev) {
            return Err(KernelError::with_context(Errno::EBUSY, "chardev"));
        }
        map.insert(dev, driver);
        Ok(())
    }

    /// Looks up the driver for `dev`.
    ///
    /// # Errors
    ///
    /// Returns `ENODEV` when no driver is registered.
    pub fn driver(&self, dev: DeviceId) -> KernelResult<Arc<dyn CharDevice>> {
        self.drivers
            .read()
            .get(&dev)
            .cloned()
            .ok_or_else(|| KernelError::with_context(Errno::ENODEV, "chardev"))
    }

    /// Removes a driver; returns whether one was present.
    pub fn unregister(&self, dev: DeviceId) -> bool {
        self.drivers.write().remove(&dev).is_some()
    }

    /// Number of registered drivers.
    pub fn len(&self) -> usize {
        self.drivers.read().len()
    }

    /// True if no drivers are registered.
    pub fn is_empty(&self) -> bool {
        self.drivers.read().is_empty()
    }
}

impl fmt::Debug for DeviceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceRegistry")
            .field("drivers", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl CharDevice for Echo {
        fn driver_name(&self) -> &str {
            "echo"
        }
        fn write(&self, buf: &[u8], _offset: u64) -> KernelResult<usize> {
            Ok(buf.len())
        }
        fn ioctl(&self, cmd: u32, _arg: u64) -> KernelResult<i64> {
            Ok(i64::from(cmd))
        }
    }

    #[test]
    fn register_and_dispatch() {
        let reg = DeviceRegistry::new();
        let dev = DeviceId::new(240, 0);
        reg.register(dev, Arc::new(Echo)).unwrap();
        let driver = reg.driver(dev).unwrap();
        assert_eq!(driver.write(b"hi", 0).unwrap(), 2);
        assert_eq!(driver.ioctl(7, 0).unwrap(), 7);
    }

    #[test]
    fn duplicate_registration_is_ebusy() {
        let reg = DeviceRegistry::new();
        let dev = DeviceId::new(240, 0);
        reg.register(dev, Arc::new(Echo)).unwrap();
        let err = reg.register(dev, Arc::new(Echo)).unwrap_err();
        assert_eq!(err.errno(), Errno::EBUSY);
    }

    #[test]
    fn missing_driver_is_enodev() {
        let reg = DeviceRegistry::new();
        let err = reg.driver(DeviceId::new(1, 2)).err().expect("must fail");
        assert_eq!(err.errno(), Errno::ENODEV);
    }

    #[test]
    fn default_ops_reject() {
        struct Null;
        impl CharDevice for Null {
            fn driver_name(&self) -> &str {
                "null"
            }
        }
        let n = Null;
        let mut buf = [0u8; 4];
        assert_eq!(n.read(&mut buf, 0).unwrap_err().errno(), Errno::EINVAL);
        assert_eq!(n.ioctl(1, 2).unwrap_err().errno(), Errno::ENOTTY);
    }

    #[test]
    fn unregister_removes_driver() {
        let reg = DeviceRegistry::new();
        let dev = DeviceId::new(9, 9);
        reg.register(dev, Arc::new(Echo)).unwrap();
        assert!(reg.unregister(dev));
        assert!(!reg.unregister(dev));
        assert!(reg.is_empty());
    }
}
