//! The kernel object: ties together VFS, LSM stack, process table, IPC and
//! the simulated clock.

use std::fmt;
use std::sync::Arc;

use crate::cred::{Capability, Credentials};
use crate::error::{Errno, KernelError, KernelResult};
use crate::instance::InstanceId;
use crate::ipc::ListenerTable;
use crate::lsm::{LsmStack, SecurityModule};
use crate::path::KPath;
use crate::securityfs::{SecurityFsFile, SECURITYFS_ROOT};
use crate::task::ProcessTable;
use crate::time::SimClock;
use crate::trace::TraceHub;
use crate::types::Pid;
use crate::uctx::UserContext;
use crate::vfs::Vfs;

/// Boot-time kernel configuration, mirroring `CONFIG_LSM=`.
///
/// # Examples
///
/// ```
/// use sack_kernel::kernel::KernelBuilder;
///
/// let kernel = KernelBuilder::new().boot();
/// assert!(kernel.lsm().is_empty()); // DAC-only kernel
/// ```
#[derive(Default)]
pub struct KernelBuilder {
    modules: Vec<Arc<dyn SecurityModule>>,
    trace: Option<Arc<TraceHub>>,
}

impl KernelBuilder {
    /// Starts a configuration with no security modules (DAC only).
    pub fn new() -> Self {
        KernelBuilder::default()
    }

    /// Appends a security module; order of calls is checking order.
    pub fn security_module(mut self, module: Arc<dyn SecurityModule>) -> Self {
        self.modules.push(module);
        self
    }

    /// Uses an externally owned trace hub instead of booting a fresh one,
    /// so consumers can register callbacks before the first dispatch.
    pub fn trace_hub(mut self, hub: Arc<TraceHub>) -> Self {
        self.trace = Some(hub);
        self
    }

    /// Boots the kernel: builds the LSM stack, creates the standard
    /// filesystem skeleton (`/dev`, `/etc`, `/tmp`, `/usr/bin`, securityfs
    /// mount point) and returns the kernel handle.
    pub fn boot(self) -> Arc<Kernel> {
        let trace = self.trace.unwrap_or_else(TraceHub::new);
        let kernel = Arc::new(Kernel {
            instance: InstanceId::next(),
            vfs: Vfs::new(),
            lsm: LsmStack::with_trace(self.modules, trace),
            tasks: ProcessTable::new(),
            listeners: ListenerTable::new(),
            clock: SimClock::new(),
        });
        for dir in ["/dev", "/etc", "/usr/bin", "/home", SECURITYFS_ROOT] {
            kernel
                .vfs
                .mkdir_all(&KPath::new(dir).expect("boot path is valid"))
                .expect("boot skeleton creation cannot fail on empty fs");
        }
        // /tmp is world-writable, as on Linux (mode 1777).
        kernel
            .vfs
            .mkdir(
                &KPath::new("/tmp").expect("boot path is valid"),
                crate::types::Mode(0o777),
                crate::cred::Uid::ROOT,
                crate::cred::Gid(0),
            )
            .expect("boot skeleton creation cannot fail on empty fs");
        kernel
    }
}

impl fmt::Debug for KernelBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelBuilder")
            .field("modules", &self.modules.len())
            .finish()
    }
}

/// The simulated kernel.
///
/// All user-space interaction goes through [`UserContext`] handles returned
/// by [`Kernel::spawn`]; the kernel itself only exposes the mechanism
/// surfaces that in-kernel components (security modules, drivers) need.
pub struct Kernel {
    instance: InstanceId,
    vfs: Vfs,
    lsm: LsmStack,
    tasks: ProcessTable,
    listeners: ListenerTable,
    clock: SimClock,
}

impl Kernel {
    /// Boots a DAC-only kernel (no security modules).
    pub fn boot_default() -> Arc<Kernel> {
        KernelBuilder::new().boot()
    }

    /// The kernel's fleet instance id, unique per boot in this process.
    pub fn instance(&self) -> InstanceId {
        self.instance
    }

    /// The virtual filesystem.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// The LSM stack.
    pub fn lsm(&self) -> &LsmStack {
        &self.lsm
    }

    /// The tracepoint hub shared by the LSM stack and the security modules.
    pub fn trace(&self) -> &Arc<TraceHub> {
        self.lsm.trace()
    }

    /// The process table.
    pub fn tasks(&self) -> &ProcessTable {
        &self.tasks
    }

    /// The socket listener table.
    pub fn listeners(&self) -> &ListenerTable {
        &self.listeners
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Spawns a user-space process with the given credentials and returns
    /// its syscall handle. This models init/systemd launching a service.
    pub fn spawn(self: &Arc<Self>, cred: Credentials) -> UserContext {
        let task = self.tasks.spawn(Pid(0), cred);
        UserContext::new(Arc::clone(self), task)
    }

    /// Registers a securityfs node; used by security modules during
    /// initialization (e.g. SACKfs's `/sys/kernel/security/SACK/events`).
    ///
    /// # Errors
    ///
    /// `EEXIST` if the node already exists.
    pub fn register_securityfs(
        &self,
        path: &KPath,
        ops: Arc<dyn SecurityFsFile>,
    ) -> KernelResult<()> {
        if !path.starts_with(&KPath::new(SECURITYFS_ROOT).expect("const path is valid")) {
            return Err(KernelError::with_context(Errno::EINVAL, "securityfs"));
        }
        self.vfs.register_securityfs(path, ops)?;
        Ok(())
    }

    /// In-kernel capability check with LSM mediation (`capable()`).
    ///
    /// # Errors
    ///
    /// `EPERM` if the credentials lack the capability or a module denies it.
    pub fn capable(&self, ctx: &crate::lsm::HookCtx, cap: Capability) -> KernelResult<()> {
        if !ctx.cred.capable(cap) {
            return Err(KernelError::with_context(Errno::EPERM, "cred"));
        }
        self.lsm.capable(ctx, cap)
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("instance", &self.instance)
            .field("lsm", &self.lsm)
            .field("tasks", &self.tasks)
            .field("vfs", &self.vfs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_creates_skeleton() {
        let kernel = Kernel::boot_default();
        for dir in ["/dev", "/etc", "/tmp", "/usr/bin", "/sys/kernel/security"] {
            assert!(
                kernel.vfs().exists(&KPath::new(dir).unwrap()),
                "{dir} missing"
            );
        }
    }

    #[test]
    fn spawn_creates_live_task() {
        let kernel = Kernel::boot_default();
        let ctx = kernel.spawn(Credentials::root());
        assert!(kernel.tasks().get(ctx.pid()).is_ok());
    }

    #[test]
    fn securityfs_registration_outside_mount_rejected() {
        struct Stub;
        impl SecurityFsFile for Stub {}
        let kernel = Kernel::boot_default();
        let err = kernel
            .register_securityfs(&KPath::new("/etc/evil").unwrap(), Arc::new(Stub))
            .unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
    }

    #[test]
    fn capable_requires_cred_bit() {
        let kernel = Kernel::boot_default();
        let root = kernel.spawn(Credentials::root());
        let user = kernel.spawn(Credentials::user(1000, 1000));
        let root_task = kernel.tasks().get(root.pid()).unwrap();
        let user_task = kernel.tasks().get(user.pid()).unwrap();
        assert!(kernel
            .capable(&root_task.hook_ctx(), Capability::MacAdmin)
            .is_ok());
        assert!(kernel
            .capable(&user_task.hook_ctx(), Capability::MacAdmin)
            .is_err());
    }
}
