//! securityfs: the pseudo-filesystem security modules use to talk to user
//! space (`/sys/kernel/security`).
//!
//! SACK's C1 design transmits situation events by `write(2)` into a
//! securityfs node ("SACKfs"), inheriting the LSM framework's security and
//! integrity guarantees. The simulation reproduces that path: modules
//! register [`SecurityFsFile`] handlers under the securityfs root, the VFS
//! exposes them as [`crate::lsm::ObjectKind::SecurityFs`] inodes, and reads/
//! writes are delivered to the handler with the caller's [`HookCtx`] so the
//! handler can apply capability checks (`CAP_MAC_ADMIN`), exactly as the
//! paper's threat model requires.

use crate::error::{Errno, KernelError, KernelResult};
use crate::lsm::HookCtx;
use crate::path::KPath;
use crate::types::Mode;

/// Mount point of securityfs, as on Linux.
pub const SECURITYFS_ROOT: &str = "/sys/kernel/security";

/// Handler backing one securityfs pseudo-file.
///
/// Unlike regular files there is no backing data:
/// [`SecurityFsFile::read_content`] renders the whole content once at
/// the first `read(2)` of each open (then chunks are served from that
/// snapshot, `seq_file`-style, so a node whose content changes under the
/// read never tears), and every `write(2)` calls
/// [`SecurityFsFile::write_content`].
#[allow(unused_variables)]
pub trait SecurityFsFile: Send + Sync {
    /// Produces the file content for a read.
    ///
    /// # Errors
    ///
    /// Defaults to `EINVAL` for write-only nodes.
    fn read_content(&self, ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        Err(KernelError::with_context(Errno::EINVAL, "securityfs"))
    }

    /// Consumes data written to the node.
    ///
    /// # Errors
    ///
    /// Defaults to `EINVAL` for read-only nodes. Handlers performing
    /// privileged configuration should verify `ctx.cred` holds
    /// `CAP_MAC_ADMIN` and return `EPERM` otherwise.
    fn write_content(&self, ctx: &HookCtx, data: &[u8]) -> KernelResult<usize> {
        Err(KernelError::with_context(Errno::EINVAL, "securityfs"))
    }

    /// File mode shown by `stat(2)`; defaults to `0600`.
    fn mode(&self) -> Mode {
        Mode::PRIVATE
    }
}

/// Returns the absolute path of a node `name` inside module directory
/// `module` under the securityfs root, e.g. `securityfs_path("SACK",
/// "events")` → `/sys/kernel/security/SACK/events`.
///
/// # Errors
///
/// Propagates path-validation errors from [`KPath`].
pub fn securityfs_path(module: &str, name: &str) -> KernelResult<KPath> {
    KPath::new(SECURITYFS_ROOT)?.join(module)?.join(name)
}

/// Requires `CAP_MAC_ADMIN`, the standard gate for securityfs configuration
/// writes.
///
/// # Errors
///
/// Returns `EPERM` when the capability is absent.
pub fn require_mac_admin(ctx: &HookCtx) -> KernelResult<()> {
    if ctx.cred.capable(crate::cred::Capability::MacAdmin) {
        Ok(())
    } else {
        Err(KernelError::with_context(Errno::EPERM, "securityfs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Capability, Credentials};
    use crate::types::Pid;

    struct ReadOnly;
    impl SecurityFsFile for ReadOnly {
        fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
            Ok(b"state".to_vec())
        }
    }

    #[test]
    fn default_ops_reject() {
        struct Stub;
        impl SecurityFsFile for Stub {}
        let s = Stub;
        let ctx = HookCtx::new(Pid(1), Credentials::root(), None);
        assert!(s.read_content(&ctx).is_err());
        assert!(s.write_content(&ctx, b"x").is_err());
        assert_eq!(s.mode(), Mode::PRIVATE);
    }

    #[test]
    fn read_only_node() {
        let ctx = HookCtx::new(Pid(1), Credentials::root(), None);
        assert_eq!(ReadOnly.read_content(&ctx).unwrap(), b"state");
        assert!(ReadOnly.write_content(&ctx, b"x").is_err());
    }

    #[test]
    fn path_helper_builds_sackfs_path() {
        let p = securityfs_path("SACK", "events").unwrap();
        assert_eq!(p.as_str(), "/sys/kernel/security/SACK/events");
    }

    #[test]
    fn mac_admin_gate() {
        let root = HookCtx::new(Pid(1), Credentials::root(), None);
        assert!(require_mac_admin(&root).is_ok());
        let user = HookCtx::new(Pid(2), Credentials::user(1000, 1000), None);
        assert_eq!(require_mac_admin(&user).unwrap_err().errno(), Errno::EPERM);
        let sds = HookCtx::new(
            Pid(3),
            Credentials::user(100, 100).with_capability(Capability::MacAdmin),
            None,
        );
        assert!(require_mac_admin(&sds).is_ok());
    }
}
