//! The syscall layer: [`UserContext`] is a user-space process handle whose
//! methods are the simulated syscalls.
//!
//! Every mediated operation performs, in order: DAC (classic permission
//! bits), then LSM hook dispatch through the kernel's [`LsmStack`] — the
//! same ordering as `inode_permission()` → `security_file_open()` on Linux.

use std::sync::Arc;

use crate::error::{Errno, KernelError, KernelResult};
use crate::file::{FileBacking, MappedRegion, OpenFile, OpenFlags};
use crate::ipc::{Listener, Pipe};
use crate::kernel::Kernel;
use crate::lsm::{AccessMask, HookCtx, LsmStack, ObjectKind, ObjectRef, SocketFamily};
use crate::path::KPath;
use crate::task::Task;
use crate::types::{Fd, Mode};
use crate::vfs::{dac_permission, InodeKind, Metadata};

/// A handle to a simulated process, exposing the syscall API.
///
/// # Examples
///
/// ```
/// use sack_kernel::kernel::Kernel;
/// use sack_kernel::cred::Credentials;
/// use sack_kernel::file::OpenFlags;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let kernel = Kernel::boot_default();
/// let proc = kernel.spawn(Credentials::root());
/// let fd = proc.open("/tmp/hello", OpenFlags::create_new())?;
/// proc.write(fd, b"hi")?;
/// proc.close(fd)?;
/// assert_eq!(proc.read_to_vec("/tmp/hello")?, b"hi");
/// # Ok(())
/// # }
/// ```
pub struct UserContext {
    kernel: Arc<Kernel>,
    task: Arc<Task>,
}

impl UserContext {
    pub(crate) fn new(kernel: Arc<Kernel>, task: Arc<Task>) -> Self {
        UserContext { kernel, task }
    }

    /// The process id.
    pub fn pid(&self) -> crate::types::Pid {
        self.task.pid
    }

    /// The kernel this process runs on.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The underlying task.
    pub fn task(&self) -> &Arc<Task> {
        &self.task
    }

    fn lsm(&self) -> &LsmStack {
        self.kernel.lsm()
    }

    fn hook_ctx(&self) -> HookCtx {
        self.task.hook_ctx()
    }

    fn resolve_path(&self, raw: &str) -> KernelResult<KPath> {
        self.task.cwd().resolve(raw)
    }

    /// The cheapest possible syscall (`getpid(2)`): crosses the syscall
    /// boundary, touches the task, returns. Used by the LMBench `syscall`
    /// row; LSM configuration does not add hooks on this path (as on Linux).
    pub fn null_syscall(&self) -> u32 {
        self.task.pid.0
    }

    /// `getpid(2)`.
    pub fn getpid(&self) -> crate::types::Pid {
        self.task.pid
    }

    /// `chdir(2)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`/`ENOTDIR` if the target is not a directory.
    pub fn chdir(&self, path: &str) -> KernelResult<()> {
        let path = self.resolve_path(path)?;
        let node = self.kernel.vfs().resolve(&path)?;
        if !matches!(node.kind, InodeKind::Directory(_)) {
            return Err(KernelError::with_context(Errno::ENOTDIR, "vfs"));
        }
        self.task.set_cwd(path);
        Ok(())
    }

    /// `open(2)`.
    ///
    /// Applies DAC, dispatches `inode_create` when creating, and
    /// `file_open` always.
    ///
    /// # Errors
    ///
    /// `ENOENT` when missing without `create`; `EEXIST` with `create+excl`;
    /// `EACCES` from DAC or any security module.
    pub fn open(&self, raw_path: &str, flags: OpenFlags) -> KernelResult<Fd> {
        let path = self.resolve_path(raw_path)?;
        let ctx = self.hook_ctx();
        let vfs = self.kernel.vfs();

        let (node, path) = match vfs.resolve_full(&path) {
            Ok((node, canonical)) => {
                if flags.create && flags.excl {
                    return Err(KernelError::with_context(Errno::EEXIST, "vfs"));
                }
                (node, canonical)
            }
            Err(e) if e.errno() == Errno::ENOENT && flags.create => {
                let (dir, name) = vfs.resolve_parent(&path)?;
                dac_permission(&ctx.cred, &dir, AccessMask::WRITE)?;
                let parent = path
                    .parent()
                    .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "vfs"))?;
                self.lsm()
                    .inode_create(&ctx, &parent, &name, ObjectKind::Regular)?;
                let node = vfs.create_file(&path, Mode::REGULAR, ctx.cred.uid, ctx.cred.gid)?;
                (node, path)
            }
            Err(e) => return Err(e),
        };

        if matches!(node.kind, InodeKind::Directory(_)) && flags.write {
            return Err(KernelError::with_context(Errno::EISDIR, "vfs"));
        }

        let mask = flags.access_mask();
        dac_permission(&ctx.cred, &node, mask)?;
        let obj = ObjectRef {
            path: &path,
            kind: node.kind.object_kind(),
            dev: node.device(),
        };
        self.lsm().file_open(&ctx, &obj, mask)?;

        if flags.truncate {
            if let InodeKind::Regular(_) = node.kind {
                vfs.truncate(&node)?;
            }
        }

        let file = Arc::new(OpenFile::new(path, FileBacking::Inode(node), flags));
        self.task.fds.lock().install(file)
    }

    /// `close(2)`.
    ///
    /// # Errors
    ///
    /// `EBADF` for invalid descriptors.
    pub fn close(&self, fd: Fd) -> KernelResult<()> {
        let file = self.task.fds.lock().remove(fd)?;
        Self::release(&file);
        Ok(())
    }

    fn release(file: &Arc<OpenFile>) {
        // Pipe/socket half-close happens when the last descriptor drops.
        if Arc::strong_count(file) == 1 {
            match &file.backing {
                FileBacking::PipeRead(p) => p.close_read(),
                FileBacking::PipeWrite(p) => p.close_write(),
                FileBacking::Socket(s) => s.shutdown(),
                FileBacking::Inode(_) => {}
            }
        }
    }

    fn get_file(&self, fd: Fd) -> KernelResult<Arc<OpenFile>> {
        self.task.fds.lock().get(fd)
    }

    /// `read(2)`.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open for reading; `EACCES` from any
    /// security module's `file_permission` hook.
    pub fn read(&self, fd: Fd, buf: &mut [u8]) -> KernelResult<usize> {
        let file = self.get_file(fd)?;
        let ctx = self.hook_ctx();
        match &file.backing {
            FileBacking::Inode(node) => {
                if !file.flags.read {
                    return Err(KernelError::with_context(Errno::EBADF, "vfs"));
                }
                let obj = ObjectRef {
                    path: &file.path,
                    kind: node.kind.object_kind(),
                    dev: node.device(),
                };
                self.lsm().file_permission(&ctx, &obj, AccessMask::READ)?;
                let mut pos = file.pos.lock();
                let n = match &node.kind {
                    InodeKind::CharDevice(dev) => {
                        let driver = self.kernel.vfs().devices().driver(*dev)?;
                        driver.read(buf, *pos)?
                    }
                    InodeKind::SecurityFs(ops) => {
                        // seq_file semantics: render once at the first read
                        // of this open, then serve every chunk from that
                        // snapshot. Re-rendering per chunk would tear nodes
                        // whose content changes under the read — e.g. the
                        // tracing metrics observe the read's own hooks.
                        let mut snapshot = file.seq_snapshot.lock();
                        let content = match &*snapshot {
                            Some(content) => Arc::clone(content),
                            None => {
                                let rendered = Arc::new(ops.read_content(&ctx)?);
                                *snapshot = Some(Arc::clone(&rendered));
                                rendered
                            }
                        };
                        drop(snapshot);
                        let off = *pos as usize;
                        if off >= content.len() {
                            0
                        } else {
                            let n = buf.len().min(content.len() - off);
                            buf[..n].copy_from_slice(&content[off..off + n]);
                            n
                        }
                    }
                    _ => self.kernel.vfs().read_at(node, buf, *pos)?,
                };
                *pos += n as u64;
                Ok(n)
            }
            FileBacking::PipeRead(pipe) => {
                let obj = ObjectRef {
                    path: &file.path,
                    kind: ObjectKind::Pipe,
                    dev: None,
                };
                self.lsm().file_permission(&ctx, &obj, AccessMask::READ)?;
                pipe.read(buf)
            }
            FileBacking::PipeWrite(_) => Err(KernelError::with_context(Errno::EBADF, "pipe")),
            FileBacking::Socket(sock) => {
                let obj = ObjectRef {
                    path: &file.path,
                    kind: ObjectKind::Socket,
                    dev: None,
                };
                self.lsm().file_permission(&ctx, &obj, AccessMask::READ)?;
                sock.recv(buf)
            }
        }
    }

    /// `write(2)`.
    ///
    /// # Errors
    ///
    /// `EBADF` if not open for writing; `EACCES` from security modules;
    /// `EPIPE` on broken pipes.
    pub fn write(&self, fd: Fd, data: &[u8]) -> KernelResult<usize> {
        let file = self.get_file(fd)?;
        let ctx = self.hook_ctx();
        match &file.backing {
            FileBacking::Inode(node) => {
                if !file.flags.write {
                    return Err(KernelError::with_context(Errno::EBADF, "vfs"));
                }
                let obj = ObjectRef {
                    path: &file.path,
                    kind: node.kind.object_kind(),
                    dev: node.device(),
                };
                self.lsm().file_permission(&ctx, &obj, AccessMask::WRITE)?;
                let mut pos = file.pos.lock();
                if file.flags.append {
                    *pos = node.size();
                }
                let n = match &node.kind {
                    InodeKind::CharDevice(dev) => {
                        let driver = self.kernel.vfs().devices().driver(*dev)?;
                        driver.write(data, *pos)?
                    }
                    InodeKind::SecurityFs(ops) => ops.write_content(&ctx, data)?,
                    _ => self.kernel.vfs().write_at(node, data, *pos)?,
                };
                *pos += n as u64;
                Ok(n)
            }
            FileBacking::PipeWrite(pipe) => {
                let obj = ObjectRef {
                    path: &file.path,
                    kind: ObjectKind::Pipe,
                    dev: None,
                };
                self.lsm().file_permission(&ctx, &obj, AccessMask::WRITE)?;
                pipe.write(data)
            }
            FileBacking::PipeRead(_) => Err(KernelError::with_context(Errno::EBADF, "pipe")),
            FileBacking::Socket(sock) => {
                let obj = ObjectRef {
                    path: &file.path,
                    kind: ObjectKind::Socket,
                    dev: None,
                };
                self.lsm().file_permission(&ctx, &obj, AccessMask::WRITE)?;
                sock.send(data)
            }
        }
    }

    /// `dup(2)`: duplicates a descriptor into the lowest free slot. Both
    /// descriptors share the open file description (offset, flags).
    ///
    /// # Errors
    ///
    /// `EBADF` for invalid descriptors, `EMFILE` when the table is full.
    pub fn dup(&self, fd: Fd) -> KernelResult<Fd> {
        let mut fds = self.task.fds.lock();
        let file = fds.get(fd)?;
        fds.install(file)
    }

    /// `dup2(2)`: duplicates `old` onto `new`, closing whatever `new` was.
    ///
    /// # Errors
    ///
    /// `EBADF`/`EMFILE` as for [`UserContext::dup`].
    pub fn dup2(&self, old: Fd, new: Fd) -> KernelResult<Fd> {
        if old == new {
            // POSIX: validate old and return it unchanged.
            self.task.fds.lock().get(old)?;
            return Ok(new);
        }
        let replaced = {
            let mut fds = self.task.fds.lock();
            let file = fds.get(old)?;
            fds.install_at(new, file)?
        };
        if let Some(replaced) = replaced {
            Self::release(&replaced);
        }
        Ok(new)
    }

    /// `lseek(2)` with `SEEK_SET` semantics.
    ///
    /// # Errors
    ///
    /// `EBADF` for pipes/sockets.
    pub fn seek(&self, fd: Fd, pos: u64) -> KernelResult<()> {
        let file = self.get_file(fd)?;
        match &file.backing {
            FileBacking::Inode(_) => {
                *file.pos.lock() = pos;
                Ok(())
            }
            _ => Err(KernelError::with_context(Errno::EBADF, "vfs")),
        }
    }

    /// `ioctl(2)`.
    ///
    /// # Errors
    ///
    /// `ENOTTY` on non-device files; `EACCES` from the `file_ioctl` hook.
    pub fn ioctl(&self, fd: Fd, cmd: u32, arg: u64) -> KernelResult<i64> {
        let file = self.get_file(fd)?;
        let ctx = self.hook_ctx();
        match &file.backing {
            FileBacking::Inode(node) => {
                let obj = ObjectRef {
                    path: &file.path,
                    kind: node.kind.object_kind(),
                    dev: node.device(),
                };
                self.lsm().file_ioctl(&ctx, &obj, cmd)?;
                match &node.kind {
                    InodeKind::CharDevice(dev) => {
                        let driver = self.kernel.vfs().devices().driver(*dev)?;
                        driver.ioctl(cmd, arg)
                    }
                    _ => Err(KernelError::with_context(Errno::ENOTTY, "vfs")),
                }
            }
            _ => Err(KernelError::with_context(Errno::ENOTTY, "vfs")),
        }
    }

    /// `stat(2)`.
    ///
    /// # Errors
    ///
    /// Resolution errors; `EACCES` from the `inode_getattr` hook.
    pub fn stat(&self, raw_path: &str) -> KernelResult<Metadata> {
        let path = self.resolve_path(raw_path)?;
        let ctx = self.hook_ctx();
        let (_, canonical) = self.kernel.vfs().resolve_full(&path)?;
        let meta = self.kernel.vfs().metadata(&canonical)?;
        let obj = ObjectRef {
            path: &canonical,
            kind: meta.kind,
            dev: None,
        };
        self.lsm().inode_getattr(&ctx, &obj)?;
        Ok(meta)
    }

    /// `fstat(2)`: metadata through an open descriptor (no path walk, no
    /// re-resolution — the identity is the open file's).
    ///
    /// # Errors
    ///
    /// `EBADF` for pipes/sockets; `EACCES` from the `inode_getattr` hook.
    pub fn fstat(&self, fd: Fd) -> KernelResult<Metadata> {
        let file = self.get_file(fd)?;
        let node = file.inode()?;
        let ctx = self.hook_ctx();
        let obj = ObjectRef {
            path: &file.path,
            kind: node.kind.object_kind(),
            dev: node.device(),
        };
        self.lsm().inode_getattr(&ctx, &obj)?;
        Ok(Metadata {
            ino: node.id,
            kind: node.kind.object_kind(),
            mode: node.mode,
            uid: node.uid,
            gid: node.gid,
            size: node.size(),
        })
    }

    /// `ftruncate(2)` to length zero (the only length the simulation
    /// needs; `open(O_TRUNC)` covers the common case).
    ///
    /// # Errors
    ///
    /// `EBADF` if not open for writing; `EACCES` from `file_permission`.
    pub fn ftruncate(&self, fd: Fd) -> KernelResult<()> {
        let file = self.get_file(fd)?;
        if !file.flags.write {
            return Err(KernelError::with_context(Errno::EBADF, "vfs"));
        }
        let node = file.inode()?;
        let ctx = self.hook_ctx();
        let obj = ObjectRef {
            path: &file.path,
            kind: node.kind.object_kind(),
            dev: node.device(),
        };
        self.lsm().file_permission(&ctx, &obj, AccessMask::WRITE)?;
        self.kernel.vfs().truncate(node)
    }

    /// `mkdir(2)`.
    ///
    /// # Errors
    ///
    /// `EEXIST` if taken; `EACCES` from DAC on the parent or from the
    /// `inode_create` hook.
    pub fn mkdir(&self, raw_path: &str, mode: Mode) -> KernelResult<()> {
        let path = self.resolve_path(raw_path)?;
        let ctx = self.hook_ctx();
        let vfs = self.kernel.vfs();
        let (dir, name) = vfs.resolve_parent(&path)?;
        dac_permission(&ctx.cred, &dir, AccessMask::WRITE)?;
        let parent = path
            .parent()
            .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "vfs"))?;
        self.lsm()
            .inode_create(&ctx, &parent, &name, ObjectKind::Directory)?;
        vfs.mkdir(&path, mode, ctx.cred.uid, ctx.cred.gid)?;
        Ok(())
    }

    /// `unlink(2)` / `rmdir(2)`.
    ///
    /// # Errors
    ///
    /// `ENOENT` if missing; `ENOTEMPTY` for non-empty dirs; `EACCES` from
    /// DAC on the parent or the `inode_unlink` hook.
    pub fn unlink(&self, raw_path: &str) -> KernelResult<()> {
        let path = self.resolve_path(raw_path)?;
        let ctx = self.hook_ctx();
        let vfs = self.kernel.vfs();
        let (dir, _) = vfs.resolve_parent(&path)?;
        dac_permission(&ctx.cred, &dir, AccessMask::WRITE)?;
        // lstat semantics: unlinking a symlink removes the link itself.
        let node = vfs.resolve_nofollow(&path)?;
        let obj = ObjectRef {
            path: &path,
            kind: node.kind.object_kind(),
            dev: node.device(),
        };
        self.lsm().inode_unlink(&ctx, &obj)?;
        vfs.unlink(&path)
    }

    /// `symlink(2)`: creates a link at `raw_link` pointing to `raw_target`
    /// (stored absolute; relative targets resolve against the link's
    /// directory at creation time, a simplification over POSIX's lazy
    /// resolution).
    ///
    /// # Errors
    ///
    /// `EEXIST` if the name is taken; `EACCES` from DAC on the parent or
    /// the `inode_create` hook.
    pub fn symlink(&self, raw_target: &str, raw_link: &str) -> KernelResult<()> {
        let link = self.resolve_path(raw_link)?;
        let target = if raw_target.starts_with('/') {
            KPath::new(raw_target)?
        } else {
            link.parent()
                .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "vfs"))?
                .resolve(raw_target)?
        };
        let ctx = self.hook_ctx();
        let vfs = self.kernel.vfs();
        let (dir, name) = vfs.resolve_parent(&link)?;
        dac_permission(&ctx.cred, &dir, AccessMask::WRITE)?;
        let parent = link
            .parent()
            .ok_or_else(|| KernelError::with_context(Errno::EINVAL, "vfs"))?;
        self.lsm()
            .inode_create(&ctx, &parent, &name, ObjectKind::Regular)?;
        vfs.symlink(&link, target)?;
        Ok(())
    }

    /// `readlink(2)`.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the path is not a symlink.
    pub fn readlink(&self, raw_path: &str) -> KernelResult<String> {
        let path = self.resolve_path(raw_path)?;
        Ok(self.kernel.vfs().readlink(&path)?.as_str().to_string())
    }

    /// `rename(2)`.
    ///
    /// # Errors
    ///
    /// `ENOENT`/`EEXIST` from the VFS; `EACCES` from DAC on either parent
    /// directory or from the `inode_rename` hook.
    pub fn rename(&self, raw_old: &str, raw_new: &str) -> KernelResult<()> {
        let old = self.resolve_path(raw_old)?;
        let new = self.resolve_path(raw_new)?;
        let ctx = self.hook_ctx();
        let vfs = self.kernel.vfs();
        let node = vfs.resolve(&old)?;
        let (old_dir, _) = vfs.resolve_parent(&old)?;
        let (new_dir, _) = vfs.resolve_parent(&new)?;
        dac_permission(&ctx.cred, &old_dir, AccessMask::WRITE)?;
        dac_permission(&ctx.cred, &new_dir, AccessMask::WRITE)?;
        let obj = ObjectRef {
            path: &old,
            kind: node.kind.object_kind(),
            dev: node.device(),
        };
        self.lsm().inode_rename(&ctx, &obj, &new)?;
        vfs.rename(&old, &new)
    }

    /// `execve(2)`: checks the exec bit and `bprm` hooks, then replaces the
    /// task's program image (recorded as its `exe` path).
    ///
    /// # Errors
    ///
    /// `EACCES` if the file is not executable or a module denies the exec.
    pub fn exec(&self, raw_path: &str) -> KernelResult<()> {
        let path = self.resolve_path(raw_path)?;
        let ctx = self.hook_ctx();
        let vfs = self.kernel.vfs();
        let node = vfs.resolve(&path)?;
        if !matches!(node.kind, InodeKind::Regular(_)) {
            return Err(KernelError::with_context(Errno::EACCES, "exec"));
        }
        dac_permission(&ctx.cred, &node, AccessMask::EXEC)?;
        self.lsm().bprm_check(&ctx, &path)?;
        self.task.set_exe(path.clone());
        // Re-snapshot: committed hooks observe the new image.
        let ctx = self.task.hook_ctx();
        self.lsm().bprm_committed(&ctx, &path);
        Ok(())
    }

    /// `fork(2)`: clones the task (credentials, cwd, exe, shared fd table)
    /// after the `task_alloc` hook approves.
    ///
    /// # Errors
    ///
    /// Denials from `task_alloc`.
    pub fn fork(&self) -> KernelResult<UserContext> {
        let ctx = self.hook_ctx();
        let child = self.kernel.tasks().fork_from(&self.task);
        if let Err(e) = self.lsm().task_alloc(&ctx, child.pid) {
            child.mark_dead();
            self.kernel.tasks().reap(child.pid);
            return Err(e);
        }
        Ok(UserContext::new(Arc::clone(&self.kernel), child))
    }

    /// `exit(2)`: closes all descriptors, notifies modules, reaps the task.
    pub fn exit(self) {
        let files = self.task.fds.lock().drain();
        for file in files {
            Self::release(&file);
        }
        self.task.mark_dead();
        self.lsm().task_free(self.task.pid);
        self.kernel.tasks().reap(self.task.pid);
    }

    /// `pipe(2)`: returns `(read_fd, write_fd)`.
    ///
    /// # Errors
    ///
    /// `EMFILE` when the fd table is full.
    pub fn pipe(&self) -> KernelResult<(Fd, Fd)> {
        let pipe = Pipe::new();
        let path = KPath::new("/proc/pipe")?;
        let read_end = Arc::new(OpenFile::new(
            path.clone(),
            FileBacking::PipeRead(Arc::clone(&pipe)),
            OpenFlags::read_only(),
        ));
        let write_end = Arc::new(OpenFile::new(
            path,
            FileBacking::PipeWrite(pipe),
            OpenFlags::write_only(),
        ));
        let mut fds = self.task.fds.lock();
        let r = fds.install(read_end)?;
        let w = fds.install(write_end)?;
        Ok((r, w))
    }

    /// `socket(2)` + `bind(2)` + `listen(2)` in one step.
    ///
    /// # Errors
    ///
    /// `EADDRINUSE`; denials from `socket_create`.
    pub fn listen(&self, family: SocketFamily, addr: &str) -> KernelResult<Arc<Listener>> {
        let ctx = self.hook_ctx();
        self.lsm().socket_create(&ctx, family)?;
        self.kernel.listeners().listen(family, addr)
    }

    /// `accept(2)`: blocks for a connection and installs the endpoint.
    ///
    /// # Errors
    ///
    /// `ECONNRESET` if the listener closes.
    pub fn accept(&self, listener: &Listener) -> KernelResult<Fd> {
        let endpoint = listener.accept()?;
        self.install_socket(endpoint)
    }

    /// `socket(2)` + `connect(2)`.
    ///
    /// # Errors
    ///
    /// `ECONNREFUSED`; denials from the socket hooks.
    pub fn connect(&self, family: SocketFamily, addr: &str) -> KernelResult<Fd> {
        let ctx = self.hook_ctx();
        self.lsm().socket_create(&ctx, family)?;
        self.lsm().socket_connect(&ctx, family, addr)?;
        let endpoint = self.kernel.listeners().connect(family, addr)?;
        self.install_socket(endpoint)
    }

    fn install_socket(&self, endpoint: Arc<crate::ipc::SocketEndpoint>) -> KernelResult<Fd> {
        let file = Arc::new(OpenFile::new(
            KPath::new("/proc/socket")?,
            FileBacking::Socket(endpoint),
            OpenFlags::read_write(),
        ));
        self.task.fds.lock().install(file)
    }

    /// `mmap(2)` of a regular file region.
    ///
    /// # Errors
    ///
    /// `EINVAL` for non-regular files; denials from `file_mmap`.
    pub fn mmap(&self, fd: Fd, offset: u64, len: usize) -> KernelResult<MappedRegion> {
        let file = self.get_file(fd)?;
        let ctx = self.hook_ctx();
        let node = file.inode()?;
        let data = match &node.kind {
            InodeKind::Regular(data) => Arc::clone(data),
            _ => return Err(KernelError::with_context(Errno::EINVAL, "mmap")),
        };
        let mut mask = AccessMask::READ;
        if file.flags.write {
            mask |= AccessMask::WRITE;
        }
        let obj = ObjectRef {
            path: &file.path,
            kind: ObjectKind::Regular,
            dev: None,
        };
        self.lsm().file_mmap(&ctx, &obj, mask)?;
        Ok(MappedRegion::new(data, offset as usize, len))
    }

    // ------------------------------------------------------------------
    // Convenience wrappers (libc-style helpers, still one syscall each).
    // ------------------------------------------------------------------

    /// Reads an entire file (`open` + `read` loop + `close`).
    ///
    /// # Errors
    ///
    /// Any error from the underlying syscalls.
    pub fn read_to_vec(&self, raw_path: &str) -> KernelResult<Vec<u8>> {
        let fd = self.open(raw_path, OpenFlags::read_only())?;
        let mut out = Vec::new();
        let mut buf = [0u8; 4096];
        loop {
            let n = match self.read(fd, &mut buf) {
                Ok(n) => n,
                Err(e) => {
                    self.close(fd)?;
                    return Err(e);
                }
            };
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        self.close(fd)?;
        Ok(out)
    }

    /// Creates/truncates a file and writes `data` (`open` + `write` + `close`).
    ///
    /// # Errors
    ///
    /// Any error from the underlying syscalls.
    pub fn write_file(&self, raw_path: &str, data: &[u8]) -> KernelResult<()> {
        let fd = self.open(raw_path, OpenFlags::create_new())?;
        let result = self.write(fd, data);
        self.close(fd)?;
        result.map(|_| ())
    }
}

impl std::fmt::Debug for UserContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserContext")
            .field("pid", &self.task.pid)
            .field("exe", &self.task.exe())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Credentials;
    use crate::lsm::SecurityModule;

    fn root_proc() -> UserContext {
        Kernel::boot_default().spawn(Credentials::root())
    }

    #[test]
    fn open_read_write_close_roundtrip() {
        let p = root_proc();
        let fd = p.open("/tmp/f", OpenFlags::create_new()).unwrap();
        assert_eq!(p.write(fd, b"hello").unwrap(), 5);
        p.close(fd).unwrap();
        assert_eq!(p.read_to_vec("/tmp/f").unwrap(), b"hello");
    }

    #[test]
    fn securityfs_chunked_read_serves_one_snapshot() {
        use std::sync::atomic::{AtomicU64, Ordering};

        // A node whose content changes on every render: without the
        // per-open snapshot, a chunked read would stitch bytes from
        // different renders into torn output.
        struct Mutating(AtomicU64);
        impl crate::securityfs::SecurityFsFile for Mutating {
            fn read_content(&self, _ctx: &crate::lsm::HookCtx) -> KernelResult<Vec<u8>> {
                let generation = self.0.fetch_add(1, Ordering::SeqCst);
                // 100 bytes per render, all stamped with the generation.
                Ok(format!("{generation:0>10}").repeat(10).into_bytes())
            }
        }
        let kernel = Kernel::boot_default();
        kernel
            .register_securityfs(
                &KPath::new("/sys/kernel/security/test/mutating").unwrap(),
                Arc::new(Mutating(AtomicU64::new(0))),
            )
            .unwrap();
        let p = kernel.spawn(Credentials::root());
        let fd = p
            .open("/sys/kernel/security/test/mutating", OpenFlags::read_only())
            .unwrap();
        // Read in 7-byte chunks so slices straddle render boundaries.
        let mut out = Vec::new();
        let mut buf = [0u8; 7];
        loop {
            let n = p.read(fd, &mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        p.close(fd).unwrap();
        assert_eq!(out, "0000000000".repeat(10).into_bytes());
        // A fresh open takes a fresh snapshot of the next generation.
        assert_eq!(
            p.read_to_vec("/sys/kernel/security/test/mutating").unwrap(),
            "0000000001".repeat(10).into_bytes()
        );
    }

    #[test]
    fn open_missing_without_create_fails() {
        let p = root_proc();
        assert_eq!(
            p.open("/tmp/none", OpenFlags::read_only())
                .unwrap_err()
                .errno(),
            Errno::ENOENT
        );
    }

    #[test]
    fn open_excl_on_existing_fails() {
        let p = root_proc();
        p.write_file("/tmp/f", b"x").unwrap();
        let mut flags = OpenFlags::create_new();
        flags.excl = true;
        assert_eq!(p.open("/tmp/f", flags).unwrap_err().errno(), Errno::EEXIST);
    }

    #[test]
    fn read_requires_read_flag() {
        let p = root_proc();
        let fd = p.open("/tmp/f", OpenFlags::create_new()).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(p.read(fd, &mut buf).unwrap_err().errno(), Errno::EBADF);
    }

    #[test]
    fn append_mode_appends() {
        let p = root_proc();
        p.write_file("/tmp/f", b"ab").unwrap();
        let mut flags = OpenFlags::write_only();
        flags.append = true;
        let fd = p.open("/tmp/f", flags).unwrap();
        p.write(fd, b"cd").unwrap();
        p.close(fd).unwrap();
        assert_eq!(p.read_to_vec("/tmp/f").unwrap(), b"abcd");
    }

    #[test]
    fn stat_reports_size_and_kind() {
        let p = root_proc();
        p.write_file("/tmp/f", b"12345").unwrap();
        let meta = p.stat("/tmp/f").unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.kind, ObjectKind::Regular);
    }

    #[test]
    fn mkdir_unlink_cycle() {
        let p = root_proc();
        p.mkdir("/tmp/d", Mode::EXEC).unwrap();
        assert!(p.stat("/tmp/d").is_ok());
        p.unlink("/tmp/d").unwrap();
        assert!(p.stat("/tmp/d").is_err());
    }

    #[test]
    fn fstat_and_ftruncate() {
        let p = root_proc();
        p.write_file("/tmp/f", b"12345").unwrap();
        let fd = p.open("/tmp/f", OpenFlags::read_write()).unwrap();
        let meta = p.fstat(fd).unwrap();
        assert_eq!(meta.size, 5);
        assert_eq!(meta.kind, ObjectKind::Regular);
        p.ftruncate(fd).unwrap();
        assert_eq!(p.fstat(fd).unwrap().size, 0);
        // Read-only descriptors cannot truncate.
        let ro = p.open("/tmp/f", OpenFlags::read_only()).unwrap();
        assert_eq!(p.ftruncate(ro).unwrap_err().errno(), Errno::EBADF);
        // Pipes have no inode metadata.
        let (r, _w) = p.pipe().unwrap();
        assert_eq!(p.fstat(r).unwrap_err().errno(), Errno::EBADF);
    }

    #[test]
    fn dup_shares_the_open_file_description() {
        let p = root_proc();
        p.write_file("/tmp/f", b"abcdef").unwrap();
        let fd = p.open("/tmp/f", OpenFlags::read_only()).unwrap();
        let dup = p.dup(fd).unwrap();
        assert_ne!(fd, dup);
        let mut buf = [0u8; 3];
        p.read(fd, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        p.read(dup, &mut buf).unwrap();
        assert_eq!(&buf, b"def", "shared offset advances across both fds");
        p.close(fd).unwrap();
        // The dup stays usable after the original closes.
        p.seek(dup, 0).unwrap();
        p.read(dup, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn dup2_replaces_and_closes_target() {
        let p = root_proc();
        p.write_file("/tmp/a", b"A").unwrap();
        p.write_file("/tmp/b", b"B").unwrap();
        let a = p.open("/tmp/a", OpenFlags::read_only()).unwrap();
        let b = p.open("/tmp/b", OpenFlags::read_only()).unwrap();
        assert_eq!(p.dup2(a, b).unwrap(), b);
        let mut buf = [0u8; 1];
        p.read(b, &mut buf).unwrap();
        assert_eq!(&buf, b"A", "b now refers to a's description");
        // dup2 onto itself is a no-op that validates the fd.
        assert_eq!(p.dup2(a, a).unwrap(), a);
        assert!(p.dup2(Fd(99), Fd(3)).is_err());
        // Far target slots are allocated on demand.
        let far = p.dup2(a, Fd(37)).unwrap();
        p.seek(far, 0).unwrap();
        p.read(far, &mut buf).unwrap();
        assert_eq!(&buf, b"A");
    }

    #[test]
    fn symlink_resolution_and_readlink() {
        let p = root_proc();
        p.write_file("/tmp/real", b"payload").unwrap();
        p.symlink("/tmp/real", "/tmp/link").unwrap();
        assert_eq!(p.read_to_vec("/tmp/link").unwrap(), b"payload");
        assert_eq!(p.readlink("/tmp/link").unwrap(), "/tmp/real");
        // stat follows; metadata is the target's.
        let meta = p.stat("/tmp/link").unwrap();
        assert_eq!(meta.size, 7);
        // readlink of a non-link is EINVAL.
        assert_eq!(p.readlink("/tmp/real").unwrap_err().errno(), Errno::EINVAL);
        // Relative target resolves against the link's directory.
        p.symlink("real", "/tmp/rel").unwrap();
        assert_eq!(p.read_to_vec("/tmp/rel").unwrap(), b"payload");
    }

    #[test]
    fn symlink_chains_and_loops() {
        let p = root_proc();
        p.write_file("/tmp/real", b"x").unwrap();
        p.symlink("/tmp/real", "/tmp/l1").unwrap();
        p.symlink("/tmp/l1", "/tmp/l2").unwrap();
        p.symlink("/tmp/l2", "/tmp/l3").unwrap();
        assert_eq!(p.read_to_vec("/tmp/l3").unwrap(), b"x");
        // A loop errors with ELOOP instead of hanging.
        p.symlink("/tmp/loop_b", "/tmp/loop_a").unwrap();
        p.symlink("/tmp/loop_a", "/tmp/loop_b").unwrap();
        assert_eq!(
            p.open("/tmp/loop_a", OpenFlags::read_only())
                .unwrap_err()
                .errno(),
            Errno::ELOOP
        );
    }

    #[test]
    fn symlink_through_directories() {
        let p = root_proc();
        p.mkdir("/tmp/realdir", Mode::EXEC).unwrap();
        p.write_file("/tmp/realdir/f", b"deep").unwrap();
        p.symlink("/tmp/realdir", "/tmp/dirlink").unwrap();
        assert_eq!(p.read_to_vec("/tmp/dirlink/f").unwrap(), b"deep");
        // Unlinking the link leaves the directory intact.
        p.unlink("/tmp/dirlink").unwrap();
        assert!(p.stat("/tmp/realdir/f").is_ok());
    }

    #[test]
    fn rename_moves_and_replaces() {
        let p = root_proc();
        p.write_file("/tmp/a", b"content").unwrap();
        p.rename("/tmp/a", "/tmp/b").unwrap();
        assert!(p.stat("/tmp/a").is_err());
        assert_eq!(p.read_to_vec("/tmp/b").unwrap(), b"content");
        // Replacing an existing regular file.
        p.write_file("/tmp/c", b"old").unwrap();
        p.rename("/tmp/b", "/tmp/c").unwrap();
        assert_eq!(p.read_to_vec("/tmp/c").unwrap(), b"content");
        // Renaming into a directory slot fails.
        p.mkdir("/tmp/d", Mode::EXEC).unwrap();
        assert_eq!(
            p.rename("/tmp/c", "/tmp/d").unwrap_err().errno(),
            Errno::EEXIST
        );
        // Renaming a directory into its own subtree fails.
        assert_eq!(
            p.rename("/tmp/d", "/tmp/d/x").unwrap_err().errno(),
            Errno::EINVAL
        );
        // Missing source.
        assert_eq!(
            p.rename("/tmp/none", "/tmp/x").unwrap_err().errno(),
            Errno::ENOENT
        );
    }

    #[test]
    fn rename_directory_moves_subtree() {
        let p = root_proc();
        p.mkdir("/tmp/src", Mode::EXEC).unwrap();
        p.write_file("/tmp/src/f", b"x").unwrap();
        p.rename("/tmp/src", "/tmp/dst").unwrap();
        assert_eq!(p.read_to_vec("/tmp/dst/f").unwrap(), b"x");
        assert!(p.stat("/tmp/src").is_err());
    }

    #[test]
    fn exec_requires_exec_bit() {
        let p = root_proc();
        p.write_file("/usr/bin/app", b"#!").unwrap();
        // Files are created 0644: exec must fail even for root (no
        // DAC_OVERRIDE shortcut for exec without any x bit on Linux; our DAC
        // model grants root via DacOverride, so drop to a plain user).
        let kernel = Arc::clone(p.kernel());
        let user = kernel.spawn(Credentials::user(1000, 1000));
        assert!(user.exec("/usr/bin/app").is_err());
    }

    #[test]
    fn exec_sets_exe_path() {
        let p = root_proc();
        p.write_file("/usr/bin/app", b"#!").unwrap();
        // chmod: recreate with exec mode via vfs for simplicity
        let kernel = Arc::clone(p.kernel());
        kernel
            .vfs()
            .unlink(&KPath::new("/usr/bin/app").unwrap())
            .unwrap();
        kernel
            .vfs()
            .create_file(
                &KPath::new("/usr/bin/app").unwrap(),
                Mode::EXEC,
                crate::cred::Uid::ROOT,
                crate::cred::Gid(0),
            )
            .unwrap();
        p.exec("/usr/bin/app").unwrap();
        assert_eq!(p.task().exe().unwrap().as_str(), "/usr/bin/app");
    }

    #[test]
    fn fork_child_is_independent_process() {
        let p = root_proc();
        let child = p.fork().unwrap();
        assert_ne!(child.pid(), p.pid());
        let kernel = Arc::clone(p.kernel());
        assert_eq!(kernel.tasks().live_count(), 2);
        child.exit();
        assert_eq!(kernel.tasks().live_count(), 1);
    }

    #[test]
    fn pipe_between_fork_parent_and_child() {
        let p = root_proc();
        let (r, w) = p.pipe().unwrap();
        let child = p.fork().unwrap();
        child.write(w, b"from-child").unwrap();
        let mut buf = [0u8; 16];
        let n = p.read(r, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"from-child");
        child.exit();
    }

    #[test]
    fn pipe_eof_when_all_write_ends_close() {
        let p = root_proc();
        let (r, w) = p.pipe().unwrap();
        p.write(w, b"x").unwrap();
        p.close(w).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(p.read(r, &mut buf).unwrap(), 1);
        assert_eq!(p.read(r, &mut buf).unwrap(), 0);
    }

    #[test]
    fn socket_connect_and_transfer() {
        let p = root_proc();
        let listener = p.listen(SocketFamily::Unix, "/run/svc.sock").unwrap();
        let client = p.fork().unwrap();
        let cfd = client.connect(SocketFamily::Unix, "/run/svc.sock").unwrap();
        let sfd = p.accept(&listener).unwrap();
        client.write(cfd, b"req").unwrap();
        let mut buf = [0u8; 3];
        p.read(sfd, &mut buf).unwrap();
        assert_eq!(&buf, b"req");
        client.exit();
    }

    #[test]
    fn mmap_shares_file_content() {
        let p = root_proc();
        p.write_file("/tmp/f", b"abcdef").unwrap();
        let fd = p.open("/tmp/f", OpenFlags::read_only()).unwrap();
        let map = p.mmap(fd, 0, 6).unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(map.read(0, &mut buf), 6);
        assert_eq!(&buf, b"abcdef");
        p.close(fd).unwrap();
    }

    #[test]
    fn dac_blocks_other_users() {
        let kernel = Kernel::boot_default();
        let alice = kernel.spawn(Credentials::user(100, 100));
        let bob = kernel.spawn(Credentials::user(200, 200));
        kernel
            .vfs()
            .mkdir_all(&KPath::new("/home/alice").unwrap())
            .unwrap();
        // Give alice a writable home dir.
        kernel
            .vfs()
            .unlink(&KPath::new("/home/alice").unwrap())
            .unwrap();
        kernel
            .vfs()
            .mkdir(
                &KPath::new("/home/alice").unwrap(),
                Mode::EXEC,
                crate::cred::Uid(100),
                crate::cred::Gid(100),
            )
            .unwrap();
        alice.write_file("/home/alice/secret", b"s").unwrap();
        // Files are created 0644: others may read but not write.
        assert_eq!(
            bob.open("/home/alice/secret", OpenFlags::write_only())
                .unwrap_err()
                .errno(),
            Errno::EACCES
        );
        // Nor may bob create files in alice's directory.
        assert_eq!(
            bob.write_file("/home/alice/planted", b"x")
                .unwrap_err()
                .errno(),
            Errno::EACCES
        );
        assert_eq!(alice.read_to_vec("/home/alice/secret").unwrap(), b"s");
    }

    #[test]
    fn lsm_deny_propagates_through_open() {
        struct DenyDevice;
        impl SecurityModule for DenyDevice {
            fn name(&self) -> &'static str {
                "deny-device"
            }
            fn file_open(
                &self,
                _ctx: &HookCtx,
                obj: &ObjectRef<'_>,
                _mask: AccessMask,
            ) -> KernelResult<()> {
                if obj.kind == ObjectKind::CharDevice {
                    Err(KernelError::with_context(Errno::EACCES, "deny-device"))
                } else {
                    Ok(())
                }
            }
        }
        let kernel = crate::kernel::KernelBuilder::new()
            .security_module(Arc::new(DenyDevice))
            .boot();
        let p = kernel.spawn(Credentials::root());
        kernel
            .vfs()
            .mknod(
                &KPath::new("/dev/null0").unwrap(),
                crate::types::DeviceId::new(1, 3),
                Mode::REGULAR,
                crate::cred::Uid::ROOT,
                crate::cred::Gid(0),
            )
            .unwrap();
        let err = p.open("/dev/null0", OpenFlags::read_only()).unwrap_err();
        assert_eq!(err.context(), Some("deny-device"));
        // Regular files still open fine.
        assert!(p.open("/tmp/ok", OpenFlags::create_new()).is_ok());
    }

    #[test]
    fn relative_paths_resolve_against_cwd() {
        let p = root_proc();
        p.mkdir("/tmp/work", Mode::EXEC).unwrap();
        p.chdir("/tmp/work").unwrap();
        p.write_file("data.txt", b"d").unwrap();
        assert!(p.stat("/tmp/work/data.txt").is_ok());
        assert_eq!(p.read_to_vec("data.txt").unwrap(), b"d");
    }
}
