//! The Linux Security Module (LSM) framework of the simulated kernel.
//!
//! Mirrors the real framework's shape: security modules implement the
//! [`SecurityModule`] hook trait; the kernel owns an ordered [`LsmStack`]
//! configured at "boot" (cf. `CONFIG_LSM="SACK,AppArmor"`); every mediated
//! operation consults the stack in registration order and the **first module
//! to return an error denies the operation** (white-list combination, as the
//! paper describes for SACK-before-AppArmor stacking).
//!
//! Hooks default to "allow" so modules only implement what they mediate,
//! exactly like the default hook behaviour in `security/security.c`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cred::{Capability, Credentials};
use crate::error::KernelResult;
use crate::path::KPath;
use crate::trace::{TraceEvent, TraceHook, TraceHub, TraceVerdict};
use crate::types::{DeviceId, Pid};

/// Requested access rights, the `MAY_*` mask passed to file hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessMask(u8);

impl AccessMask {
    /// `MAY_READ`.
    pub const READ: AccessMask = AccessMask(0b0001);
    /// `MAY_WRITE`.
    pub const WRITE: AccessMask = AccessMask(0b0010);
    /// `MAY_EXEC`.
    pub const EXEC: AccessMask = AccessMask(0b0100);
    /// `MAY_APPEND`.
    pub const APPEND: AccessMask = AccessMask(0b1000);

    /// The empty mask.
    pub fn empty() -> Self {
        AccessMask(0)
    }

    /// Union of two masks.
    pub fn union(self, other: AccessMask) -> AccessMask {
        AccessMask(self.0 | other.0)
    }

    /// True if every bit of `other` is present in `self`.
    pub fn contains(self, other: AccessMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if `self` and `other` share any bit.
    pub fn intersects(self, other: AccessMask) -> bool {
        self.0 & other.0 != 0
    }

    /// True if no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bits (for compact storage in rule tables).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs a mask from raw bits (extraneous bits are masked off).
    pub fn from_bits(bits: u8) -> AccessMask {
        AccessMask(bits & 0b1111)
    }
}

impl std::ops::BitOr for AccessMask {
    type Output = AccessMask;
    fn bitor(self, rhs: AccessMask) -> AccessMask {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for AccessMask {
    fn bitor_assign(&mut self, rhs: AccessMask) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for AccessMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, ch) in [
            (AccessMask::READ, 'r'),
            (AccessMask::WRITE, 'w'),
            (AccessMask::EXEC, 'x'),
            (AccessMask::APPEND, 'a'),
        ] {
            if self.contains(bit) {
                write!(f, "{ch}")?;
                any = true;
            }
        }
        if !any {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// Object classes distinguished by the hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Character device node.
    CharDevice,
    /// securityfs pseudo-file.
    SecurityFs,
    /// Anonymous pipe endpoint.
    Pipe,
    /// Socket endpoint.
    Socket,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Regular => "file",
            ObjectKind::Directory => "dir",
            ObjectKind::CharDevice => "chardev",
            ObjectKind::SecurityFs => "securityfs",
            ObjectKind::Pipe => "pipe",
            ObjectKind::Socket => "socket",
        };
        f.write_str(s)
    }
}

/// The subject of a hook call: who is performing the access.
///
/// A snapshot of the task's identity taken at syscall entry, so hooks never
/// need to lock the process table (mirrors `current_cred()` semantics).
#[derive(Debug, Clone)]
pub struct HookCtx {
    /// Calling task.
    pub pid: Pid,
    /// The task's credentials at syscall entry.
    pub cred: Credentials,
    /// Path of the task's executable (`/proc/self/exe`), if it has exec'd.
    pub exe: Option<KPath>,
}

impl HookCtx {
    /// Creates a context for a task.
    pub fn new(pid: Pid, cred: Credentials, exe: Option<KPath>) -> Self {
        HookCtx { pid, cred, exe }
    }
}

/// The object of a hook call: what is being accessed.
#[derive(Debug, Clone)]
pub struct ObjectRef<'a> {
    /// The path the object was reached through.
    pub path: &'a KPath,
    /// Object class.
    pub kind: ObjectKind,
    /// Device identity for char-device nodes.
    pub dev: Option<DeviceId>,
}

impl<'a> ObjectRef<'a> {
    /// A regular-file object reference.
    pub fn regular(path: &'a KPath) -> Self {
        ObjectRef {
            path,
            kind: ObjectKind::Regular,
            dev: None,
        }
    }

    /// A char-device object reference.
    pub fn device(path: &'a KPath, dev: DeviceId) -> Self {
        ObjectRef {
            path,
            kind: ObjectKind::CharDevice,
            dev: Some(dev),
        }
    }
}

/// Network address families mediated by socket hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocketFamily {
    /// `AF_UNIX`.
    Unix,
    /// `AF_INET` (TCP loopback in the simulation).
    Inet,
}

impl fmt::Display for SocketFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocketFamily::Unix => f.write_str("AF_UNIX"),
            SocketFamily::Inet => f.write_str("AF_INET"),
        }
    }
}

/// The LSM hook interface.
///
/// Every method has an allow-by-default implementation; modules override the
/// hooks they mediate. Methods return [`KernelResult<()>`]: `Err(errno)`
/// denies and short-circuits the rest of the stack.
#[allow(unused_variables)]
pub trait SecurityModule: Send + Sync {
    /// Stable module name, used in stacking configuration and error contexts.
    fn name(&self) -> &'static str;

    /// Mediates `open(2)`. `mask` reflects the open flags.
    fn file_open(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, mask: AccessMask) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates each `read(2)`/`write(2)` on an open file.
    fn file_permission(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        mask: AccessMask,
    ) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `ioctl(2)`.
    fn file_ioctl(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, cmd: u32) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `mmap(2)` of a file.
    fn file_mmap(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, mask: AccessMask) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates creation of a new filesystem object in `parent`.
    fn inode_create(
        &self,
        ctx: &HookCtx,
        parent: &KPath,
        name: &str,
        kind: ObjectKind,
    ) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `unlink(2)`/`rmdir(2)` of `obj`.
    fn inode_unlink(&self, ctx: &HookCtx, obj: &ObjectRef<'_>) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `rename(2)`; both the old object and the new path are
    /// checked.
    fn inode_rename(&self, ctx: &HookCtx, old: &ObjectRef<'_>, new: &KPath) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `stat(2)`-style attribute reads.
    fn inode_getattr(&self, ctx: &HookCtx, obj: &ObjectRef<'_>) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `exec(2)`; modules typically switch the task's domain here.
    fn bprm_check(&self, ctx: &HookCtx, exe: &KPath) -> KernelResult<()> {
        Ok(())
    }

    /// Notifies of a successful exec, after the domain transition point.
    fn bprm_committed(&self, ctx: &HookCtx, exe: &KPath) {}

    /// Mediates `fork(2)`; `child` is the about-to-exist task.
    fn task_alloc(&self, ctx: &HookCtx, child: Pid) -> KernelResult<()> {
        Ok(())
    }

    /// Notifies of task exit, so modules free per-task state.
    fn task_free(&self, pid: Pid) {}

    /// Mediates capability use (`capable()`).
    fn capable(&self, ctx: &HookCtx, cap: Capability) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `socket(2)`.
    fn socket_create(&self, ctx: &HookCtx, family: SocketFamily) -> KernelResult<()> {
        Ok(())
    }

    /// Mediates `connect(2)`. `addr` is the bound path (AF_UNIX) or
    /// `"tcp:<port>"` (AF_INET).
    fn socket_connect(&self, ctx: &HookCtx, family: SocketFamily, addr: &str) -> KernelResult<()> {
        Ok(())
    }
}

/// Per-hook invocation counters, for tests and overhead analysis.
#[derive(Debug, Default)]
pub struct LsmStats {
    /// `file_open` calls.
    pub file_open: AtomicU64,
    /// `file_permission` calls.
    pub file_permission: AtomicU64,
    /// `file_ioctl` calls.
    pub file_ioctl: AtomicU64,
    /// Denials across all hooks.
    pub denials: AtomicU64,
}

impl LsmStats {
    /// Total denials observed.
    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Total `file_permission` dispatches.
    pub fn file_permission_calls(&self) -> u64 {
        self.file_permission.load(Ordering::Relaxed)
    }
}

/// Ordered stack of security modules.
///
/// Constructed once at kernel boot ([`crate::kernel::KernelBuilder`]); the
/// order is the checking order, so putting SACK first reproduces the paper's
/// `CONFIG_LSM="SACK,AppArmor,..."` configuration.
pub struct LsmStack {
    modules: Vec<Arc<dyn SecurityModule>>,
    stats: LsmStats,
    trace: Arc<TraceHub>,
}

/// Dispatch with `hook_enter`/`hook_exit` tracepoints around the module walk.
/// The `trace.enabled()` relaxed load + branch is the *entire* disabled-path
/// cost; timestamps and events are only constructed when tracing is on.
macro_rules! dispatch {
    ($self:ident, $tp:expr, $counter:ident, $hook:ident ( $($arg:expr),* )) => {{
        $self.stats.$counter.fetch_add(1, Ordering::Relaxed);
        dispatch!($self, $tp, $hook($($arg),*))
    }};
    ($self:ident, $tp:expr, $hook:ident ( $($arg:expr),* )) => {{
        let start = if $self.trace.enabled() {
            $self.trace.emit(&TraceEvent::HookEnter { hook: $tp });
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut result = Ok(());
        for m in &$self.modules {
            if let Err(e) = m.$hook($($arg),*) {
                $self.stats.denials.fetch_add(1, Ordering::Relaxed);
                result = Err(e);
                break;
            }
        }
        if let Some(t0) = start {
            $self.trace.emit(&TraceEvent::HookExit {
                hook: $tp,
                verdict: if result.is_ok() {
                    TraceVerdict::Allow
                } else {
                    TraceVerdict::Deny
                },
                latency_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        result
    }};
}

impl LsmStack {
    /// Creates a stack with the given checking order and a private
    /// (disabled) trace hub.
    pub fn new(modules: Vec<Arc<dyn SecurityModule>>) -> Self {
        LsmStack::with_trace(modules, TraceHub::new())
    }

    /// Creates a stack wired to an externally owned trace hub, so consumers
    /// registered on the hub observe this stack's dispatches.
    pub fn with_trace(modules: Vec<Arc<dyn SecurityModule>>, trace: Arc<TraceHub>) -> Self {
        LsmStack {
            modules,
            stats: LsmStats::default(),
            trace,
        }
    }

    /// An empty stack (no MAC, DAC only) — the paper's "original system
    /// without LSM framework" baseline.
    pub fn empty() -> Self {
        LsmStack::new(Vec::new())
    }

    /// The tracepoint hub observing this stack.
    pub fn trace(&self) -> &Arc<TraceHub> {
        &self.trace
    }

    /// Names of the stacked modules, in checking order.
    pub fn module_names(&self) -> Vec<&'static str> {
        self.modules.iter().map(|m| m.name()).collect()
    }

    /// Number of stacked modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True if no modules are stacked.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Hook counters.
    pub fn stats(&self) -> &LsmStats {
        &self.stats
    }

    /// Dispatches `file_open`.
    pub fn file_open(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        mask: AccessMask,
    ) -> KernelResult<()> {
        dispatch!(
            self,
            TraceHook::FileOpen,
            file_open,
            file_open(ctx, obj, mask)
        )
    }

    /// Dispatches `file_permission`.
    pub fn file_permission(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        mask: AccessMask,
    ) -> KernelResult<()> {
        dispatch!(
            self,
            TraceHook::FilePermission,
            file_permission,
            file_permission(ctx, obj, mask)
        )
    }

    /// Dispatches `file_ioctl`.
    pub fn file_ioctl(&self, ctx: &HookCtx, obj: &ObjectRef<'_>, cmd: u32) -> KernelResult<()> {
        dispatch!(
            self,
            TraceHook::FileIoctl,
            file_ioctl,
            file_ioctl(ctx, obj, cmd)
        )
    }

    /// Dispatches `file_mmap`.
    pub fn file_mmap(
        &self,
        ctx: &HookCtx,
        obj: &ObjectRef<'_>,
        mask: AccessMask,
    ) -> KernelResult<()> {
        dispatch!(self, TraceHook::FileMmap, file_mmap(ctx, obj, mask))
    }

    /// Dispatches `inode_create`.
    pub fn inode_create(
        &self,
        ctx: &HookCtx,
        parent: &KPath,
        name: &str,
        kind: ObjectKind,
    ) -> KernelResult<()> {
        dispatch!(
            self,
            TraceHook::InodeCreate,
            inode_create(ctx, parent, name, kind)
        )
    }

    /// Dispatches `inode_unlink`.
    pub fn inode_unlink(&self, ctx: &HookCtx, obj: &ObjectRef<'_>) -> KernelResult<()> {
        dispatch!(self, TraceHook::InodeUnlink, inode_unlink(ctx, obj))
    }

    /// Dispatches `inode_rename`.
    pub fn inode_rename(
        &self,
        ctx: &HookCtx,
        old: &ObjectRef<'_>,
        new: &KPath,
    ) -> KernelResult<()> {
        dispatch!(self, TraceHook::InodeRename, inode_rename(ctx, old, new))
    }

    /// Dispatches `inode_getattr`.
    pub fn inode_getattr(&self, ctx: &HookCtx, obj: &ObjectRef<'_>) -> KernelResult<()> {
        dispatch!(self, TraceHook::InodeGetattr, inode_getattr(ctx, obj))
    }

    /// Dispatches `bprm_check`.
    pub fn bprm_check(&self, ctx: &HookCtx, exe: &KPath) -> KernelResult<()> {
        dispatch!(self, TraceHook::BprmCheck, bprm_check(ctx, exe))
    }

    /// Dispatches `bprm_committed` (notification, cannot deny).
    pub fn bprm_committed(&self, ctx: &HookCtx, exe: &KPath) {
        let start = self.trace_enter(TraceHook::BprmCommitted);
        for m in &self.modules {
            m.bprm_committed(ctx, exe);
        }
        self.trace_exit(TraceHook::BprmCommitted, start);
    }

    /// Dispatches `task_alloc`.
    pub fn task_alloc(&self, ctx: &HookCtx, child: Pid) -> KernelResult<()> {
        dispatch!(self, TraceHook::TaskAlloc, task_alloc(ctx, child))
    }

    /// Dispatches `task_free` (notification, cannot deny).
    pub fn task_free(&self, pid: Pid) {
        let start = self.trace_enter(TraceHook::TaskFree);
        for m in &self.modules {
            m.task_free(pid);
        }
        self.trace_exit(TraceHook::TaskFree, start);
    }

    /// `hook_enter` probe for notification hooks (no verdict).
    fn trace_enter(&self, hook: TraceHook) -> Option<std::time::Instant> {
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::HookEnter { hook });
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// `hook_exit` probe for notification hooks; they cannot deny.
    fn trace_exit(&self, hook: TraceHook, start: Option<std::time::Instant>) {
        if let Some(t0) = start {
            self.trace.emit(&TraceEvent::HookExit {
                hook,
                verdict: TraceVerdict::Allow,
                latency_ns: t0.elapsed().as_nanos() as u64,
            });
        }
    }

    /// Dispatches `capable`.
    pub fn capable(&self, ctx: &HookCtx, cap: Capability) -> KernelResult<()> {
        dispatch!(self, TraceHook::Capable, capable(ctx, cap))
    }

    /// Dispatches `socket_create`.
    pub fn socket_create(&self, ctx: &HookCtx, family: SocketFamily) -> KernelResult<()> {
        dispatch!(self, TraceHook::SocketCreate, socket_create(ctx, family))
    }

    /// Dispatches `socket_connect`.
    pub fn socket_connect(
        &self,
        ctx: &HookCtx,
        family: SocketFamily,
        addr: &str,
    ) -> KernelResult<()> {
        dispatch!(
            self,
            TraceHook::SocketConnect,
            socket_connect(ctx, family, addr)
        )
    }
}

impl fmt::Debug for LsmStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LsmStack")
            .field("modules", &self.module_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{Errno, KernelError};

    struct AllowAll;
    impl SecurityModule for AllowAll {
        fn name(&self) -> &'static str {
            "allow-all"
        }
    }

    struct DenyOpen;
    impl SecurityModule for DenyOpen {
        fn name(&self) -> &'static str {
            "deny-open"
        }
        fn file_open(&self, _: &HookCtx, _: &ObjectRef<'_>, _: AccessMask) -> KernelResult<()> {
            Err(KernelError::with_context(Errno::EACCES, "deny-open"))
        }
    }

    fn ctx() -> HookCtx {
        HookCtx::new(Pid(1), Credentials::root(), None)
    }

    #[test]
    fn access_mask_ops() {
        let rw = AccessMask::READ | AccessMask::WRITE;
        assert!(rw.contains(AccessMask::READ));
        assert!(rw.contains(AccessMask::WRITE));
        assert!(!rw.contains(AccessMask::EXEC));
        assert!(rw.intersects(AccessMask::WRITE));
        assert!(!AccessMask::empty().intersects(rw));
        assert_eq!(rw.to_string(), "rw");
        assert_eq!(AccessMask::empty().to_string(), "-");
        assert_eq!(AccessMask::from_bits(rw.bits()), rw);
    }

    #[test]
    fn first_deny_wins() {
        let stack = LsmStack::new(vec![Arc::new(DenyOpen), Arc::new(AllowAll)]);
        let path = KPath::new("/etc/passwd").unwrap();
        let obj = ObjectRef::regular(&path);
        let err = stack.file_open(&ctx(), &obj, AccessMask::READ).unwrap_err();
        assert_eq!(err.errno(), Errno::EACCES);
        assert_eq!(err.context(), Some("deny-open"));
        assert_eq!(stack.stats().denials(), 1);
    }

    #[test]
    fn empty_stack_allows_everything() {
        let stack = LsmStack::empty();
        assert!(stack.is_empty());
        let path = KPath::new("/x").unwrap();
        let obj = ObjectRef::regular(&path);
        assert!(stack.file_open(&ctx(), &obj, AccessMask::WRITE).is_ok());
        assert!(stack.capable(&ctx(), Capability::MacAdmin).is_ok());
    }

    #[test]
    fn module_order_is_checking_order() {
        let stack = LsmStack::new(vec![Arc::new(AllowAll), Arc::new(DenyOpen)]);
        assert_eq!(stack.module_names(), vec!["allow-all", "deny-open"]);
        assert_eq!(stack.len(), 2);
    }

    #[test]
    fn unimplemented_hooks_default_to_allow() {
        let stack = LsmStack::new(vec![Arc::new(DenyOpen)]);
        let path = KPath::new("/x").unwrap();
        let obj = ObjectRef::regular(&path);
        // DenyOpen only denies file_open; all other hooks pass.
        assert!(stack
            .file_permission(&ctx(), &obj, AccessMask::READ)
            .is_ok());
        assert!(stack.file_ioctl(&ctx(), &obj, 0xABCD).is_ok());
        assert!(stack.bprm_check(&ctx(), &path).is_ok());
    }

    #[test]
    fn stats_count_dispatches() {
        let stack = LsmStack::new(vec![Arc::new(AllowAll)]);
        let path = KPath::new("/x").unwrap();
        let obj = ObjectRef::regular(&path);
        for _ in 0..5 {
            stack
                .file_permission(&ctx(), &obj, AccessMask::READ)
                .unwrap();
        }
        assert_eq!(stack.stats().file_permission_calls(), 5);
    }
}
