//! Core identifier newtypes shared across the simulated kernel.

use std::fmt;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// Inode number within the single simulated filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InodeId(pub u64);

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// File descriptor index within a task's fd table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd:{}", self.0)
    }
}

/// Character-device identity (major, minor), as in `dev_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId {
    /// Major number, selecting the driver.
    pub major: u32,
    /// Minor number, selecting the device instance.
    pub minor: u32,
}

impl DeviceId {
    /// Creates a device id from major/minor numbers.
    pub fn new(major: u32, minor: u32) -> Self {
        DeviceId { major, minor }
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:{}:{}", self.major, self.minor)
    }
}

/// Unix permission bits (the low 12 bits of `st_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode(pub u16);

impl Mode {
    /// `0o644` — owner read/write, group/other read.
    pub const REGULAR: Mode = Mode(0o644);
    /// `0o755` — typical directory or executable mode.
    pub const EXEC: Mode = Mode(0o755);
    /// `0o600` — owner-only read/write (securityfs default).
    pub const PRIVATE: Mode = Mode(0o600);

    /// True if the owner-execute bit is set.
    pub fn owner_exec(self) -> bool {
        self.0 & 0o100 != 0
    }

    /// Permission bits for the given class: `0` = owner, `1` = group, `2` = other.
    pub fn class_bits(self, class: u8) -> u16 {
        debug_assert!(class < 3);
        (self.0 >> (6 - 3 * u16::from(class))) & 0o7
    }
}

impl Default for Mode {
    fn default() -> Self {
        Mode::REGULAR
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_class_bits() {
        let m = Mode(0o754);
        assert_eq!(m.class_bits(0), 0o7);
        assert_eq!(m.class_bits(1), 0o5);
        assert_eq!(m.class_bits(2), 0o4);
    }

    #[test]
    fn mode_exec_bit() {
        assert!(Mode::EXEC.owner_exec());
        assert!(!Mode::REGULAR.owner_exec());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pid(42).to_string(), "pid:42");
        assert_eq!(InodeId(7).to_string(), "ino:7");
        assert_eq!(Fd(3).to_string(), "fd:3");
        assert_eq!(DeviceId::new(10, 1).to_string(), "dev:10:1");
        assert_eq!(Mode(0o644).to_string(), "0644");
    }
}
