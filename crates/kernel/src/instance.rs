//! Fleet instance identity and registry.
//!
//! Every booted [`Kernel`](crate::kernel::Kernel) is stamped with a
//! process-wide-unique, monotonic [`InstanceId`] — the fleet analogue of a
//! vehicle's VIN. The telemetry plane (`sack-fleet`) keys every exported
//! snapshot by this id, so aggregation trees can merge partial folds from
//! any subset of instances without collisions.
//!
//! [`InstanceRegistry`] is the aggregator-side membership table: it holds
//! only [`Weak`] kernel handles grouped into named cohorts, so a registered
//! instance that shuts down (its last `Arc` dropped) simply vanishes from
//! the next fold instead of pinning the kernel alive or panicking the
//! aggregation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use crate::kernel::Kernel;

/// Process-wide monotonic id source; instance 0 is reserved as "unset".
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// Unique identity of one booted kernel instance (one vehicle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// The reserved "no instance" id, used by telemetry captured from a
    /// tracing layer that was never attached to a booted kernel.
    pub const UNSET: InstanceId = InstanceId(0);

    /// Allocates the next process-wide-unique instance id.
    pub fn next() -> InstanceId {
        InstanceId(NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One registered fleet member: a weak kernel handle plus its cohort label.
#[derive(Debug, Clone)]
pub struct InstanceEntry {
    /// The member's instance id (denormalised so a dead handle still names
    /// itself in diagnostics).
    pub id: InstanceId,
    /// Cohort label the member was registered under.
    pub cohort: String,
    /// The kernel, held weakly: a dead instance is skipped, never unwrapped.
    pub kernel: Weak<Kernel>,
}

/// Aggregator-side membership table, grouped into named cohorts.
///
/// Registration never takes ownership: the registry holds [`Weak`] handles,
/// so instance shutdown mid-fold is a skip, not an error.
#[derive(Default)]
pub struct InstanceRegistry {
    members: RwLock<BTreeMap<InstanceId, InstanceEntry>>,
}

impl InstanceRegistry {
    /// Creates an empty registry.
    pub fn new() -> InstanceRegistry {
        InstanceRegistry::default()
    }

    /// Registers `kernel` under `cohort`, keyed by its instance id.
    /// Re-registering the same instance moves it to the new cohort.
    pub fn register(&self, kernel: &Arc<Kernel>, cohort: &str) -> InstanceId {
        let id = kernel.instance();
        self.members.write().insert(
            id,
            InstanceEntry {
                id,
                cohort: cohort.to_string(),
                kernel: Arc::downgrade(kernel),
            },
        );
        id
    }

    /// Removes an instance; unknown ids are ignored.
    pub fn unregister(&self, id: InstanceId) {
        self.members.write().remove(&id);
    }

    /// Registered member count, live or dead.
    pub fn len(&self) -> usize {
        self.members.read().len()
    }

    /// True when no instance is registered.
    pub fn is_empty(&self) -> bool {
        self.members.read().is_empty()
    }

    /// Snapshot of every entry, in instance-id order.
    pub fn entries(&self) -> Vec<InstanceEntry> {
        self.members.read().values().cloned().collect()
    }

    /// Snapshot of the entries of one cohort, in instance-id order.
    pub fn cohort_entries(&self, cohort: &str) -> Vec<InstanceEntry> {
        self.members
            .read()
            .values()
            .filter(|e| e.cohort == cohort)
            .cloned()
            .collect()
    }

    /// The distinct cohort labels, sorted.
    pub fn cohorts(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .members
            .read()
            .values()
            .map(|e| e.cohort.clone())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Drops entries whose kernel has died; returns how many were reaped.
    pub fn reap_dead(&self) -> usize {
        let mut members = self.members.write();
        let before = members.len();
        members.retain(|_, e| e.kernel.strong_count() > 0);
        before - members.len()
    }
}

impl fmt::Debug for InstanceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let members = self.members.read();
        f.debug_struct("InstanceRegistry")
            .field("members", &members.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;

    #[test]
    fn boot_assigns_unique_monotonic_ids() {
        let a = KernelBuilder::new().boot();
        let b = KernelBuilder::new().boot();
        assert_ne!(a.instance(), b.instance());
        assert!(a.instance() < b.instance());
        assert_ne!(a.instance(), InstanceId::UNSET);
    }

    #[test]
    fn registry_groups_cohorts_and_reaps_dead() {
        let registry = InstanceRegistry::new();
        let a = KernelBuilder::new().boot();
        let b = KernelBuilder::new().boot();
        registry.register(&a, "canary");
        registry.register(&b, "wave-1");
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.cohorts(), vec!["canary", "wave-1"]);
        assert_eq!(registry.cohort_entries("canary").len(), 1);

        drop(b);
        // The dead entry is still listed until reaped, but upgrades fail.
        let dead: Vec<_> = registry
            .entries()
            .into_iter()
            .filter(|e| e.kernel.upgrade().is_none())
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(registry.reap_dead(), 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn reregistering_moves_cohort() {
        let registry = InstanceRegistry::new();
        let a = KernelBuilder::new().boot();
        registry.register(&a, "canary");
        registry.register(&a, "wave-1");
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.cohorts(), vec!["wave-1"]);
    }
}
