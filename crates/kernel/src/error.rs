//! Kernel error model: errno values and the [`KernelError`] type.
//!
//! Every simulated syscall returns [`KernelResult`], mirroring the Linux
//! convention of returning a negative errno. Security modules deny access by
//! returning an errno (typically [`Errno::EACCES`] or [`Errno::EPERM`]),
//! which propagates out of the syscall unchanged, exactly as an LSM hook's
//! non-zero return value would in Linux.

use std::error::Error;
use std::fmt;

/// Subset of Linux errno values used by the simulated kernel.
///
/// The numeric discriminants match the x86-64 Linux ABI so that traces and
/// logs are directly comparable with real-kernel output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// I/O error.
    EIO = 5,
    /// No such device or address.
    ENXIO = 6,
    /// Bad file descriptor.
    EBADF = 9,
    /// Try again (non-blocking operation would block).
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// Device or resource busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// No such device.
    ENODEV = 19,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files in system.
    ENFILE = 23,
    /// Too many open files.
    EMFILE = 24,
    /// Inappropriate ioctl for device.
    ENOTTY = 25,
    /// File too large.
    EFBIG = 27,
    /// No space left on device.
    ENOSPC = 28,
    /// Broken pipe.
    EPIPE = 32,
    /// File name too long.
    ENAMETOOLONG = 36,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Too many symbolic links encountered.
    ELOOP = 40,
    /// Not a socket.
    ENOTSOCK = 88,
    /// Address already in use.
    EADDRINUSE = 98,
    /// Connection reset by peer.
    ECONNRESET = 104,
    /// Transport endpoint is not connected.
    ENOTCONN = 107,
    /// Connection refused.
    ECONNREFUSED = 111,
}

impl Errno {
    /// Short symbolic name, e.g. `"EACCES"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EIO => "EIO",
            Errno::ENXIO => "ENXIO",
            Errno::EBADF => "EBADF",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::ENODEV => "ENODEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::ENOTTY => "ENOTTY",
            Errno::EFBIG => "EFBIG",
            Errno::ENOSPC => "ENOSPC",
            Errno::EPIPE => "EPIPE",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ELOOP => "ELOOP",
            Errno::ENOTSOCK => "ENOTSOCK",
            Errno::EADDRINUSE => "EADDRINUSE",
            Errno::ECONNRESET => "ECONNRESET",
            Errno::ENOTCONN => "ENOTCONN",
            Errno::ECONNREFUSED => "ECONNREFUSED",
        }
    }

    /// Human-readable description, matching `strerror(3)` phrasing.
    pub fn description(self) -> &'static str {
        match self {
            Errno::EPERM => "operation not permitted",
            Errno::ENOENT => "no such file or directory",
            Errno::ESRCH => "no such process",
            Errno::EIO => "input/output error",
            Errno::ENXIO => "no such device or address",
            Errno::EBADF => "bad file descriptor",
            Errno::EAGAIN => "resource temporarily unavailable",
            Errno::ENOMEM => "cannot allocate memory",
            Errno::EACCES => "permission denied",
            Errno::EFAULT => "bad address",
            Errno::EBUSY => "device or resource busy",
            Errno::EEXIST => "file exists",
            Errno::ENODEV => "no such device",
            Errno::ENOTDIR => "not a directory",
            Errno::EISDIR => "is a directory",
            Errno::EINVAL => "invalid argument",
            Errno::ENFILE => "too many open files in system",
            Errno::EMFILE => "too many open files",
            Errno::ENOTTY => "inappropriate ioctl for device",
            Errno::EFBIG => "file too large",
            Errno::ENOSPC => "no space left on device",
            Errno::EPIPE => "broken pipe",
            Errno::ENAMETOOLONG => "file name too long",
            Errno::ENOTEMPTY => "directory not empty",
            Errno::ELOOP => "too many levels of symbolic links",
            Errno::ENOTSOCK => "socket operation on non-socket",
            Errno::EADDRINUSE => "address already in use",
            Errno::ECONNRESET => "connection reset by peer",
            Errno::ENOTCONN => "transport endpoint is not connected",
            Errno::ECONNREFUSED => "connection refused",
        }
    }

    /// The raw errno value as it would appear in the Linux ABI.
    pub fn raw(self) -> i32 {
        self as i32
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.description())
    }
}

/// Error returned by simulated syscalls and LSM hooks.
///
/// Carries the errno plus an optional static context string identifying the
/// subsystem that raised it (useful when several LSMs are stacked: the
/// context records *which* module denied the access).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError {
    errno: Errno,
    context: Option<&'static str>,
}

impl KernelError {
    /// Creates an error with no context.
    pub fn new(errno: Errno) -> Self {
        KernelError {
            errno,
            context: None,
        }
    }

    /// Creates an error attributed to a named subsystem or security module.
    pub fn with_context(errno: Errno, context: &'static str) -> Self {
        KernelError {
            errno,
            context: Some(context),
        }
    }

    /// The errno carried by this error.
    pub fn errno(&self) -> Errno {
        self.errno
    }

    /// The subsystem that raised the error, if recorded.
    pub fn context(&self) -> Option<&'static str> {
        self.context
    }

    /// True if this error denies access (`EACCES` or `EPERM`).
    pub fn is_access_denial(&self) -> bool {
        matches!(self.errno, Errno::EACCES | Errno::EPERM)
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.context {
            Some(ctx) => write!(f, "{}: {}", ctx, self.errno),
            None => write!(f, "{}", self.errno),
        }
    }
}

impl Error for KernelError {}

impl From<Errno> for KernelError {
    fn from(errno: Errno) -> Self {
        KernelError::new(errno)
    }
}

/// Result alias used by every simulated syscall.
pub type KernelResult<T> = Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_raw_values_match_linux_abi() {
        assert_eq!(Errno::EPERM.raw(), 1);
        assert_eq!(Errno::ENOENT.raw(), 2);
        assert_eq!(Errno::EACCES.raw(), 13);
        assert_eq!(Errno::EEXIST.raw(), 17);
        assert_eq!(Errno::EINVAL.raw(), 22);
        assert_eq!(Errno::ENOTTY.raw(), 25);
        assert_eq!(Errno::EPIPE.raw(), 32);
    }

    #[test]
    fn display_includes_context_and_description() {
        let err = KernelError::with_context(Errno::EACCES, "sack");
        let text = err.to_string();
        assert!(text.contains("sack"));
        assert!(text.contains("EACCES"));
        assert!(text.contains("permission denied"));
    }

    #[test]
    fn access_denial_classification() {
        assert!(KernelError::new(Errno::EACCES).is_access_denial());
        assert!(KernelError::new(Errno::EPERM).is_access_denial());
        assert!(!KernelError::new(Errno::ENOENT).is_access_denial());
    }

    #[test]
    fn from_errno_conversion() {
        let err: KernelError = Errno::ENOENT.into();
        assert_eq!(err.errno(), Errno::ENOENT);
        assert_eq!(err.context(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
