//! Open-file objects and file descriptors.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Errno, KernelError, KernelResult};
use crate::ipc::{Pipe, SocketEndpoint};
use crate::lsm::AccessMask;
use crate::path::KPath;
use crate::vfs::{FileData, Inode};

/// `open(2)` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// All writes append.
    pub append: bool,
    /// Create if missing.
    pub create: bool,
    /// Truncate on open.
    pub truncate: bool,
    /// With `create`: fail if the file exists.
    pub excl: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// `O_WRONLY`.
    pub fn write_only() -> Self {
        OpenFlags {
            write: true,
            ..OpenFlags::default()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the `creat(2)` shorthand.
    pub fn create_new() -> Self {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..OpenFlags::default()
        }
    }

    /// The access mask the LSM hooks see for this open.
    pub fn access_mask(self) -> AccessMask {
        let mut m = AccessMask::empty();
        if self.read {
            m |= AccessMask::READ;
        }
        if self.write {
            m |= AccessMask::WRITE;
        }
        if self.append {
            m |= AccessMask::APPEND;
        }
        m
    }
}

/// What an open file refers to.
pub enum FileBacking {
    /// A VFS inode (regular file, directory, device, securityfs node).
    Inode(Arc<Inode>),
    /// Read end of a pipe.
    PipeRead(Arc<Pipe>),
    /// Write end of a pipe.
    PipeWrite(Arc<Pipe>),
    /// A connected socket endpoint.
    Socket(Arc<SocketEndpoint>),
}

impl fmt::Debug for FileBacking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileBacking::Inode(i) => write!(f, "Inode({})", i.id),
            FileBacking::PipeRead(_) => f.write_str("PipeRead"),
            FileBacking::PipeWrite(_) => f.write_str("PipeWrite"),
            FileBacking::Socket(_) => f.write_str("Socket"),
        }
    }
}

/// An open file description (`struct file`).
#[derive(Debug)]
pub struct OpenFile {
    /// The path this file was opened through (synthetic for pipes/sockets).
    pub path: KPath,
    /// What the descriptor refers to.
    pub backing: FileBacking,
    /// Flags from `open(2)`.
    pub flags: OpenFlags,
    /// Current file offset.
    pub pos: Mutex<u64>,
    /// securityfs snapshot, `seq_file`-style: the node's content is
    /// rendered once at the first `read(2)` of this open and served from
    /// here until close. Without it a chunked read of a node whose
    /// content changes underneath (`tracing/metrics` observes the very
    /// `file_permission` hooks the read fires) would stitch slices of
    /// different renders into torn output.
    pub seq_snapshot: Mutex<Option<Arc<Vec<u8>>>>,
}

impl OpenFile {
    /// Creates an open file description at offset zero.
    pub fn new(path: KPath, backing: FileBacking, flags: OpenFlags) -> OpenFile {
        OpenFile {
            path,
            backing,
            flags,
            pos: Mutex::new(0),
            seq_snapshot: Mutex::new(None),
        }
    }
}

impl OpenFile {
    /// The inode, for inode-backed files.
    ///
    /// # Errors
    ///
    /// `EBADF` for pipes/sockets.
    pub fn inode(&self) -> KernelResult<&Arc<Inode>> {
        match &self.backing {
            FileBacking::Inode(node) => Ok(node),
            _ => Err(KernelError::with_context(Errno::EBADF, "vfs")),
        }
    }
}

/// A memory-mapped view of a regular file.
///
/// Shares the file's backing buffer, so maps observe later writes —
/// enough to express LMBench's `mmap` latency and reread benchmarks.
#[derive(Clone)]
pub struct MappedRegion {
    data: FileData,
    offset: usize,
    len: usize,
}

impl MappedRegion {
    pub(crate) fn new(data: FileData, offset: usize, len: usize) -> Self {
        MappedRegion { data, offset, len }
    }

    /// Mapping length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length maps.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the mapped bytes at `offset` into `buf`, returning the number
    /// of bytes copied (short count at end of map).
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> usize {
        if offset >= self.len {
            return 0;
        }
        let data = self.data.read();
        let start = self.offset + offset;
        if start >= data.len() {
            return 0;
        }
        let n = buf.len().min(self.len - offset).min(data.len() - start);
        buf[..n].copy_from_slice(&data[start..start + n]);
        n
    }

    /// Touches one byte per `page_size` step, simulating a page-walk; returns
    /// a checksum so the traversal cannot be optimized away.
    pub fn touch_pages(&self, page_size: usize) -> u64 {
        let data = self.data.read();
        let mut sum = 0u64;
        let mut off = self.offset;
        let end = (self.offset + self.len).min(data.len());
        while off < end {
            sum = sum.wrapping_add(u64::from(data[off]));
            off += page_size.max(1);
        }
        sum
    }
}

impl fmt::Debug for MappedRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedRegion")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

/// Per-task file-descriptor table.
#[derive(Debug, Default)]
pub struct FdTable {
    slots: Vec<Option<Arc<OpenFile>>>,
}

/// Maximum descriptors per task (`RLIMIT_NOFILE`).
pub const FD_MAX: usize = 1024;

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FdTable::default()
    }

    /// Installs a file in the lowest free slot.
    ///
    /// # Errors
    ///
    /// `EMFILE` when the table is full.
    pub fn install(&mut self, file: Arc<OpenFile>) -> KernelResult<crate::types::Fd> {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return Ok(crate::types::Fd(i as u32));
            }
        }
        if self.slots.len() >= FD_MAX {
            return Err(KernelError::with_context(Errno::EMFILE, "vfs"));
        }
        self.slots.push(Some(file));
        Ok(crate::types::Fd((self.slots.len() - 1) as u32))
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` for invalid or closed descriptors.
    pub fn get(&self, fd: crate::types::Fd) -> KernelResult<Arc<OpenFile>> {
        self.slots
            .get(fd.0 as usize)
            .and_then(|s| s.clone())
            .ok_or_else(|| KernelError::with_context(Errno::EBADF, "vfs"))
    }

    /// Installs a file at a specific descriptor (for `dup2(2)`), returning
    /// any file previously installed there.
    ///
    /// # Errors
    ///
    /// `EMFILE` when `fd` exceeds [`FD_MAX`].
    pub fn install_at(
        &mut self,
        fd: crate::types::Fd,
        file: Arc<OpenFile>,
    ) -> KernelResult<Option<Arc<OpenFile>>> {
        let idx = fd.0 as usize;
        if idx >= FD_MAX {
            return Err(KernelError::with_context(Errno::EMFILE, "vfs"));
        }
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        Ok(self.slots[idx].replace(file))
    }

    /// Removes a descriptor, returning the file.
    ///
    /// # Errors
    ///
    /// `EBADF` for invalid or closed descriptors.
    pub fn remove(&mut self, fd: crate::types::Fd) -> KernelResult<Arc<OpenFile>> {
        self.slots
            .get_mut(fd.0 as usize)
            .and_then(|s| s.take())
            .ok_or_else(|| KernelError::with_context(Errno::EBADF, "vfs"))
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Clones the table for `fork(2)` (descriptors are shared, as on Linux).
    pub fn fork_clone(&self) -> FdTable {
        FdTable {
            slots: self.slots.clone(),
        }
    }

    /// Drains all descriptors (process exit), returning them so the caller
    /// can run close-time bookkeeping.
    pub fn drain(&mut self) -> Vec<Arc<OpenFile>> {
        self.slots.drain(..).flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::RwLock;

    fn dummy_file() -> Arc<OpenFile> {
        let data: FileData = Arc::new(RwLock::new(b"hello world".to_vec()));
        Arc::new(OpenFile::new(
            KPath::new("/f").unwrap(),
            FileBacking::Inode(Arc::new(Inode {
                id: crate::types::InodeId(9),
                kind: crate::vfs::InodeKind::Regular(data),
                mode: crate::types::Mode::REGULAR,
                uid: crate::cred::Uid::ROOT,
                gid: crate::cred::Gid(0),
            })),
            OpenFlags::read_only(),
        ))
    }

    #[test]
    fn flags_to_access_mask() {
        assert_eq!(OpenFlags::read_only().access_mask(), AccessMask::READ);
        assert_eq!(OpenFlags::write_only().access_mask(), AccessMask::WRITE);
        assert_eq!(
            OpenFlags::read_write().access_mask(),
            AccessMask::READ | AccessMask::WRITE
        );
        let mut f = OpenFlags::write_only();
        f.append = true;
        assert!(f.access_mask().contains(AccessMask::APPEND));
    }

    #[test]
    fn fd_table_reuses_lowest_slot() {
        let mut t = FdTable::new();
        let a = t.install(dummy_file()).unwrap();
        let b = t.install(dummy_file()).unwrap();
        assert_eq!(a.0, 0);
        assert_eq!(b.0, 1);
        t.remove(a).unwrap();
        let c = t.install(dummy_file()).unwrap();
        assert_eq!(c.0, 0, "lowest free descriptor must be reused");
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn fd_table_bad_descriptor() {
        let mut t = FdTable::new();
        assert_eq!(
            t.get(crate::types::Fd(3)).unwrap_err().errno(),
            Errno::EBADF
        );
        assert_eq!(
            t.remove(crate::types::Fd(0)).unwrap_err().errno(),
            Errno::EBADF
        );
    }

    #[test]
    fn fork_clone_shares_descriptions() {
        let mut t = FdTable::new();
        let fd = t.install(dummy_file()).unwrap();
        let t2 = t.fork_clone();
        let f1 = t.get(fd).unwrap();
        let f2 = t2.get(fd).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2), "fork shares open file descriptions");
    }

    #[test]
    fn mapped_region_reads_and_touches() {
        let data: FileData = Arc::new(RwLock::new((0u8..=255).collect()));
        let map = MappedRegion::new(Arc::clone(&data), 10, 100);
        assert_eq!(map.len(), 100);
        let mut buf = [0u8; 4];
        assert_eq!(map.read(0, &mut buf), 4);
        assert_eq!(buf, [10, 11, 12, 13]);
        assert_eq!(map.read(98, &mut buf), 2);
        assert_eq!(map.read(200, &mut buf), 0);
        assert!(map.touch_pages(64) > 0);
        // Mapping observes later writes (shared buffer).
        data.write()[10] = 99;
        map.read(0, &mut buf);
        assert_eq!(buf[0], 99);
    }
}
