//! Bounded MPSC submission ring for the async sensor-event plane.
//!
//! An io_uring-style submission queue between sensor-frame producers (the
//! SDS, one thread per sensor cluster) and the kernel-side drain that
//! consumes frames in batches (DESIGN.md §11). The algorithm is the
//! classic bounded ring with a per-slot sequence number (Vyukov's MPMC
//! queue): producers claim a slot by CAS on the tail cursor, publish the
//! frame, then release the slot to the consumer by advancing its sequence;
//! the drain claims from the head cursor the same way. Enqueue is
//! lock-free — a producer never blocks on another producer or on the
//! drain, it either wins its claim CAS or retries on the advanced cursor.
//!
//! Backpressure is the caller's policy decision, built from two
//! primitives: [`RingIn::try_enqueue`] fails when the ring is full
//! (block-style callers drain and retry), and [`RingIn::force_enqueue`]
//! discards the oldest frames to make room, counting every discard in a
//! producer-visible drop counter (drop-oldest policy). Dropping the
//! *oldest* frame is the right semantics for sensor streams: the newest
//! observation supersedes stale ones, and the coalescing drain collapses
//! runs of frames anyway.
//!
//! Like `Rcu`, every atomic goes through the [`shim::Backend`] seam, so
//! `sack-analyze` explores this exact code under its deterministic
//! scheduler (`RingIn<u64, SchedBackend>`), and the `RingTornPublish`
//! mutation plants the canonical lost-frame bug (a producer that ignores
//! a lost claim CAS) for the executor to catch.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::Ordering::SeqCst;

use crate::sync::shim::{self, RawAtomicU64, RawAtomicUsize};
use crate::sync::{Backend, Mutation, StdBackend};

/// One ring slot: the sequence word arbitrates ownership (see module
/// docs), the cell holds the frame while the slot is full.
struct Slot<T, B: Backend> {
    seq: B::AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Error returned by [`RingIn::try_enqueue`] on a full ring; carries the
/// rejected frame back to the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull<T>(pub T);

/// The bounded MPSC submission ring. `T` is the fixed-size frame type
/// (`Copy`, so slots never need dropping and a reload-racing reader can
/// never observe a torn non-trivial destructor); `B` selects the
/// synchronisation backend exactly as for `Rcu`.
pub struct RingIn<T: Copy, B: Backend = StdBackend> {
    slots: Box<[Slot<T, B>]>,
    mask: usize,
    /// Producer cursor: next slot index to claim for enqueue.
    tail: B::AtomicUsize,
    /// Consumer cursor: next slot index to claim for dequeue.
    head: B::AtomicUsize,
    /// Frames successfully enqueued over the ring's lifetime.
    enqueued: B::AtomicU64,
    /// Frames successfully dequeued (drained or discarded).
    dequeued: B::AtomicU64,
    /// Frames discarded by [`RingIn::force_enqueue`] to make room — the
    /// producer-visible backpressure counter.
    dropped: B::AtomicU64,
}

/// Production-backend ring, the type the event plane instantiates.
pub type Ring<T> = RingIn<T, StdBackend>;

// SAFETY: the sequence protocol hands each slot to exactly one thread at
// a time (the claimant between its claim CAS and its sequence release),
// so the `UnsafeCell` is never accessed concurrently; `T: Send` moves
// frames across threads, `T: Copy` keeps slot reclamation trivial.
unsafe impl<T: Copy + Send, B: Backend> Send for RingIn<T, B> {}
unsafe impl<T: Copy + Send, B: Backend> Sync for RingIn<T, B> {}

impl<T: Copy> Ring<T> {
    /// Creates a production-backend ring with `capacity` slots.
    pub fn new(capacity: usize) -> Ring<T> {
        Ring::new_in(capacity)
    }
}

impl<T: Copy, B: Backend> RingIn<T, B> {
    /// Creates a ring with `capacity` slots on backend `B`.
    ///
    /// # Panics
    ///
    /// `capacity` must be a power of two and at least 2 (the cursor
    /// arithmetic masks slot indexes).
    pub fn new_in(capacity: usize) -> RingIn<T, B> {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "ring capacity must be a power of two >= 2, got {capacity}"
        );
        RingIn {
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: shim::RawAtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: capacity - 1,
            tail: shim::RawAtomicUsize::new(0),
            head: shim::RawAtomicUsize::new(0),
            enqueued: shim::RawAtomicU64::new(0),
            dequeued: shim::RawAtomicU64::new(0),
            dropped: shim::RawAtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Frames currently in the ring. Racy under concurrent producers —
    /// a stats/threshold snapshot, not a synchronisation primitive.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(SeqCst);
        let head = self.head.load(SeqCst);
        tail.wrapping_sub(head).min(self.capacity())
    }

    /// True when no frame is enqueued (racy snapshot, as [`RingIn::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock-free producer enqueue.
    ///
    /// # Errors
    ///
    /// Returns the frame back inside [`RingFull`] when every slot holds an
    /// unconsumed frame — the caller picks the backpressure policy (drain
    /// and retry, or [`RingIn::force_enqueue`]).
    pub fn try_enqueue(&self, value: T) -> Result<(), RingFull<T>> {
        let mut pos = self.tail.load(SeqCst);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(SeqCst);
            let dif = seq.wrapping_sub(pos) as isize;
            if dif == 0 {
                // Slot is free for this lap: claim it by advancing tail.
                let claimed =
                    match self
                        .tail
                        .compare_exchange(pos, pos.wrapping_add(1), SeqCst, SeqCst)
                    {
                        Ok(_) => true,
                        Err(cur) => {
                            if B::mutation(Mutation::RingTornPublish) {
                                // Planted bug (executor-only): pretend the lost
                                // claim succeeded and publish into a slot another
                                // producer owns — one of the two frames vanishes.
                                true
                            } else {
                                pos = cur;
                                false
                            }
                        }
                    };
                if claimed {
                    // SAFETY: the claim CAS (tail: pos -> pos+1) succeeded,
                    // so this thread exclusively owns slot `pos` until the
                    // sequence release below.
                    unsafe { (*slot.value.get()).write(value) };
                    slot.seq.store(pos.wrapping_add(1), SeqCst);
                    self.enqueued.fetch_add(1, SeqCst);
                    return Ok(());
                }
            } else if dif < 0 {
                // The slot still holds the frame from one lap ago: full.
                return Err(RingFull(value));
            } else {
                // Another producer claimed this position; reload the cursor.
                pos = self.tail.load(SeqCst);
            }
        }
    }

    /// Enqueue under the drop-oldest backpressure policy: when the ring is
    /// full, discard the oldest pending frames (counting each in the drop
    /// counter) until the new frame fits. Returns how many frames this
    /// call discarded, so the producer sees the loss it caused.
    pub fn force_enqueue(&self, mut value: T) -> u64 {
        let mut discarded = 0;
        loop {
            match self.try_enqueue(value) {
                Ok(()) => return discarded,
                Err(RingFull(back)) => {
                    value = back;
                    if self.try_dequeue().is_some() {
                        self.dropped.fetch_add(1, SeqCst);
                        discarded += 1;
                    }
                    // A concurrent drain may have freed the slot for us;
                    // either way the ring now has room — retry.
                }
            }
        }
    }

    /// Lock-free batch enqueue: claims a contiguous span of
    /// `items.len()` slots with a **single** tail CAS, then publishes the
    /// frames slot by slot — the per-frame claim cost of
    /// [`RingIn::try_enqueue`] amortizes over the whole batch, which is
    /// what makes the SACKfs ring node's one-write-one-batch path cheap.
    ///
    /// The span is admissible when the *last* slot of the span is free
    /// for this lap: the consumer side claims head positions in order, so
    /// every earlier slot of the span is then free too, or owned by a
    /// racing dequeuer that is about to release it (the publish loop
    /// waits that handful of instructions out).
    ///
    /// # Errors
    ///
    /// [`RingFull`] when the ring has fewer than `items.len()` free slots
    /// (or the batch exceeds the capacity outright) — nothing is
    /// enqueued; the caller falls back to per-frame backpressure.
    pub fn try_enqueue_batch(&self, items: &[T]) -> Result<(), RingFull<()>> {
        let k = items.len();
        if k == 0 {
            return Ok(());
        }
        if k > self.capacity() {
            return Err(RingFull(()));
        }
        let mut pos = self.tail.load(SeqCst);
        loop {
            let last = pos.wrapping_add(k - 1);
            let slot = &self.slots[last & self.mask];
            let seq = slot.seq.load(SeqCst);
            let dif = seq.wrapping_sub(last) as isize;
            if dif == 0 {
                match self
                    .tail
                    .compare_exchange(pos, pos.wrapping_add(k), SeqCst, SeqCst)
                {
                    Ok(_) => {
                        for (i, item) in items.iter().enumerate() {
                            let p = pos.wrapping_add(i);
                            let slot = &self.slots[p & self.mask];
                            // A racing dequeuer may have claimed this
                            // slot's previous lap without releasing it
                            // yet; its release is imminent.
                            while slot.seq.load(SeqCst) != p {
                                std::hint::spin_loop();
                            }
                            // SAFETY: the span claim CAS (tail: pos ->
                            // pos+k) succeeded and the slot's sequence
                            // reached `p`, so this thread exclusively
                            // owns slot `p` until the release below.
                            unsafe { (*slot.value.get()).write(*item) };
                            slot.seq.store(p.wrapping_add(1), SeqCst);
                        }
                        self.enqueued.fetch_add(k as u64, SeqCst);
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                // Not enough free slots for the whole span.
                return Err(RingFull(()));
            } else {
                pos = self.tail.load(SeqCst);
            }
        }
    }

    /// Dequeues the oldest frame, or `None` when the ring is empty. Used
    /// by the kernel-side drain and by [`RingIn::force_enqueue`]'s
    /// drop-oldest path, so claims go through the same head CAS.
    pub fn try_dequeue(&self) -> Option<T> {
        let mut pos = self.head.load(SeqCst);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(SeqCst);
            let dif = seq.wrapping_sub(pos.wrapping_add(1)) as isize;
            if dif == 0 {
                // Slot holds a published frame for this lap: claim it.
                match self
                    .head
                    .compare_exchange(pos, pos.wrapping_add(1), SeqCst, SeqCst)
                {
                    Ok(_) => {
                        // SAFETY: the claim CAS (head: pos -> pos+1)
                        // succeeded, so this thread exclusively owns the
                        // published frame in slot `pos`.
                        let value = unsafe { (*slot.value.get()).assume_init() };
                        // Release the slot to producers, one lap ahead.
                        slot.seq.store(pos.wrapping_add(self.mask + 1), SeqCst);
                        self.dequeued.fetch_add(1, SeqCst);
                        return Some(value);
                    }
                    Err(cur) => pos = cur,
                }
            } else if dif < 0 {
                // The slot is not yet published for this lap: empty (or a
                // producer claimed it but has not released it yet — to the
                // consumer that is the same thing).
                return None;
            } else {
                pos = self.head.load(SeqCst);
            }
        }
    }

    /// Batch dequeue: claims every currently-published frame (up to
    /// `max`) with a **single** head CAS and appends them to `out`,
    /// returning the count — the drain-side twin of
    /// [`RingIn::try_enqueue_batch`]. A claimed slot whose producer has
    /// not finished publishing is waited out (the producer is between its
    /// claim and its release, a handful of instructions).
    pub fn dequeue_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut pos = self.head.load(SeqCst);
        loop {
            let tail = self.tail.load(SeqCst);
            let avail = tail.wrapping_sub(pos);
            if avail == 0 || avail > self.capacity() {
                // Empty — or a stale head snapshot (avail can only exceed
                // the capacity when `pos` lagged a concurrent claim).
                let cur = self.head.load(SeqCst);
                if cur == pos {
                    return 0;
                }
                pos = cur;
                continue;
            }
            let k = avail.min(max);
            match self
                .head
                .compare_exchange(pos, pos.wrapping_add(k), SeqCst, SeqCst)
            {
                Ok(_) => {
                    for i in 0..k {
                        let p = pos.wrapping_add(i);
                        let slot = &self.slots[p & self.mask];
                        // The claim span runs up to a tail snapshot, so
                        // each slot is published or about to be.
                        while slot.seq.load(SeqCst) != p.wrapping_add(1) {
                            std::hint::spin_loop();
                        }
                        // SAFETY: the span claim CAS (head: pos -> pos+k)
                        // succeeded and the slot's sequence shows a
                        // published frame, so this thread exclusively
                        // owns it.
                        let value = unsafe { (*slot.value.get()).assume_init() };
                        slot.seq.store(p.wrapping_add(self.mask + 1), SeqCst);
                        out.push(value);
                    }
                    self.dequeued.fetch_add(k as u64, SeqCst);
                    return k;
                }
                Err(cur) => pos = cur,
            }
        }
    }

    /// Frames successfully enqueued over the ring's lifetime.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(SeqCst)
    }

    /// Frames dequeued (drained plus discarded) over the ring's lifetime.
    pub fn dequeued(&self) -> u64 {
        self.dequeued.load(SeqCst)
    }

    /// Frames discarded by drop-oldest backpressure — the producer-visible
    /// loss counter.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(SeqCst)
    }
}

impl<T: Copy, B: Backend> fmt::Debug for RingIn<T, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("enqueued", &self.enqueued())
            .field("dequeued", &self.dequeued())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let ring: Ring<u32> = Ring::new(8);
        for i in 0..8 {
            ring.try_enqueue(i).unwrap();
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.try_enqueue(99), Err(RingFull(99)));
        for i in 0..8 {
            assert_eq!(ring.try_dequeue(), Some(i));
        }
        assert_eq!(ring.try_dequeue(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn wraparound_many_laps() {
        let ring: Ring<u64> = Ring::new(4);
        for i in 0..1000u64 {
            ring.try_enqueue(i).unwrap();
            assert_eq!(ring.try_dequeue(), Some(i));
        }
        assert_eq!(ring.enqueued(), 1000);
        assert_eq!(ring.dequeued(), 1000);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn force_enqueue_drops_oldest_with_exact_count() {
        let ring: Ring<u32> = Ring::new(4);
        for i in 0..4 {
            assert_eq!(ring.force_enqueue(i), 0);
        }
        // Ring full: each further frame evicts exactly the oldest.
        assert_eq!(ring.force_enqueue(4), 1);
        assert_eq!(ring.force_enqueue(5), 1);
        assert_eq!(ring.dropped(), 2);
        // Oldest two (0, 1) are gone; order of the rest is preserved.
        let drained: Vec<u32> = std::iter::from_fn(|| ring.try_dequeue()).collect();
        assert_eq!(drained, vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn capacity_must_be_power_of_two() {
        let _ = Ring::<u32>::new(6);
    }

    #[test]
    fn batch_enqueue_dequeue_round_trip() {
        let ring: Ring<u32> = Ring::new(8);
        ring.try_enqueue_batch(&[1, 2, 3]).unwrap();
        ring.try_enqueue_batch(&[]).unwrap();
        ring.try_enqueue_batch(&[4, 5]).unwrap();
        assert_eq!(ring.len(), 5);
        let mut out = Vec::new();
        assert_eq!(ring.dequeue_batch(&mut out, 4), 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(ring.dequeue_batch(&mut out, usize::MAX), 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(ring.dequeue_batch(&mut out, usize::MAX), 0);
        assert_eq!(ring.enqueued(), 5);
        assert_eq!(ring.dequeued(), 5);
    }

    #[test]
    fn batch_enqueue_rejects_spans_that_do_not_fit() {
        let ring: Ring<u32> = Ring::new(4);
        assert_eq!(ring.try_enqueue_batch(&[0; 5]), Err(RingFull(())));
        ring.try_enqueue_batch(&[1, 2, 3]).unwrap();
        // Only one slot free: a 2-frame span must fail without enqueuing
        // anything, and the single free slot must still be claimable.
        assert_eq!(ring.try_enqueue_batch(&[8, 9]), Err(RingFull(())));
        assert_eq!(ring.len(), 3);
        ring.try_enqueue_batch(&[4]).unwrap();
        let drained: Vec<u32> = std::iter::from_fn(|| ring.try_dequeue()).collect();
        assert_eq!(drained, vec![1, 2, 3, 4]);
    }

    #[test]
    fn batch_ops_wrap_across_many_laps() {
        let ring: Ring<u64> = Ring::new(8);
        let mut next = 0u64;
        let mut expect = 0u64;
        let mut out = Vec::new();
        for lap in 0..200u64 {
            let k = (lap % 7 + 1) as usize;
            let batch: Vec<u64> = (0..k as u64).map(|i| next + i).collect();
            ring.try_enqueue_batch(&batch).unwrap();
            next += k as u64;
            out.clear();
            assert_eq!(ring.dequeue_batch(&mut out, usize::MAX), k);
            for v in &out {
                assert_eq!(*v, expect);
                expect += 1;
            }
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn concurrent_batch_producers_lose_no_frames() {
        const PRODUCERS: u64 = 4;
        const BATCHES: u64 = 500;
        const BATCH: u64 = 8;
        let ring: Arc<Ring<u64>> = Arc::new(Ring::new(64));
        let consumed = thread::scope(|s| {
            for p in 0..PRODUCERS {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for b in 0..BATCHES {
                        let base = (p * BATCHES + b) * BATCH;
                        let batch: Vec<u64> = (0..BATCH).map(|i| base + i).collect();
                        while ring.try_enqueue_batch(&batch).is_err() {
                            thread::yield_now();
                        }
                    }
                });
            }
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                let mut got: Vec<u64> = Vec::new();
                while (got.len() as u64) < PRODUCERS * BATCHES * BATCH {
                    if ring.dequeue_batch(&mut got, usize::MAX) == 0 {
                        thread::yield_now();
                    }
                }
                got
            })
            .join()
            .unwrap()
        });
        assert_eq!(consumed.len() as u64, PRODUCERS * BATCHES * BATCH);
        let mut sorted = consumed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), consumed.len(), "duplicated frame");
        // Each producer's frames arrive in its enqueue order, and each
        // batch's span is contiguous in the consumed stream.
        for p in 0..PRODUCERS {
            let lo = p * BATCHES * BATCH;
            let hi = (p + 1) * BATCHES * BATCH;
            let mine: Vec<u64> = consumed
                .iter()
                .copied()
                .filter(|v| (lo..hi).contains(v))
                .collect();
            let mut expected = mine.clone();
            expected.sort_unstable();
            assert_eq!(mine, expected, "producer {p} frames reordered");
        }
    }

    #[test]
    fn mpsc_stress_accounts_for_every_frame() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let ring: Arc<Ring<u64>> = Arc::new(Ring::new(64));
        let consumed = thread::scope(|s| {
            for p in 0..PRODUCERS {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut frame = p * PER_PRODUCER + i;
                        // Alternate both backpressure primitives.
                        if i % 2 == 0 {
                            ring.force_enqueue(frame);
                        } else {
                            while let Err(RingFull(back)) = ring.try_enqueue(frame) {
                                frame = back;
                                thread::yield_now();
                            }
                        }
                    }
                });
            }
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                let mut got: Vec<u64> = Vec::new();
                loop {
                    if let Some(v) = ring.try_dequeue() {
                        got.push(v);
                        continue;
                    }
                    // Every produced frame bumps `enqueued` exactly once;
                    // quit once all are in and the ring is drained.
                    if ring.enqueued() == PRODUCERS * PER_PRODUCER && ring.is_empty() {
                        break;
                    }
                    thread::yield_now();
                }
                got
            })
            .join()
            .unwrap()
        });
        // Drain any residue (a racing force_enqueue may land after the
        // consumer's final emptiness check).
        let mut consumed = consumed;
        while let Some(v) = ring.try_dequeue() {
            consumed.push(v);
        }
        // Exact accounting: every produced frame was either consumed by
        // the drain or discarded (and counted) by backpressure.
        assert_eq!(
            consumed.len() as u64 + ring.dropped(),
            PRODUCERS * PER_PRODUCER,
            "lost or duplicated frames"
        );
        // No duplicates.
        let mut sorted = consumed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), consumed.len(), "duplicated frame");
        // Per-producer order: each producer's surviving frames appear in
        // the order that producer enqueued them.
        for p in 0..PRODUCERS {
            let mine: Vec<u64> = consumed
                .iter()
                .copied()
                .filter(|v| v / PER_PRODUCER == p)
                .collect();
            let mut sorted = mine.clone();
            sorted.sort_unstable();
            assert_eq!(mine, sorted, "producer {p} frames reordered");
        }
    }
}
