//! Per-state unified DFA decision tables.
//!
//! `SackPolicy::compile` builds one [`StateDfa`] per situation state: every
//! object glob of the state's granted permissions is merged into a single
//! minimized DFA (the [`sack_apparmor::dfa`] builder), with accepting
//! states annotated at build time by the union [`RuleDecision`] of the
//! matching subject-wildcard rules *and* a protected-set marker covering
//! every object glob in the whole policy. One O(|path|) table walk on a
//! decision-cache miss therefore answers both questions the hook asks —
//! "is this path SACK-protected at all?" and "what do this state's rules
//! say?" — independent of rule count.
//!
//! Rules with a non-wildcard subject selector (`exe:`, `uid:`, `profile:`)
//! cannot be folded into a path-only DFA; they are kept aside in small
//! residual scan lists consulted after the walk. Vehicle policies keep
//! almost all rules subject-wildcarded, so the residue is empty or tiny.
//!
//! Tables are rebuilt from scratch on every compile and published through
//! the existing `Rcu<ActivePolicy>`, so a policy reload or situation
//! transition swaps them atomically together with the rule sets
//! (see `DESIGN.md` §7).

use std::sync::Arc;

use sack_apparmor::dfa::{Alphabet, Dfa, DfaBuilder, DfaStats};
use sack_apparmor::matcher::RuleDecision;
use sack_apparmor::Glob;

use crate::rules::{MacRule, RuleEffect, SubjectCtx, SubjectMatch};
use sack_apparmor::FilePerms;

/// Tag for protected-set marker globs (never a rule index).
const MARKER: u32 = u32::MAX;

/// Per-DFA-state annotation: protection membership plus the build-time
/// resolved decision of the subject-wildcard rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct StateAnnot {
    protected: bool,
    decision: RuleDecision,
}

/// Outcome of one [`StateDfa::decide`] walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateDecision {
    /// True if the path matches any object glob in the policy (the
    /// [`crate::rules::ProtectedSet`] membership test).
    pub protected: bool,
    /// True if the requested permissions are granted in this state.
    pub permitted: bool,
}

/// A situation state's compiled decision table.
#[derive(Debug)]
pub struct StateDfa {
    dfa: Dfa<StateAnnot>,
    /// Subject-scoped allow rules, scanned after the walk.
    scan_allow: Vec<MacRule>,
    /// Subject-scoped deny rules, scanned before granting.
    scan_deny: Vec<MacRule>,
}

impl StateDfa {
    /// Compiles the table from this state's active rules plus every object
    /// glob in the policy (the protected-set markers), deriving a private
    /// byte-class alphabet.
    pub fn build<'a>(
        rules: impl IntoIterator<Item = &'a MacRule>,
        all_globs: impl IntoIterator<Item = &'a Glob>,
    ) -> StateDfa {
        Self::build_inner(rules, all_globs, None)
    }

    /// [`StateDfa::build`] against a shared byte-class alphabet. Since
    /// every state's marker set spans the whole policy's object globs, one
    /// alphabet built from those globs fits all states exactly;
    /// `SackPolicy::compile` builds it once and shares the table.
    pub fn build_with_alphabet<'a>(
        rules: impl IntoIterator<Item = &'a MacRule>,
        all_globs: impl IntoIterator<Item = &'a Glob>,
        alphabet: &Arc<Alphabet>,
    ) -> StateDfa {
        Self::build_inner(rules, all_globs, Some(alphabet))
    }

    fn build_inner<'a>(
        rules: impl IntoIterator<Item = &'a MacRule>,
        all_globs: impl IntoIterator<Item = &'a Glob>,
        alphabet: Option<&Arc<Alphabet>>,
    ) -> StateDfa {
        let mut builder = DfaBuilder::new();
        let mut folded: Vec<&MacRule> = Vec::new();
        let mut scan_allow = Vec::new();
        let mut scan_deny = Vec::new();
        for rule in rules {
            if matches!(rule.subject, SubjectMatch::Any) {
                builder.add_glob(&rule.object, folded.len() as u32);
                folded.push(rule);
            } else {
                match rule.effect {
                    RuleEffect::Allow => scan_allow.push(rule.clone()),
                    RuleEffect::Deny => scan_deny.push(rule.clone()),
                }
            }
        }
        for glob in all_globs {
            builder.add_glob(glob, MARKER);
        }
        let shared;
        let alphabet = match alphabet {
            Some(alphabet) => alphabet,
            None => {
                shared = Arc::new(builder.alphabet());
                &shared
            }
        };
        let dfa = builder.build_with_alphabet(alphabet, |tags| {
            let mut annot = StateAnnot {
                protected: !tags.is_empty(),
                decision: RuleDecision::default(),
            };
            for &tag in tags {
                if tag == MARKER {
                    continue;
                }
                let rule = folded[tag as usize];
                match rule.effect {
                    RuleEffect::Allow => {
                        annot.decision.allowed = annot.decision.allowed.union(rule.perms);
                    }
                    RuleEffect::Deny => {
                        annot.decision.denied = annot.decision.denied.union(rule.perms);
                    }
                }
            }
            annot
        });
        StateDfa {
            dfa,
            scan_allow,
            scan_deny,
        }
    }

    /// Decides a request with one table walk plus the (usually empty)
    /// subject-scoped residue. Produces exactly the outcome of
    /// `ProtectedSet::contains` + `StateRuleSet::permits`.
    pub fn decide(
        &self,
        subject: &SubjectCtx<'_>,
        path: &str,
        requested: FilePerms,
    ) -> StateDecision {
        let annot = self.dfa.eval(path);
        let mut protected = annot.protected;
        let has_residue = !(self.scan_allow.is_empty() && self.scan_deny.is_empty());
        if !protected && has_residue {
            // Subject-scoped rule globs are part of the protected set too,
            // but their decision cannot live in the path-only table. (The
            // markers already cover them; this branch is unreachable when
            // the globs were passed as `all_globs`, kept for robustness.)
            protected = self
                .scan_allow
                .iter()
                .chain(&self.scan_deny)
                .any(|rule| rule.object.matches(path));
        }
        if annot.decision.denied.intersects(requested) {
            return StateDecision {
                protected,
                permitted: false,
            };
        }
        for rule in &self.scan_deny {
            if rule.perms.intersects(requested)
                && rule.object.matches(path)
                && rule.subject.matches(subject)
            {
                return StateDecision {
                    protected,
                    permitted: false,
                };
            }
        }
        let mut granted = annot.decision.allowed;
        if !granted.contains(requested) {
            for rule in &self.scan_allow {
                if rule.object.matches(path) && rule.subject.matches(subject) {
                    granted = granted.union(rule.perms);
                    if granted.contains(requested) {
                        break;
                    }
                }
            }
        }
        StateDecision {
            protected,
            permitted: granted.contains(requested),
        }
    }

    /// Size statistics of the compiled table, surfaced by `sack-analyze`.
    pub fn stats(&self) -> DfaStats {
        self.dfa.stats()
    }

    /// The byte-class alphabet the table was compiled against (shared
    /// across all states of one compiled policy).
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        self.dfa.alphabet()
    }

    /// Number of subject-scoped rules left to the residual scan.
    pub fn residual_rule_count(&self) -> usize {
        self.scan_allow.len() + self.scan_deny.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::StateRuleSet;

    fn glob(pat: &str) -> Glob {
        Glob::compile(pat).unwrap()
    }

    fn rule(subject: SubjectMatch, object: &str, perms: FilePerms, effect: RuleEffect) -> MacRule {
        MacRule {
            subject,
            object: glob(object),
            perms,
            effect,
        }
    }

    #[test]
    fn dfa_matches_rule_set_semantics() {
        let rules = [
            rule(
                SubjectMatch::Any,
                "/dev/car/**",
                FilePerms::READ | FilePerms::WRITE,
                RuleEffect::Allow,
            ),
            rule(
                SubjectMatch::Any,
                "/dev/car/door*",
                FilePerms::WRITE,
                RuleEffect::Deny,
            ),
            rule(
                SubjectMatch::Uid(0),
                "/dev/car/door*",
                FilePerms::WRITE,
                RuleEffect::Allow,
            ),
        ];
        let set = StateRuleSet::build(rules.iter());
        let dfa = StateDfa::build(rules.iter(), rules.iter().map(|r| &r.object));
        let root = SubjectCtx {
            uid: 0,
            exe: None,
            profile: None,
        };
        let user = SubjectCtx {
            uid: 1000,
            exe: None,
            profile: None,
        };
        for subject in [&root, &user] {
            for path in ["/dev/car/door0", "/dev/car/audio", "/etc/passwd"] {
                for perms in [
                    FilePerms::READ,
                    FilePerms::WRITE,
                    FilePerms::READ | FilePerms::WRITE,
                ] {
                    assert_eq!(
                        dfa.decide(subject, path, perms).permitted,
                        set.permits(subject, path, perms),
                        "uid={} path={path} perms={perms}",
                        subject.uid
                    );
                }
            }
        }
        assert!(
            dfa.decide(&user, "/dev/car/audio", FilePerms::READ)
                .protected
        );
        assert!(!dfa.decide(&user, "/etc/passwd", FilePerms::READ).protected);
        assert_eq!(dfa.residual_rule_count(), 1);
    }

    #[test]
    fn markers_protect_paths_ruled_in_other_states() {
        // A glob from some other state's rules is protected here even
        // though this state has no rule for it.
        let here = [rule(
            SubjectMatch::Any,
            "/dev/car/audio",
            FilePerms::READ,
            RuleEffect::Allow,
        )];
        let elsewhere = glob("/dev/car/door*");
        let globs: Vec<&Glob> = here
            .iter()
            .map(|r| &r.object)
            .chain(std::iter::once(&elsewhere))
            .collect();
        let dfa = StateDfa::build(here.iter(), globs);
        let subject = SubjectCtx {
            uid: 1000,
            exe: None,
            profile: None,
        };
        let d = dfa.decide(&subject, "/dev/car/door0", FilePerms::READ);
        assert!(d.protected, "other-state glob must still be protected");
        assert!(!d.permitted, "no rule grants it in this state");
    }
}
