//! SACKfs: the securityfs interface of the SACK module (paper C1).
//!
//! Nodes registered under `/sys/kernel/security/SACK/`:
//!
//! | node     | access | purpose                                             |
//! |----------|--------|-----------------------------------------------------|
//! | `events` | write  | situation-event delivery from the SDS               |
//! | `state`  | read   | current situation state (`name encoding`)           |
//! | `policy` | rw     | policy dump / live policy replacement               |
//! | `stats`  | read   | module counters                                     |
//!
//! Writes to `events` and `policy` require `CAP_MAC_ADMIN`, matching the
//! paper's threat model (attackers cannot obtain MAC capabilities, so they
//! cannot forge situation events even after compromising an application).

use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

use sack_kernel::error::{Errno, KernelError, KernelResult};
use sack_kernel::kernel::Kernel;
use sack_kernel::lsm::HookCtx;
use sack_kernel::securityfs::{require_mac_admin, securityfs_path, SecurityFsFile};
use sack_kernel::types::Mode;

use crate::sack::{Sack, SackError};

/// securityfs directory name of the module.
pub const SACK_DIR: &str = "SACK";

fn upgrade<T>(weak: &Weak<T>) -> KernelResult<Arc<T>> {
    weak.upgrade()
        .ok_or_else(|| KernelError::with_context(Errno::EIO, "sackfs"))
}

struct EventsNode {
    sack: Weak<Sack>,
    kernel: Weak<Kernel>,
}

impl SecurityFsFile for EventsNode {
    fn write_content(&self, ctx: &HookCtx, data: &[u8]) -> KernelResult<usize> {
        require_mac_admin(ctx)?;
        let sack = upgrade(&self.sack)?;
        let now = upgrade(&self.kernel)
            .map(|k| k.clock().now())
            .unwrap_or(Duration::ZERO);
        let text = std::str::from_utf8(data)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            match sack.deliver_event(line, now) {
                Ok(_) => {}
                Err(SackError::UnknownEvent(_)) => {
                    return Err(KernelError::with_context(Errno::EINVAL, "sackfs"))
                }
                Err(_) => return Err(KernelError::with_context(Errno::EIO, "sackfs")),
            }
        }
        Ok(data.len())
    }

    fn mode(&self) -> Mode {
        // World-writable node; the CAP_MAC_ADMIN check in the handler is
        // the real gate (DAC would otherwise hide the capability check).
        Mode(0o666)
    }
}

struct StateNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for StateNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let active = sack.active();
        let state = active.ssm.space().state(active.ssm.current());
        Ok(format!("{} {}\n", state.name, state.encoding).into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

struct PolicyNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for PolicyNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let active = sack.active();
        let space = active.ssm.space();
        let mut out = String::new();
        out.push_str(&format!("mode {}\n", sack.mode()));
        out.push_str(&format!("current {}\n", active.ssm.current_name()));
        out.push_str("states");
        for s in space.states() {
            out.push_str(&format!(" {}={}", s.name, s.encoding));
        }
        out.push('\n');
        out.push_str("events");
        for e in space.events() {
            out.push_str(&format!(" {}", e.name));
        }
        out.push('\n');
        out.push_str(&format!(
            "permissions {}\nrules {}\n",
            active.policy.permissions().len(),
            active.policy.rule_count()
        ));
        Ok(out.into_bytes())
    }

    fn write_content(&self, ctx: &HookCtx, data: &[u8]) -> KernelResult<usize> {
        require_mac_admin(ctx)?;
        let sack = upgrade(&self.sack)?;
        let text = std::str::from_utf8(data)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        sack.reload_policy(text)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        Ok(data.len())
    }

    fn mode(&self) -> Mode {
        Mode(0o644)
    }
}

struct StatsNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for StatsNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let s = sack.stats();
        let active = sack.active();
        Ok(format!(
            "checks {}\ndenials {}\nunprotected {}\noverrides {}\n\
             events_received {}\nevents_unknown {}\ntransitions_taken {}\n\
             cache_hits {}\ncache_misses {}\npolicy_epoch {}\n",
            s.checks.load(Ordering::Relaxed),
            s.denials.load(Ordering::Relaxed),
            s.unprotected.load(Ordering::Relaxed),
            s.overrides.load(Ordering::Relaxed),
            s.events_received.load(Ordering::Relaxed),
            s.events_unknown.load(Ordering::Relaxed),
            active.ssm.taken_count(),
            s.cache_hits.load(Ordering::Relaxed),
            s.cache_misses.load(Ordering::Relaxed),
            sack.policy_epoch(),
        )
        .into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

struct AuditNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for AuditNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        Ok(sack.audit().render().into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o400)
    }
}

/// Registers the SACKfs nodes for `sack` on `kernel`.
///
/// # Errors
///
/// securityfs registration errors (e.g. already attached).
pub fn register(sack: &Arc<Sack>, kernel: &Arc<Kernel>) -> KernelResult<()> {
    let events = securityfs_path(SACK_DIR, "events")?;
    kernel.register_securityfs(
        &events,
        Arc::new(EventsNode {
            sack: Arc::downgrade(sack),
            kernel: Arc::downgrade(kernel),
        }),
    )?;
    let state = securityfs_path(SACK_DIR, "state")?;
    kernel.register_securityfs(
        &state,
        Arc::new(StateNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    let policy = securityfs_path(SACK_DIR, "policy")?;
    kernel.register_securityfs(
        &policy,
        Arc::new(PolicyNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    let stats = securityfs_path(SACK_DIR, "stats")?;
    kernel.register_securityfs(
        &stats,
        Arc::new(StatsNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    let audit = securityfs_path(SACK_DIR, "audit")?;
    kernel.register_securityfs(
        &audit,
        Arc::new(AuditNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_kernel::cred::{Capability, Credentials};
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::lsm::SecurityModule;

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { P; }
        state_per { emergency: P; }
        per_rules { P: allow subject=* /dev/car/** wi; }
    "#;

    fn boot() -> (Arc<Kernel>, Arc<Sack>) {
        let sack = Sack::independent(POLICY).unwrap();
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).unwrap();
        (kernel, sack)
    }

    #[test]
    fn event_write_transitions_state() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
        let fd = sds
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        sds.write(fd, b"crash\n").unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        sds.write(fd, b"rescue_done\n").unwrap();
        assert_eq!(sack.current_state_name(), "normal");
        sds.close(fd).unwrap();
    }

    #[test]
    fn event_write_without_mac_admin_is_eperm() {
        let (kernel, sack) = boot();
        let attacker = kernel.spawn(Credentials::user(1000, 1000));
        let fd = attacker
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        let err = attacker.write(fd, b"crash\n").unwrap_err();
        assert_eq!(err.errno(), Errno::EPERM);
        assert_eq!(sack.current_state_name(), "normal", "state unchanged");
    }

    #[test]
    fn unknown_event_is_einval() {
        let (kernel, _sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        let err = sds.write(fd, b"meteor\n").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
    }

    #[test]
    fn state_node_reflects_current_state() {
        let (kernel, sack) = boot();
        let p = kernel.spawn(Credentials::root());
        let content = p.read_to_vec("/sys/kernel/security/SACK/state").unwrap();
        assert_eq!(content, b"normal 0\n");
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        let content = p.read_to_vec("/sys/kernel/security/SACK/state").unwrap();
        assert_eq!(content, b"emergency 1\n");
    }

    #[test]
    fn policy_node_dump_and_reload() {
        let (kernel, sack) = boot();
        let admin = kernel.spawn(Credentials::root());
        let dump = admin
            .read_to_vec("/sys/kernel/security/SACK/policy")
            .unwrap();
        let text = String::from_utf8(dump).unwrap();
        assert!(text.contains("mode independent"));
        assert!(text.contains("current normal"));
        assert!(text.contains("states normal=0 emergency=1"));

        let fd = admin
            .open("/sys/kernel/security/SACK/policy", OpenFlags::write_only())
            .unwrap();
        let new_policy = b"states { solo = 0; } initial solo;\n\
                           permissions { P; } state_per { solo: P; }\n\
                           per_rules { P: allow subject=* /x r; }";
        admin.write(fd, new_policy).unwrap();
        assert_eq!(sack.current_state_name(), "solo");
        // Bad policy is rejected with EINVAL and leaves the current one.
        let err = admin.write(fd, b"garbage {{{").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
        assert_eq!(sack.current_state_name(), "solo");
    }

    #[test]
    fn stats_node_reports_counters() {
        let (kernel, sack) = boot();
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        let p = kernel.spawn(Credentials::root());
        let text =
            String::from_utf8(p.read_to_vec("/sys/kernel/security/SACK/stats").unwrap()).unwrap();
        assert!(text.contains("events_received 1"));
        assert!(text.contains("transitions_taken 1"));
    }

    #[test]
    fn stats_node_folds_sharded_counters_across_threads() {
        let (kernel, sack) = boot();
        // Bump a striped counter from many threads; the stats node must
        // report the folded total, not a single stripe.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sack = Arc::clone(&sack);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        sack.stats().checks.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let p = kernel.spawn(Credentials::root());
        let text =
            String::from_utf8(p.read_to_vec("/sys/kernel/security/SACK/stats").unwrap()).unwrap();
        assert!(
            text.contains("checks 8000"),
            "stats node must fold all stripes: {text}"
        );
    }

    #[test]
    fn audit_node_reports_denials() {
        let (kernel, sack) = boot();
        sack.deliver_event("rescue_done", Duration::ZERO).ok();
        // Set up a protected file and provoke a denial.
        kernel
            .vfs()
            .mkdir_all(&sack_kernel::KPath::new("/dev/car").unwrap())
            .unwrap();
        kernel
            .vfs()
            .create_file(
                &sack_kernel::KPath::new("/dev/car/door0").unwrap(),
                sack_kernel::Mode(0o666),
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        let app = kernel.spawn(Credentials::user(1000, 1000));
        assert!(app.open("/dev/car/door0", OpenFlags::write_only()).is_err());
        // The audit node is 0400 root-owned; only the admin can read it.
        let admin = kernel.spawn(Credentials::root());
        let text = String::from_utf8(
            admin
                .read_to_vec("/sys/kernel/security/SACK/audit")
                .unwrap(),
        )
        .unwrap();
        assert!(text.contains("DENIED"), "{text}");
        assert!(text.contains("/dev/car/door0"));
        assert!(text.contains("state=normal"));
        assert_eq!(sack.audit().total(), 1);
    }

    #[test]
    fn double_attach_is_rejected() {
        let (kernel, sack) = boot();
        assert!(sack.attach(&kernel).is_err());
    }

    #[test]
    fn multiple_events_in_one_write() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        sds.write(fd, b"crash\nrescue_done\ncrash\n").unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        let active = sack.active();
        assert_eq!(active.ssm.taken_count(), 3);
    }
}
