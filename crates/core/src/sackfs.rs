//! SACKfs: the securityfs interface of the SACK module (paper C1).
//!
//! Nodes registered under `/sys/kernel/security/SACK/`:
//!
//! | node                   | access | purpose                                    |
//! |------------------------|--------|--------------------------------------------|
//! | `events`               | write  | situation-event delivery from the SDS      |
//! | `state`                | read   | current situation state (`name encoding`)  |
//! | `policy`               | rw     | policy dump / live policy replacement      |
//! | `stats`                | read   | module counters                            |
//! | `audit`                | read   | denial ring with overflow accounting       |
//! | `sds/ring`             | write  | batched frame submission (one write = one  |
//! |                        |        | coalesced drain)                           |
//! | `sds/stats`            | read   | event-plane counters                       |
//! | `tracing/enable`       | rw     | tracepoint master switch (`0`/`1`)         |
//! | `tracing/events`       | read   | per-tracepoint fired counts                |
//! | `tracing/flight`       | read   | flight-recorder dump (last N events)       |
//! | `tracing/metrics`      | read   | Prometheus text exposition                 |
//! | `tracing/metrics_json` | read   | the same metrics as one JSON object        |
//!
//! Writes to `events`, `policy` and `tracing/enable` require
//! `CAP_MAC_ADMIN`, matching the paper's threat model (attackers cannot
//! obtain MAC capabilities, so they cannot forge situation events even
//! after compromising an application).

use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::Duration;

use sack_kernel::error::{Errno, KernelError, KernelResult};
use sack_kernel::kernel::Kernel;
use sack_kernel::lsm::HookCtx;
use sack_kernel::securityfs::{require_mac_admin, securityfs_path, SecurityFsFile};
use sack_kernel::trace::Tracepoint;
use sack_kernel::types::Mode;

use crate::eventplane::EventFrame;
use crate::sack::{Sack, SackError};
use crate::stats::ShardedCounter;
use crate::trace::SackTracing;

/// securityfs directory name of the module.
pub const SACK_DIR: &str = "SACK";

fn upgrade<T>(weak: &Weak<T>) -> KernelResult<Arc<T>> {
    weak.upgrade()
        .ok_or_else(|| KernelError::with_context(Errno::EIO, "sackfs"))
}

struct EventsNode {
    sack: Weak<Sack>,
    kernel: Weak<Kernel>,
}

impl SecurityFsFile for EventsNode {
    fn write_content(&self, ctx: &HookCtx, data: &[u8]) -> KernelResult<usize> {
        require_mac_admin(ctx)?;
        let sack = upgrade(&self.sack)?;
        let now = upgrade(&self.kernel)
            .map(|k| k.clock().now())
            .unwrap_or(Duration::ZERO);
        let text = std::str::from_utf8(data)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        // A frame is a newline-terminated line. A write whose final frame
        // lacks the terminator is a partial frame — report it instead of
        // silently accepting a truncated event (both ingestion paths
        // validate frames identically).
        if !text.is_empty() && !text.ends_with('\n') {
            return Err(KernelError::with_context(Errno::EINVAL, "sackfs"));
        }
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            match sack.deliver_event(line, now) {
                Ok(_) => {}
                Err(SackError::UnknownEvent(_)) => {
                    return Err(KernelError::with_context(Errno::EINVAL, "sackfs"))
                }
                Err(_) => return Err(KernelError::with_context(Errno::EIO, "sackfs")),
            }
        }
        Ok(data.len())
    }

    fn mode(&self) -> Mode {
        // World-writable node; the CAP_MAC_ADMIN check in the handler is
        // the real gate (DAC would otherwise hide the capability check).
        Mode(0o666)
    }
}

struct StateNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for StateNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let active = sack.active();
        let state = active.ssm.space().state(active.ssm.current());
        Ok(format!("{} {}\n", state.name, state.encoding).into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

struct PolicyNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for PolicyNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let active = sack.active();
        let space = active.ssm.space();
        let mut out = String::new();
        out.push_str(&format!("mode {}\n", sack.mode()));
        out.push_str(&format!("current {}\n", active.ssm.current_name()));
        out.push_str("states");
        for s in space.states() {
            out.push_str(&format!(" {}={}", s.name, s.encoding));
        }
        out.push('\n');
        out.push_str("events");
        for e in space.events() {
            out.push_str(&format!(" {}", e.name));
        }
        out.push('\n');
        out.push_str(&format!(
            "permissions {}\nrules {}\n",
            active.policy.permissions().len(),
            active.policy.rule_count()
        ));
        Ok(out.into_bytes())
    }

    fn write_content(&self, ctx: &HookCtx, data: &[u8]) -> KernelResult<usize> {
        require_mac_admin(ctx)?;
        let sack = upgrade(&self.sack)?;
        let text = std::str::from_utf8(data)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        sack.reload_policy(text)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        Ok(data.len())
    }

    fn mode(&self) -> Mode {
        Mode(0o644)
    }
}

struct StatsNode {
    sack: Weak<Sack>,
}

/// The exported module counters, in node order, paired with their labels.
/// One table serves the `stats` node, the Prometheus exposition and the
/// JSON metrics, so the three can never drift apart.
fn stat_counters(s: &crate::sack::SackStats) -> [(&'static str, &ShardedCounter); 8] {
    [
        ("checks", &s.checks),
        ("denials", &s.denials),
        ("unprotected", &s.unprotected),
        ("overrides", &s.overrides),
        ("events_received", &s.events_received),
        ("events_unknown", &s.events_unknown),
        ("cache_hits", &s.cache_hits),
        ("cache_misses", &s.cache_misses),
    ]
}

impl SecurityFsFile for StatsNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let active = sack.active();
        // One stripe-major fold over every counter instead of eight
        // independent per-counter folds.
        let table = stat_counters(sack.stats());
        let refs: Vec<&ShardedCounter> = table.iter().map(|(_, c)| *c).collect();
        let totals = ShardedCounter::snapshot_all(&refs, Ordering::Relaxed);
        let mut out = String::new();
        for ((name, _), total) in table.iter().zip(&totals) {
            // `transitions_taken` sorts between the event and cache
            // counters to keep the historical node layout stable.
            if *name == "cache_hits" {
                let _ = writeln!(out, "transitions_taken {}", active.ssm.taken_count());
            }
            let _ = writeln!(out, "{name} {total}");
        }
        let _ = writeln!(out, "policy_epoch {}", sack.policy_epoch());
        Ok(out.into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

struct AuditNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for AuditNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        Ok(sack.audit().render().into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o400)
    }
}

fn event_plane(sack: &Arc<Sack>) -> KernelResult<Arc<crate::eventplane::EventPlane>> {
    sack.event_plane()
        .cloned()
        .ok_or_else(|| KernelError::with_context(Errno::EIO, "sackfs"))
}

/// `sds/ring`: batched frame submission into the event plane. One write is
/// one batch: every line is validated and enqueued, then a single drain
/// coalesces the whole batch into at most one SSM transition + epoch bump.
/// The synchronous `events` node remains the per-frame slow/compat path.
struct SdsRingNode {
    sack: Weak<Sack>,
    kernel: Weak<Kernel>,
}

impl SecurityFsFile for SdsRingNode {
    fn write_content(&self, ctx: &HookCtx, data: &[u8]) -> KernelResult<usize> {
        require_mac_admin(ctx)?;
        let sack = upgrade(&self.sack)?;
        let plane = event_plane(&sack)?;
        let now = upgrade(&self.kernel)
            .map(|k| k.clock().now())
            .unwrap_or(Duration::ZERO);
        let text = std::str::from_utf8(data)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        // Same frame validation as the sync path: newline-terminated lines
        // only, and every name must be a known event. The whole batch is
        // validated and resolved before anything enters the ring, so a bad
        // frame rejects the write without side effects — and each accepted
        // frame carries its resolved event id as a generation-tagged hint,
        // so the drain never resolves the same name twice (a reload
        // between submit and drain invalidates the tag and the drain falls
        // back to the name).
        if !text.is_empty() && !text.ends_with('\n') {
            return Err(KernelError::with_context(Errno::EINVAL, "sackfs"));
        }
        let active = sack.active();
        let space = active.ssm.space();
        let gen = active.load_generation;
        let t_ns = now.as_nanos() as u64;
        let mut frames: Vec<EventFrame> =
            Vec::with_capacity(text.bytes().filter(|b| *b == b'\n').count());
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let Some(id) = space.event_id(line) else {
                return Err(KernelError::with_context(Errno::EINVAL, "sackfs"));
            };
            let mut frame = EventFrame::new(line, 0, t_ns)
                .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
            frame.set_hint(id, gen);
            frames.push(frame);
        }
        plane.submit_batch(&frames);
        plane
            .drain_all()
            .map_err(|_| KernelError::with_context(Errno::EIO, "sackfs"))?;
        Ok(data.len())
    }

    fn mode(&self) -> Mode {
        // Like `events`: world-writable at the DAC layer, the
        // CAP_MAC_ADMIN check in the handler is the real gate.
        Mode(0o666)
    }
}

/// `sds/stats`: the event-plane counters in `name value` lines.
struct SdsStatsNode {
    sack: Weak<Sack>,
}

/// The exported event-plane counters, in node order. One table serves the
/// `sds/stats` node, the Prometheus exposition and the JSON metrics.
fn sds_counters(plane: &crate::eventplane::EventPlane) -> [(&'static str, u64); 7] {
    [
        ("submitted", plane.submitted()),
        ("drained", plane.drained_frames()),
        ("drain_batches", plane.drain_batches()),
        ("transitions", plane.transitions_published()),
        ("coalesced", plane.frames_coalesced()),
        ("dropped", plane.dropped()),
        ("backpressure_waits", plane.backpressure_waits()),
    ]
}

impl SecurityFsFile for SdsStatsNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let plane = event_plane(&sack)?;
        let mut out = String::new();
        let _ = writeln!(out, "policy {}", plane.policy().name());
        let _ = writeln!(out, "capacity {}", plane.capacity());
        let _ = writeln!(out, "depth {}", plane.depth());
        for (name, value) in sds_counters(&plane) {
            let _ = writeln!(out, "{name} {value}");
        }
        Ok(out.into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

fn tracing(sack: &Arc<Sack>) -> KernelResult<Arc<SackTracing>> {
    sack.tracing()
        .cloned()
        .ok_or_else(|| KernelError::with_context(Errno::EIO, "sackfs"))
}

/// `tracing/enable`: the tracepoint master switch, mirroring tracefs'
/// `tracing_on`. Reads return `0`/`1`; writes of `0`/`1` (MAC-admin-gated)
/// flip every tracepoint at once through the hub's single atomic.
struct TracingEnableNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for TracingEnableNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let tracing = tracing(&sack)?;
        Ok(if tracing.hub().enabled() {
            b"1\n"
        } else {
            b"0\n"
        }
        .to_vec())
    }

    fn write_content(&self, ctx: &HookCtx, data: &[u8]) -> KernelResult<usize> {
        require_mac_admin(ctx)?;
        let sack = upgrade(&self.sack)?;
        let tracing = tracing(&sack)?;
        let text = std::str::from_utf8(data)
            .map_err(|_| KernelError::with_context(Errno::EINVAL, "sackfs"))?;
        match text.trim() {
            "0" => tracing.hub().set_enabled(false),
            "1" => tracing.hub().set_enabled(true),
            _ => return Err(KernelError::with_context(Errno::EINVAL, "sackfs")),
        }
        Ok(data.len())
    }

    fn mode(&self) -> Mode {
        // Like `events`: world-writable at the DAC layer, the
        // CAP_MAC_ADMIN check in the handler is the real gate.
        Mode(0o666)
    }
}

/// `tracing/events`: per-tracepoint fired counts.
struct TracingEventsNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for TracingEventsNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        Ok(tracing(&sack)?.render_events().into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

/// `tracing/flight`: the flight-recorder dump. Root-only like `audit`: the
/// ring replays denials with the situation history that led to them.
struct TracingFlightNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for TracingFlightNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        Ok(tracing(&sack)?.flight().render().into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o400)
    }
}

/// Renders every exported metric in the Prometheus text exposition format
/// (the `tracing/metrics` node).
fn render_prometheus(sack: &Arc<Sack>, tracing: &SackTracing) -> String {
    let mut out = String::new();
    let enabled = u64::from(tracing.hub().enabled());
    let _ = writeln!(
        out,
        "# HELP sack_trace_enabled Tracepoint master switch state."
    );
    let _ = writeln!(out, "# TYPE sack_trace_enabled gauge");
    let _ = writeln!(out, "sack_trace_enabled {enabled}");
    let _ = writeln!(
        out,
        "# HELP sack_tracepoint_fired_total Events emitted per tracepoint."
    );
    let _ = writeln!(out, "# TYPE sack_tracepoint_fired_total counter");
    for point in Tracepoint::ALL {
        let _ = writeln!(
            out,
            "sack_tracepoint_fired_total{{point=\"{}\"}} {}",
            point.name(),
            tracing.hub().fired(point)
        );
    }
    let _ = writeln!(out, "# HELP sack_stat_total SACK module counters.");
    let _ = writeln!(out, "# TYPE sack_stat_total counter");
    let table = stat_counters(sack.stats());
    let refs: Vec<&ShardedCounter> = table.iter().map(|(_, c)| *c).collect();
    let totals = ShardedCounter::snapshot_all(&refs, Ordering::Relaxed);
    for ((name, _), total) in table.iter().zip(&totals) {
        let _ = writeln!(out, "sack_stat_total{{counter=\"{name}\"}} {total}");
    }
    let _ = writeln!(out, "# HELP sack_policy_epoch Current policy epoch.");
    let _ = writeln!(out, "# TYPE sack_policy_epoch gauge");
    let _ = writeln!(out, "sack_policy_epoch {}", sack.policy_epoch());
    let _ = writeln!(
        out,
        "# HELP sack_audit_lost_total Audit records evicted unread."
    );
    let _ = writeln!(out, "# TYPE sack_audit_lost_total counter");
    let _ = writeln!(out, "sack_audit_lost_total {}", sack.audit().lost_records());
    let _ = writeln!(
        out,
        "# HELP sack_flight_dropped_total Flight records overwritten unread."
    );
    let _ = writeln!(out, "# TYPE sack_flight_dropped_total counter");
    let _ = writeln!(
        out,
        "sack_flight_dropped_total {}",
        tracing.flight().dropped()
    );
    if let Some(plane) = sack.event_plane() {
        let _ = writeln!(
            out,
            "# HELP sack_sds_depth Event-plane ring occupancy, frames."
        );
        let _ = writeln!(out, "# TYPE sack_sds_depth gauge");
        let _ = writeln!(out, "sack_sds_depth {}", plane.depth());
        let _ = writeln!(out, "# HELP sack_sds_total Event-plane counters.");
        let _ = writeln!(out, "# TYPE sack_sds_total counter");
        for (name, value) in sds_counters(plane) {
            let _ = writeln!(out, "sack_sds_total{{counter=\"{name}\"}} {value}");
        }
    }
    let _ = writeln!(
        out,
        "# HELP sack_hook_latency_ns Hook dispatch latency, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE sack_hook_latency_ns histogram");
    for (hook, verdict, flag, snap) in tracing.histogram_snapshots() {
        let labels = format!(
            "hook=\"{}\",verdict=\"{}\",cache=\"{}\"",
            hook.name(),
            verdict.name(),
            flag.name()
        );
        let mut cumulative = 0u64;
        for (i, n) in snap.buckets.iter().enumerate() {
            cumulative += n;
            // One cumulative line per log2 boundary the data reaches keeps
            // the exposition compact without losing any occupied bucket.
            if *n > 0 {
                let _ = writeln!(
                    out,
                    "sack_hook_latency_ns_bucket{{{labels},le=\"{}\"}} {cumulative}",
                    crate::stats::bucket_upper_bound(i)
                );
            }
        }
        let _ = writeln!(
            out,
            "sack_hook_latency_ns_bucket{{{labels},le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(out, "sack_hook_latency_ns_sum{{{labels}}} {}", snap.sum);
        let _ = writeln!(out, "sack_hook_latency_ns_count{{{labels}}} {cumulative}");
    }
    out
}

/// Renders the same metrics as one JSON object (the `tracing/metrics_json`
/// node). Hand-rolled: every key and label is a fixed identifier, so no
/// escaping is needed.
fn render_metrics_json(sack: &Arc<Sack>, tracing: &SackTracing) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"enabled\":{},",
        if tracing.hub().enabled() {
            "true"
        } else {
            "false"
        }
    );
    out.push_str("\"tracepoints\":{");
    for (i, point) in Tracepoint::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", point.name(), tracing.hub().fired(*point));
    }
    out.push_str("},\"stats\":{");
    let table = stat_counters(sack.stats());
    let refs: Vec<&ShardedCounter> = table.iter().map(|(_, c)| *c).collect();
    let totals = ShardedCounter::snapshot_all(&refs, Ordering::Relaxed);
    for (i, ((name, _), total)) in table.iter().zip(&totals).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{total}");
    }
    let _ = write!(out, "}},\"policy_epoch\":{},", sack.policy_epoch());
    let _ = write!(
        out,
        "\"audit\":{{\"total\":{},\"lost\":{}}},",
        sack.audit().total(),
        sack.audit().lost_records()
    );
    let flight = tracing.flight();
    let _ = write!(
        out,
        "\"flight\":{{\"capacity\":{},\"total\":{},\"dropped\":{},",
        flight.capacity(),
        flight.total(),
        flight.dropped()
    );
    out.push_str("\"dropped_by_producer\":{");
    for (i, (producer, dropped)) in flight.dropped_by_producer().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{producer}\":{dropped}");
    }
    out.push_str("}},");
    if let Some(plane) = sack.event_plane() {
        let _ = write!(
            out,
            "\"sds\":{{\"policy\":\"{}\",\"capacity\":{},\"depth\":{}",
            plane.policy().name(),
            plane.capacity(),
            plane.depth()
        );
        for (name, value) in sds_counters(plane) {
            let _ = write!(out, ",\"{name}\":{value}");
        }
        out.push_str("},");
    }
    out.push_str("\"histograms\":[");
    for (i, (hook, verdict, flag, snap)) in tracing.histogram_snapshots().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"hook\":\"{}\",\"verdict\":\"{}\",\"cache\":\"{}\",\
             \"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            hook.name(),
            verdict.name(),
            flag.name(),
            snap.count(),
            snap.sum,
            snap.percentile(0.50),
            snap.percentile(0.95),
            snap.percentile(0.99)
        );
    }
    out.push_str("]}");
    out
}

/// `tracing/metrics`: Prometheus text exposition of every SACK metric.
struct MetricsNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for MetricsNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let tracing = tracing(&sack)?;
        Ok(render_prometheus(&sack, &tracing).into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

/// `tracing/metrics_json`: the same metrics as one JSON object.
struct MetricsJsonNode {
    sack: Weak<Sack>,
}

impl SecurityFsFile for MetricsJsonNode {
    fn read_content(&self, _ctx: &HookCtx) -> KernelResult<Vec<u8>> {
        let sack = upgrade(&self.sack)?;
        let tracing = tracing(&sack)?;
        Ok(render_metrics_json(&sack, &tracing).into_bytes())
    }

    fn mode(&self) -> Mode {
        Mode(0o444)
    }
}

/// Registers the SACKfs nodes for `sack` on `kernel`.
///
/// # Errors
///
/// securityfs registration errors (e.g. already attached).
pub fn register(sack: &Arc<Sack>, kernel: &Arc<Kernel>) -> KernelResult<()> {
    let events = securityfs_path(SACK_DIR, "events")?;
    kernel.register_securityfs(
        &events,
        Arc::new(EventsNode {
            sack: Arc::downgrade(sack),
            kernel: Arc::downgrade(kernel),
        }),
    )?;
    let state = securityfs_path(SACK_DIR, "state")?;
    kernel.register_securityfs(
        &state,
        Arc::new(StateNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    let policy = securityfs_path(SACK_DIR, "policy")?;
    kernel.register_securityfs(
        &policy,
        Arc::new(PolicyNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    let stats = securityfs_path(SACK_DIR, "stats")?;
    kernel.register_securityfs(
        &stats,
        Arc::new(StatsNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    let audit = securityfs_path(SACK_DIR, "audit")?;
    kernel.register_securityfs(
        &audit,
        Arc::new(AuditNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    // The sds subtree: the batched event plane's submission + stats nodes.
    let sds_dir = securityfs_path(SACK_DIR, "sds")?;
    kernel.register_securityfs(
        &sds_dir.join("ring")?,
        Arc::new(SdsRingNode {
            sack: Arc::downgrade(sack),
            kernel: Arc::downgrade(kernel),
        }),
    )?;
    kernel.register_securityfs(
        &sds_dir.join("stats")?,
        Arc::new(SdsStatsNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    // The tracing subtree. `securityfs_path` builds single components only
    // (KPath::join rejects '/'), so the nested paths chain a second join;
    // the VFS auto-creates the `tracing` directory on first registration.
    let tracing_dir = securityfs_path(SACK_DIR, "tracing")?;
    kernel.register_securityfs(
        &tracing_dir.join("enable")?,
        Arc::new(TracingEnableNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    kernel.register_securityfs(
        &tracing_dir.join("events")?,
        Arc::new(TracingEventsNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    kernel.register_securityfs(
        &tracing_dir.join("flight")?,
        Arc::new(TracingFlightNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    kernel.register_securityfs(
        &tracing_dir.join("metrics")?,
        Arc::new(MetricsNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    kernel.register_securityfs(
        &tracing_dir.join("metrics_json")?,
        Arc::new(MetricsJsonNode {
            sack: Arc::downgrade(sack),
        }),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sack_kernel::cred::{Capability, Credentials};
    use sack_kernel::file::OpenFlags;
    use sack_kernel::kernel::KernelBuilder;
    use sack_kernel::lsm::SecurityModule;

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { P; }
        state_per { emergency: P; }
        per_rules { P: allow subject=* /dev/car/** wi; }
    "#;

    fn boot() -> (Arc<Kernel>, Arc<Sack>) {
        let sack = Sack::independent(POLICY).unwrap();
        let kernel = KernelBuilder::new()
            .security_module(Arc::clone(&sack) as Arc<dyn SecurityModule>)
            .boot();
        sack.attach(&kernel).unwrap();
        (kernel, sack)
    }

    #[test]
    fn event_write_transitions_state() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
        let fd = sds
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        sds.write(fd, b"crash\n").unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        sds.write(fd, b"rescue_done\n").unwrap();
        assert_eq!(sack.current_state_name(), "normal");
        sds.close(fd).unwrap();
    }

    #[test]
    fn event_write_without_mac_admin_is_eperm() {
        let (kernel, sack) = boot();
        let attacker = kernel.spawn(Credentials::user(1000, 1000));
        let fd = attacker
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        let err = attacker.write(fd, b"crash\n").unwrap_err();
        assert_eq!(err.errno(), Errno::EPERM);
        assert_eq!(sack.current_state_name(), "normal", "state unchanged");
    }

    #[test]
    fn unknown_event_is_einval() {
        let (kernel, _sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        let err = sds.write(fd, b"meteor\n").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
    }

    #[test]
    fn state_node_reflects_current_state() {
        let (kernel, sack) = boot();
        let p = kernel.spawn(Credentials::root());
        let content = p.read_to_vec("/sys/kernel/security/SACK/state").unwrap();
        assert_eq!(content, b"normal 0\n");
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        let content = p.read_to_vec("/sys/kernel/security/SACK/state").unwrap();
        assert_eq!(content, b"emergency 1\n");
    }

    #[test]
    fn policy_node_dump_and_reload() {
        let (kernel, sack) = boot();
        let admin = kernel.spawn(Credentials::root());
        let dump = admin
            .read_to_vec("/sys/kernel/security/SACK/policy")
            .unwrap();
        let text = String::from_utf8(dump).unwrap();
        assert!(text.contains("mode independent"));
        assert!(text.contains("current normal"));
        assert!(text.contains("states normal=0 emergency=1"));

        let fd = admin
            .open("/sys/kernel/security/SACK/policy", OpenFlags::write_only())
            .unwrap();
        let new_policy = b"states { solo = 0; } initial solo;\n\
                           permissions { P; } state_per { solo: P; }\n\
                           per_rules { P: allow subject=* /x r; }";
        admin.write(fd, new_policy).unwrap();
        assert_eq!(sack.current_state_name(), "solo");
        // Bad policy is rejected with EINVAL and leaves the current one.
        let err = admin.write(fd, b"garbage {{{").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
        assert_eq!(sack.current_state_name(), "solo");
    }

    #[test]
    fn stats_node_reports_counters() {
        let (kernel, sack) = boot();
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        let p = kernel.spawn(Credentials::root());
        let text =
            String::from_utf8(p.read_to_vec("/sys/kernel/security/SACK/stats").unwrap()).unwrap();
        assert!(text.contains("events_received 1"));
        assert!(text.contains("transitions_taken 1"));
    }

    #[test]
    fn stats_node_folds_sharded_counters_across_threads() {
        let (kernel, sack) = boot();
        // Bump a striped counter from many threads; the stats node must
        // report the folded total, not a single stripe.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sack = Arc::clone(&sack);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        sack.stats().checks.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let p = kernel.spawn(Credentials::root());
        let text =
            String::from_utf8(p.read_to_vec("/sys/kernel/security/SACK/stats").unwrap()).unwrap();
        assert!(
            text.contains("checks 8000"),
            "stats node must fold all stripes: {text}"
        );
    }

    #[test]
    fn audit_node_reports_denials() {
        let (kernel, sack) = boot();
        sack.deliver_event("rescue_done", Duration::ZERO).ok();
        // Set up a protected file and provoke a denial.
        kernel
            .vfs()
            .mkdir_all(&sack_kernel::KPath::new("/dev/car").unwrap())
            .unwrap();
        kernel
            .vfs()
            .create_file(
                &sack_kernel::KPath::new("/dev/car/door0").unwrap(),
                sack_kernel::Mode(0o666),
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
        let app = kernel.spawn(Credentials::user(1000, 1000));
        assert!(app.open("/dev/car/door0", OpenFlags::write_only()).is_err());
        // The audit node is 0400 root-owned; only the admin can read it.
        let admin = kernel.spawn(Credentials::root());
        let text = String::from_utf8(
            admin
                .read_to_vec("/sys/kernel/security/SACK/audit")
                .unwrap(),
        )
        .unwrap();
        assert!(text.contains("DENIED"), "{text}");
        assert!(text.contains("/dev/car/door0"));
        assert!(text.contains("state=normal"));
        assert_eq!(sack.audit().total(), 1);
    }

    #[test]
    fn double_attach_is_rejected() {
        let (kernel, sack) = boot();
        assert!(sack.attach(&kernel).is_err());
    }

    fn make_door(kernel: &Arc<Kernel>) {
        kernel
            .vfs()
            .mkdir_all(&sack_kernel::KPath::new("/dev/car").unwrap())
            .unwrap();
        kernel
            .vfs()
            .create_file(
                &sack_kernel::KPath::new("/dev/car/door0").unwrap(),
                sack_kernel::Mode(0o666),
                sack_kernel::Uid::ROOT,
                sack_kernel::Gid(0),
            )
            .unwrap();
    }

    fn read_node(kernel: &Arc<Kernel>, node: &str) -> String {
        let admin = kernel.spawn(Credentials::root());
        String::from_utf8(
            admin
                .read_to_vec(&format!("/sys/kernel/security/SACK/{node}"))
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn tracing_enable_node_toggles_the_hub() {
        let (kernel, sack) = boot();
        assert_eq!(read_node(&kernel, "tracing/enable"), "0\n");
        let admin = kernel.spawn(Credentials::root());
        let fd = admin
            .open(
                "/sys/kernel/security/SACK/tracing/enable",
                OpenFlags::write_only(),
            )
            .unwrap();
        admin.write(fd, b"1\n").unwrap();
        assert!(sack.tracing().unwrap().hub().enabled());
        assert_eq!(read_node(&kernel, "tracing/enable"), "1\n");
        let err = admin.write(fd, b"2\n").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
        admin.write(fd, b"0").unwrap();
        assert!(!sack.tracing().unwrap().hub().enabled());
    }

    #[test]
    fn tracing_enable_write_requires_mac_admin() {
        let (kernel, sack) = boot();
        let attacker = kernel.spawn(Credentials::user(1000, 1000));
        let fd = attacker
            .open(
                "/sys/kernel/security/SACK/tracing/enable",
                OpenFlags::write_only(),
            )
            .unwrap();
        let err = attacker.write(fd, b"1").unwrap_err();
        assert_eq!(err.errno(), Errno::EPERM);
        assert!(!sack.tracing().unwrap().hub().enabled(), "switch unchanged");

        let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
        let fd = sds
            .open(
                "/sys/kernel/security/SACK/tracing/enable",
                OpenFlags::write_only(),
            )
            .unwrap();
        sds.write(fd, b"1").unwrap();
        assert!(sack.tracing().unwrap().hub().enabled());
    }

    #[test]
    fn tracing_events_node_counts_fired_tracepoints() {
        let (kernel, sack) = boot();
        sack.tracing().unwrap().hub().set_enabled(true);
        let p = kernel.spawn(Credentials::user(100, 100));
        let _ = p.open("/dev/null", OpenFlags::read_only());
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        let text = read_node(&kernel, "tracing/events");
        assert!(text.starts_with("# tracepoints enabled=1\n"), "{text}");
        let count = |name: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix(&format!("{name} ")))
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(count("hook_enter") > 0);
        assert_eq!(count("hook_enter"), count("hook_exit"));
        assert_eq!(count("ssm_transition"), 1);
        assert_eq!(count("rcu_epoch_bump"), 1);
        assert_eq!(count("cache_invalidate"), 1);
    }

    #[test]
    fn flight_node_replays_denial_with_preceding_transition() {
        let (kernel, sack) = boot();
        make_door(&kernel);
        sack.tracing().unwrap().hub().set_enabled(true);
        // Crash, recover, then provoke a denial in the normal state: the
        // flight dump must show the full situation history before it.
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        sack.deliver_event("rescue_done", Duration::ZERO).unwrap();
        let app = kernel.spawn(Credentials::user(1000, 1000));
        assert!(app.open("/dev/car/door0", OpenFlags::write_only()).is_err());
        let text = read_node(&kernel, "tracing/flight");
        assert!(text.starts_with("# flight capacity="), "{text}");
        let lines: Vec<&str> = text.lines().collect();
        let transition = lines
            .iter()
            .position(|l| l.contains("ssm_transition from=emergency to=normal event=rescue_done"))
            .unwrap_or_else(|| panic!("no transition in flight: {text}"));
        let denial = lines
            .iter()
            .position(|l| l.contains("hook_exit hook=file_open verdict=deny"))
            .unwrap_or_else(|| panic!("no denial in flight: {text}"));
        let audit = lines
            .iter()
            .position(|l| l.contains("audit_emit seq=0"))
            .unwrap_or_else(|| panic!("no audit_emit in flight: {text}"));
        assert!(
            transition < denial,
            "transition must precede the denial it explains"
        );
        assert!(audit < denial, "audit record lands before the hook exit");
    }

    /// A minimal Prometheus text-format check: every non-empty line is a
    /// `# HELP`/`# TYPE` comment or `name{labels} value` with a parseable
    /// numeric value, and every sample's metric family was declared by a
    /// preceding `# TYPE`.
    fn assert_valid_prometheus(text: &str) {
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                typed.push(parts.next().unwrap().to_string());
                let kind = parts.next().unwrap();
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "bad type: {line}"
                );
                continue;
            }
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP "), "bad comment: {line}");
                continue;
            }
            let (name_labels, value) = line.rsplit_once(' ').unwrap();
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in: {line}"));
            let name = name_labels.split('{').next().unwrap();
            if let Some(rest) = name_labels.strip_prefix(&format!("{name}{{")) {
                let labels = rest.strip_suffix('}').unwrap_or_else(|| {
                    panic!("unterminated labels in: {line}");
                });
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').unwrap();
                    assert!(!k.is_empty(), "{line}");
                    assert!(v.starts_with('"') && v.ends_with('"'), "{line}");
                }
            }
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| typed.contains(&(*f).to_string()))
                .unwrap_or(name);
            assert!(
                typed.contains(&family.to_string()),
                "sample without # TYPE: {line}"
            );
        }
    }

    #[test]
    fn metrics_node_is_valid_prometheus() {
        let (kernel, sack) = boot();
        make_door(&kernel);
        sack.tracing().unwrap().hub().set_enabled(true);
        let app = kernel.spawn(Credentials::user(1000, 1000));
        assert!(app.open("/dev/car/door0", OpenFlags::write_only()).is_err());
        sack.deliver_event("crash", Duration::ZERO).unwrap();
        let text = read_node(&kernel, "tracing/metrics");
        assert_valid_prometheus(&text);
        assert!(text.contains("sack_trace_enabled 1"), "{text}");
        assert!(
            text.contains("sack_tracepoint_fired_total{point=\"ssm_transition\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("hook=\"file_open\",verdict=\"deny\""),
            "denied dispatch must surface a histogram series: {text}"
        );
        // Histogram invariant: the +Inf bucket equals the series count.
        for line in text.lines().filter(|l| l.contains("le=\"+Inf\"")) {
            let labels = line
                .split_once('{')
                .unwrap()
                .1
                .split(",le=")
                .next()
                .unwrap()
                .to_string();
            let inf: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            let count_line = text
                .lines()
                .find(|l| l.starts_with(&format!("sack_hook_latency_ns_count{{{labels}}}")))
                .unwrap();
            let count: u64 = count_line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert_eq!(inf, count, "{line}");
        }
    }

    #[test]
    fn metrics_json_node_is_well_formed() {
        let (kernel, sack) = boot();
        make_door(&kernel);
        sack.tracing().unwrap().hub().set_enabled(true);
        let app = kernel.spawn(Credentials::user(1000, 1000));
        assert!(app.open("/dev/car/door0", OpenFlags::write_only()).is_err());
        let text = read_node(&kernel, "tracing/metrics_json");
        assert!(text.starts_with('{') && text.ends_with('}'), "{text}");
        // Balanced braces/brackets and no trailing commas — enough to catch
        // hand-rolled-JSON slips without a JSON dependency.
        let mut depth = 0i32;
        let mut prev = ' ';
        for c in text.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev, ',', "trailing comma before {c}");
                    depth -= 1;
                }
                _ => {}
            }
            if !c.is_whitespace() {
                prev = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced braces: {text}");
        assert!(text.contains("\"enabled\":true"));
        assert!(text.contains("\"tracepoints\":{\"hook_enter\":"));
        assert!(text.contains("\"p95\":"), "{text}");
        assert!(text.contains("\"dropped_by_producer\":{"), "{text}");
    }

    #[test]
    fn multiple_events_in_one_write() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        sds.write(fd, b"crash\nrescue_done\ncrash\n").unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        let active = sack.active();
        assert_eq!(active.ssm.taken_count(), 3);
    }

    #[test]
    fn partial_frame_write_is_einval() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open("/sys/kernel/security/SACK/events", OpenFlags::write_only())
            .unwrap();
        // No trailing newline: a truncated frame must be rejected, not
        // silently treated as complete.
        let err = sds.write(fd, b"crash").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
        assert_eq!(sack.current_state_name(), "normal", "state unchanged");
        assert_eq!(
            sack.stats().events_received.load(Ordering::Relaxed),
            0,
            "partial frame never reaches the SSM"
        );
        // The batched path applies the same rule.
        let fd = sds
            .open(
                "/sys/kernel/security/SACK/sds/ring",
                OpenFlags::write_only(),
            )
            .unwrap();
        let err = sds.write(fd, b"crash\nrescue_done").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
        assert_eq!(sack.current_state_name(), "normal");
        assert_eq!(sack.event_plane().unwrap().submitted(), 0);
    }

    #[test]
    fn ring_write_coalesces_to_one_transition() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::user(500, 500).with_capability(Capability::MacAdmin));
        let fd = sds
            .open(
                "/sys/kernel/security/SACK/sds/ring",
                OpenFlags::write_only(),
            )
            .unwrap();
        let epoch_before = sack.policy_epoch();
        // The same batch `multiple_events_in_one_write` pushes through the
        // sync path (3 transitions there) publishes exactly once here.
        sds.write(fd, b"crash\nrescue_done\ncrash\n").unwrap();
        assert_eq!(sack.current_state_name(), "emergency");
        assert_eq!(sack.active().ssm.taken_count(), 1);
        assert_eq!(sack.policy_epoch(), epoch_before + 1, "one bump per write");
        let plane = sack.event_plane().unwrap();
        assert_eq!(plane.submitted(), 3);
        assert_eq!(plane.drained_frames(), 3);
        assert_eq!(plane.frames_coalesced(), 2);
    }

    #[test]
    fn ring_write_unknown_event_is_einval_without_side_effects() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open(
                "/sys/kernel/security/SACK/sds/ring",
                OpenFlags::write_only(),
            )
            .unwrap();
        // A bad frame anywhere in the batch rejects the whole write before
        // any frame enters the ring.
        let err = sds.write(fd, b"crash\nmeteor\n").unwrap_err();
        assert_eq!(err.errno(), Errno::EINVAL);
        assert_eq!(sack.current_state_name(), "normal");
        assert_eq!(sack.event_plane().unwrap().submitted(), 0);
    }

    #[test]
    fn ring_write_without_mac_admin_is_eperm() {
        let (kernel, sack) = boot();
        let attacker = kernel.spawn(Credentials::user(1000, 1000));
        let fd = attacker
            .open(
                "/sys/kernel/security/SACK/sds/ring",
                OpenFlags::write_only(),
            )
            .unwrap();
        let err = attacker.write(fd, b"crash\n").unwrap_err();
        assert_eq!(err.errno(), Errno::EPERM);
        assert_eq!(sack.current_state_name(), "normal", "state unchanged");
    }

    #[test]
    fn sds_stats_node_reports_plane_counters() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open(
                "/sys/kernel/security/SACK/sds/ring",
                OpenFlags::write_only(),
            )
            .unwrap();
        sds.write(fd, b"crash\nrescue_done\n").unwrap();
        let text = read_node(&kernel, "sds/stats");
        assert!(text.contains("policy drop-oldest"), "{text}");
        assert!(text.contains("capacity 1024"), "{text}");
        assert!(text.contains("depth 0"), "{text}");
        assert!(text.contains("submitted 2"), "{text}");
        assert!(text.contains("drained 2"), "{text}");
        assert!(text.contains("drain_batches 1"), "{text}");
        assert!(text.contains("coalesced 1"), "{text}");
        assert!(text.contains("dropped 0"), "{text}");
        drop(sack);
    }

    #[test]
    fn metrics_expose_sds_counters() {
        let (kernel, sack) = boot();
        let sds = kernel.spawn(Credentials::root());
        let fd = sds
            .open(
                "/sys/kernel/security/SACK/sds/ring",
                OpenFlags::write_only(),
            )
            .unwrap();
        sds.write(fd, b"crash\n").unwrap();
        let text = read_node(&kernel, "tracing/metrics");
        assert_valid_prometheus(&text);
        assert!(
            text.contains("sack_sds_total{counter=\"submitted\"} 1"),
            "{text}"
        );
        assert!(text.contains("sack_sds_depth 0"), "{text}");
        assert!(
            text.contains("sack_tracepoint_fired_total{point=\"sds_drain\"}"),
            "{text}"
        );
        let json = read_node(&kernel, "tracing/metrics_json");
        assert!(
            json.contains("\"sds\":{\"policy\":\"drop-oldest\""),
            "{json}"
        );
        assert!(json.contains("\"submitted\":1"), "{json}");
        drop(sack);
    }
}
