//! Offline policy simulation: the administrator's "what-if" tool.
//!
//! MAC policy errors in a vehicle are discovered at the worst possible
//! time (a rescue daemon denied during a crash). The simulator runs a
//! policy through a scripted timeline of situation events and access
//! queries *without any kernel*, so a CI job can assert properties like
//! "the rescue daemon can open doors in every state reachable after a
//! crash" before the policy ships.

use std::fmt;
use std::time::Duration;

use sack_apparmor::profile::FilePerms;

use crate::policy::CompiledPolicy;
use crate::rules::SubjectCtx;
use crate::sack::SackError;
use crate::ssm::{Ssm, TransitionOutcome};

/// An access question: who wants what on which object.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessQuery {
    /// Subject uid.
    pub uid: u32,
    /// Subject executable path, if any.
    pub exe: Option<String>,
    /// Subject's confining profile, if any.
    pub profile: Option<String>,
    /// Object path.
    pub path: String,
    /// Requested permissions.
    pub perms: FilePerms,
}

impl AccessQuery {
    /// A query for an executable-identified subject.
    pub fn from_exe(exe: &str, path: &str, perms: FilePerms) -> AccessQuery {
        AccessQuery {
            uid: 1000,
            exe: Some(exe.to_string()),
            profile: None,
            path: path.to_string(),
            perms,
        }
    }
}

impl fmt::Display for AccessQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({})",
            self.exe.as_deref().unwrap_or("(anon)"),
            self.path,
            self.perms
        )
    }
}

/// One step of a simulation script.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Deliver a situation event.
    Event(String),
    /// Ask an access question.
    Access(AccessQuery),
}

/// The simulator's answer to one step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepResult {
    /// The event moved the machine.
    Transitioned {
        /// Event name.
        event: String,
        /// State before.
        from: String,
        /// State after.
        to: String,
    },
    /// The event matched no rule for the current state.
    NoTransition {
        /// Event name.
        event: String,
        /// Unchanged state.
        state: String,
    },
    /// The event is not declared by the policy.
    UnknownEvent(String),
    /// The answer to an access question.
    Decision {
        /// The question.
        query: AccessQuery,
        /// State at decision time.
        state: String,
        /// `false` when the object is unprotected (SACK does not mediate).
        mediated: bool,
        /// The decision (always `true` for unmediated objects).
        allowed: bool,
    },
}

impl StepResult {
    /// True for `Decision { allowed: true, .. }` and unmediated accesses.
    pub fn is_allowed(&self) -> bool {
        matches!(self, StepResult::Decision { allowed: true, .. })
    }
}

impl fmt::Display for StepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepResult::Transitioned { event, from, to } => {
                write!(f, "event {event}: {from} -> {to}")
            }
            StepResult::NoTransition { event, state } => {
                write!(f, "event {event}: no transition (still {state})")
            }
            StepResult::UnknownEvent(e) => write!(f, "event {e}: UNKNOWN"),
            StepResult::Decision {
                query,
                state,
                mediated,
                allowed,
            } => {
                let verdict = match (mediated, allowed) {
                    (false, _) => "ALLOW (unprotected)",
                    (true, true) => "ALLOW",
                    (true, false) => "DENY",
                };
                write!(f, "[{state}] {query}: {verdict}")
            }
        }
    }
}

/// The simulator: a compiled policy plus a private state machine.
pub struct PolicySimulator {
    policy: CompiledPolicy,
    ssm: Ssm,
}

impl PolicySimulator {
    /// Builds a simulator from policy text.
    ///
    /// # Errors
    ///
    /// The same parse/validation errors as loading the policy for real.
    pub fn new(policy_text: &str) -> Result<PolicySimulator, SackError> {
        let ast = crate::policy::SackPolicy::parse(policy_text)?;
        let policy = ast.compile().map_err(SackError::Invalid)?;
        let ssm = Ssm::new(
            policy.space().clone(),
            policy.transitions(),
            policy.initial(),
        )
        .map_err(SackError::Ssm)?;
        Ok(PolicySimulator { policy, ssm })
    }

    /// The compiled policy under simulation.
    pub fn policy(&self) -> &CompiledPolicy {
        &self.policy
    }

    /// Diagnostics from the static analysis that runs automatically when
    /// the policy is loaded: SSM reachability (unreachable and dead
    /// states, events that can never fire) and MAC-rule lints (shadowed
    /// rules, allow/deny conflicts on overlapping matches). Errors abort
    /// [`PolicySimulator::new`]; everything surfaced here is advisory,
    /// and `sack-analyze` renders the same issues (plus cross-layer
    /// stacking checks) on the command line.
    pub fn load_diagnostics(&self) -> &[crate::policy::PolicyIssue] {
        self.policy.warnings()
    }

    /// The current simulated situation state name.
    pub fn state(&self) -> &str {
        self.ssm.current_name()
    }

    /// Delivers one event.
    pub fn deliver(&self, event: &str) -> StepResult {
        match self.ssm.deliver_by_name(event, Duration::ZERO) {
            Err(unknown) => StepResult::UnknownEvent(unknown),
            Ok(TransitionOutcome::Transitioned { from, to }) => StepResult::Transitioned {
                event: event.to_string(),
                from: self.ssm.space().state(from).name.clone(),
                to: self.ssm.space().state(to).name.clone(),
            },
            Ok(TransitionOutcome::NoMatch { current }) => StepResult::NoTransition {
                event: event.to_string(),
                state: self.ssm.space().state(current).name.clone(),
            },
        }
    }

    /// Answers an access question in the current state.
    pub fn query(&self, query: &AccessQuery) -> StepResult {
        let state = self.ssm.current();
        let state_name = self.ssm.space().state(state).name.clone();
        if !self.policy.protected().contains(&query.path) {
            return StepResult::Decision {
                query: query.clone(),
                state: state_name,
                mediated: false,
                allowed: true,
            };
        }
        let subject = SubjectCtx {
            uid: query.uid,
            exe: query.exe.as_deref(),
            profile: query.profile.as_deref(),
        };
        let allowed = self
            .policy
            .state_rules(state)
            .permits(&subject, &query.path, query.perms);
        StepResult::Decision {
            query: query.clone(),
            state: state_name,
            mediated: true,
            allowed,
        }
    }

    /// Runs a script, returning one result per step.
    pub fn run(&self, script: &[Step]) -> Vec<StepResult> {
        script
            .iter()
            .map(|step| match step {
                Step::Event(e) => self.deliver(e),
                Step::Access(q) => self.query(q),
            })
            .collect()
    }

    /// Exhaustive check: answers `query` in **every state reachable from
    /// the initial state**, returning `(state, allowed)` pairs — the tool
    /// for "is this permission really emergency-only?" questions.
    ///
    /// Does not disturb the simulator's current state.
    pub fn query_all_reachable_states(&self, query: &AccessQuery) -> Vec<(String, bool)> {
        let subject = SubjectCtx {
            uid: query.uid,
            exe: query.exe.as_deref(),
            profile: query.profile.as_deref(),
        };
        let mediated = self.policy.protected().contains(&query.path);
        self.ssm
            .reachable_states()
            .into_iter()
            .map(|state| {
                let allowed = !mediated
                    || self
                        .policy
                        .state_rules(state)
                        .permits(&subject, &query.path, query.perms);
                (self.ssm.space().state(state).name.clone(), allowed)
            })
            .collect()
    }
}

impl fmt::Debug for PolicySimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicySimulator")
            .field("state", &self.state())
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: &str = r#"
        states { normal = 0; emergency = 1; }
        events { crash; rescue_done; }
        transitions { normal -crash-> emergency; emergency -rescue_done-> normal; }
        initial normal;
        permissions { NORMAL; DOORS; }
        state_per { normal: NORMAL; emergency: NORMAL, DOORS; }
        per_rules {
            NORMAL: allow subject=* /dev/car/** r;
            DOORS: allow subject=/usr/bin/rescue* /dev/car/** wi;
        }
    "#;

    fn door_write(exe: &str) -> AccessQuery {
        AccessQuery::from_exe(exe, "/dev/car/door0", FilePerms::WRITE)
    }

    #[test]
    fn scripted_timeline() {
        let sim = PolicySimulator::new(POLICY).unwrap();
        let script = vec![
            Step::Access(door_write("/usr/bin/rescue_daemon")),
            Step::Event("crash".to_string()),
            Step::Access(door_write("/usr/bin/rescue_daemon")),
            Step::Access(door_write("/usr/bin/media_app")),
            Step::Event("rescue_done".to_string()),
            Step::Access(door_write("/usr/bin/rescue_daemon")),
        ];
        let results = sim.run(&script);
        assert!(!results[0].is_allowed(), "denied before crash");
        assert!(matches!(results[1], StepResult::Transitioned { .. }));
        assert!(results[2].is_allowed(), "allowed during emergency");
        assert!(!results[3].is_allowed(), "wrong subject stays denied");
        assert!(!results[5].is_allowed(), "retracted after rescue");
    }

    #[test]
    fn unprotected_objects_are_flagged_unmediated() {
        let sim = PolicySimulator::new(POLICY).unwrap();
        let result = sim.query(&AccessQuery::from_exe(
            "/usr/bin/anything",
            "/tmp/scratch",
            FilePerms::WRITE,
        ));
        match result {
            StepResult::Decision {
                mediated, allowed, ..
            } => {
                assert!(!mediated);
                assert!(allowed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_and_nonmatching_events() {
        let sim = PolicySimulator::new(POLICY).unwrap();
        assert_eq!(
            sim.deliver("meteor"),
            StepResult::UnknownEvent("meteor".to_string())
        );
        // rescue_done has no rule from `normal`.
        assert!(matches!(
            sim.deliver("rescue_done"),
            StepResult::NoTransition { .. }
        ));
        assert_eq!(sim.state(), "normal");
    }

    #[test]
    fn exhaustive_state_query_proves_emergency_only() {
        let sim = PolicySimulator::new(POLICY).unwrap();
        let per_state = sim.query_all_reachable_states(&door_write("/usr/bin/rescue_daemon"));
        let allowed_states: Vec<&str> = per_state
            .iter()
            .filter(|(_, allowed)| *allowed)
            .map(|(s, _)| s.as_str())
            .collect();
        assert_eq!(allowed_states, vec!["emergency"]);
        // Reads are allowed everywhere.
        let reads = sim.query_all_reachable_states(&AccessQuery::from_exe(
            "/usr/bin/navi",
            "/dev/car/door0",
            FilePerms::READ,
        ));
        assert!(reads.iter().all(|(_, allowed)| *allowed));
        // The exhaustive query did not move the machine.
        assert_eq!(sim.state(), "normal");
    }

    #[test]
    fn display_formats() {
        let sim = PolicySimulator::new(POLICY).unwrap();
        let text = sim.deliver("crash").to_string();
        assert_eq!(text, "event crash: normal -> emergency");
        let text = sim.query(&door_write("/usr/bin/media")).to_string();
        assert!(text.contains("[emergency]"));
        assert!(text.contains("DENY"));
    }

    #[test]
    fn rejects_invalid_policy() {
        assert!(PolicySimulator::new("states {").is_err());
    }

    #[test]
    fn load_runs_the_static_analysis_by_default() {
        let sim = PolicySimulator::new(POLICY).unwrap();
        assert!(sim.load_diagnostics().is_empty());

        // A policy with a shadowed rule loads (warnings are advisory)
        // but the diagnostic is already waiting on the simulator.
        let shadowed = r#"
            states { normal = 0; }
            events { noop; }
            transitions { normal -noop-> normal; }
            initial normal;
            permissions { NORMAL; }
            state_per { normal: NORMAL; }
            per_rules {
                NORMAL:
                    allow subject=* /dev/car/** rw;
                    allow subject=* /dev/car/door* r;
            }
        "#;
        let sim = PolicySimulator::new(shadowed).unwrap();
        let diags = sim.load_diagnostics();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, crate::policy::IssueKind::ShadowedRule);
    }
}
